"""Halton low-discrepancy sequences (a quasi-Monte-Carlo alternative).

The paper selects samples by generating many latin hypercubes and keeping
the best by discrepancy.  A natural question — explored by the sampling
ablation — is whether a deterministic low-discrepancy sequence does as
well without the generate-and-test loop.  This module implements the
Halton sequence with optional random digit scrambling (Owen-style
per-digit permutations), which repairs the correlation artifacts plain
Halton exhibits in higher dimensions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.util.rng import make_rng

#: First 25 primes — enough bases for any space in this library.
_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)


def _radical_inverse(index: int, base: int, perm: Optional[np.ndarray]) -> float:
    """Van der Corput radical inverse of ``index`` in ``base``.

    With ``perm`` given, every digit is mapped through the permutation
    (the same permutation at every level — the classic scrambling of
    Braaten & Weller).
    """
    result = 0.0
    factor = 1.0 / base
    while index > 0:
        digit = index % base
        if perm is not None:
            digit = int(perm[digit])
        result += digit * factor
        index //= base
        factor /= base
    return result


def halton(
    count: int,
    dimension: int,
    scramble: bool = True,
    seed: int = 0,
    skip: int = 20,
) -> np.ndarray:
    """Generate ``count`` Halton points in ``[0, 1]^dimension``.

    Parameters
    ----------
    count, dimension:
        Sample shape; ``dimension`` is limited by the prime table (25).
    scramble:
        Apply per-dimension random digit permutations (recommended beyond
        ~6 dimensions; the zero digit stays fixed so 0 maps to 0).
    seed:
        Scrambling seed (ignored when ``scramble`` is False).
    skip:
        Leading sequence elements to drop (the first few Halton points
        cluster near the origin).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 1 <= dimension <= len(_PRIMES):
        raise ValueError(f"dimension must be in [1, {len(_PRIMES)}]")
    perms: List[Optional[np.ndarray]] = []
    rng = make_rng(seed, "halton-scramble", dimension)
    for k in range(dimension):
        base = _PRIMES[k]
        if scramble:
            perm = np.concatenate([[0], rng.permutation(np.arange(1, base))])
            perms.append(perm)
        else:
            perms.append(None)
    points = np.empty((count, dimension))
    for i in range(count):
        idx = i + 1 + skip
        for k in range(dimension):
            points[i, k] = _radical_inverse(idx, _PRIMES[k], perms[k])
    return points
