"""Space-filling (discrepancy) measures for design samples.

The paper quantifies how well a sample covers the design space with the
L2-star discrepancy, analytically derived in Hickernell (1998): the L2 norm
of the deviation between the sample's empirical distribution and the uniform
distribution over the unit cube.  Lower is better.

Two standard closed forms are provided, both O(p^2 * n):

* :func:`star_l2_discrepancy` — the classic L2-star discrepancy
  (Warnock's formula), anchored at the origin;
* :func:`centered_l2_discrepancy` — Hickernell's centered L2 discrepancy
  (CD2), which is invariant to reflections of the sample about the center
  of the cube and is the variant commonly used for comparing latin
  hypercube designs (Fang et al. 2002).

The sample-selection optimizer uses CD2 by default; the experiments refer to
it as "the L2-star discrepancy" exactly as the paper does.
"""

from __future__ import annotations

import numpy as np


def _check_unit_sample(points: np.ndarray) -> np.ndarray:
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.ndim != 2:
        raise ValueError("sample must be a 2-D array of shape (p, n)")
    if points.size == 0:
        raise ValueError("sample must be non-empty")
    if np.any(points < -1e-12) or np.any(points > 1 + 1e-12):
        raise ValueError("sample points must lie in the unit cube [0, 1]^n")
    return np.clip(points, 0.0, 1.0)


def star_l2_discrepancy(points: np.ndarray) -> float:
    """L2-star discrepancy of a unit-cube sample (Warnock's formula).

    .. math::

        D_2^*(P)^2 = 3^{-n}
            - \\frac{2^{1-n}}{p} \\sum_i \\prod_k (1 - x_{ik}^2)
            + \\frac{1}{p^2} \\sum_{i,j} \\prod_k (1 - \\max(x_{ik}, x_{jk}))
    """
    x = _check_unit_sample(points)
    p, n = x.shape
    term1 = 3.0 ** (-n)
    term2 = (2.0 ** (1 - n) / p) * np.prod(1.0 - x**2, axis=1).sum()
    cross = np.prod(1.0 - np.maximum(x[:, None, :], x[None, :, :]), axis=2)
    term3 = cross.sum() / p**2
    return float(np.sqrt(max(term1 - term2 + term3, 0.0)))


def centered_l2_discrepancy(points: np.ndarray) -> float:
    """Hickernell's centered L2 discrepancy (CD2) of a unit-cube sample.

    .. math::

        CD_2(P)^2 = (13/12)^n
            - \\frac{2}{p} \\sum_i \\prod_k
                \\left(1 + \\tfrac12 |x_{ik} - \\tfrac12|
                        - \\tfrac12 |x_{ik} - \\tfrac12|^2\\right)
            + \\frac{1}{p^2} \\sum_{i,j} \\prod_k
                \\left(1 + \\tfrac12 |x_{ik} - \\tfrac12|
                        + \\tfrac12 |x_{jk} - \\tfrac12|
                        - \\tfrac12 |x_{ik} - x_{jk}|\\right)
    """
    x = _check_unit_sample(points)
    p, n = x.shape
    d = np.abs(x - 0.5)
    term1 = (13.0 / 12.0) ** n
    term2 = (2.0 / p) * np.prod(1.0 + 0.5 * d - 0.5 * d**2, axis=1).sum()
    di = d[:, None, :]
    dj = d[None, :, :]
    dij = np.abs(x[:, None, :] - x[None, :, :])
    cross = np.prod(1.0 + 0.5 * di + 0.5 * dj - 0.5 * dij, axis=2)
    term3 = cross.sum() / p**2
    return float(np.sqrt(max(term1 - term2 + term3, 0.0)))
