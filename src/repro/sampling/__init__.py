"""Design-point selection: LHS variant, discrepancy metrics, optimizers."""

from repro.sampling.adaptive import adaptive_sample
from repro.sampling.discrepancy import centered_l2_discrepancy, star_l2_discrepancy
from repro.sampling.halton import halton
from repro.sampling.lhs import latin_hypercube, lhs_levels
from repro.sampling.optimizer import (
    best_lhs_sample,
    discrepancy_curve,
    find_knee,
    min_pairwise_distance,
    negative_maximin,
)
from repro.sampling.random_design import random_design
from repro.sampling.plackett_burman import plackett_burman, foldover

__all__ = [
    "adaptive_sample",
    "halton",
    "centered_l2_discrepancy",
    "star_l2_discrepancy",
    "latin_hypercube",
    "lhs_levels",
    "best_lhs_sample",
    "discrepancy_curve",
    "find_knee",
    "min_pairwise_distance",
    "negative_maximin",
    "random_design",
    "plackett_burman",
    "foldover",
]
