"""Independently random test designs.

The paper estimates model accuracy on *"a randomly and independently
generated set of test data points"* — fifty points drawn uniformly from the
restricted Table 2 space.  This module provides that draw, plus plain random
designs used as a sampling-strategy ablation baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.design_space import DesignSpace
from repro.util.rng import make_rng


def random_design(space: DesignSpace, count: int, seed: int) -> np.ndarray:
    """Uniform random unit-cube design of ``count`` points over ``space``."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = make_rng(seed, "random-design", space.name, count)
    return space.random_unit_points(count, rng)
