"""Discrepancy-optimised sample selection and the Figure 2 machinery.

The paper generates *"a large number of latin hypercube samples"* and keeps
the one with the best (lowest) L2-star discrepancy; the best obtained
discrepancy as a function of sample size traces the curve of Figure 2, whose
knee guides the choice of simulation budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.design_space import DesignSpace
from repro.sampling.discrepancy import centered_l2_discrepancy
from repro.sampling.lhs import latin_hypercube
from repro.util.rng import make_rng

DiscrepancyFn = Callable[[np.ndarray], float]


def min_pairwise_distance(points: np.ndarray) -> float:
    """Smallest pairwise Euclidean distance within a unit-cube sample.

    The *maximin* design criterion (Johnson et al. 1990) prefers samples
    whose closest pair is as far apart as possible; it is an alternative
    space-filling measure to the discrepancy.  Returns 0.0 for samples
    with duplicate points.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if len(points) < 2:
        raise ValueError("need at least two points")
    diff = points[:, None, :] - points[None, :, :]
    dist2 = (diff ** 2).sum(axis=2)
    dist2[np.diag_indices_from(dist2)] = np.inf
    return float(np.sqrt(dist2.min()))


def negative_maximin(points: np.ndarray) -> float:
    """Maximin criterion as a minimisation metric for :func:`best_lhs_sample`."""
    return -min_pairwise_distance(points)


@dataclass(frozen=True)
class OptimizedSample:
    """A best-of-N latin hypercube sample and its diagnostics."""

    points: np.ndarray  # (p, n) unit-cube coordinates
    discrepancy: float
    candidates: int
    sample_size: int


def best_lhs_sample(
    space: DesignSpace,
    count: int,
    seed: int,
    candidates: int = 64,
    metric: Optional[DiscrepancyFn] = None,
    jitter: bool = True,
) -> OptimizedSample:
    """Generate ``candidates`` LHS samples and keep the lowest-discrepancy one.

    Parameters
    ----------
    space:
        Design space to sample.
    count:
        Sample size ``p``.
    seed:
        Root seed; candidate ``i`` uses an independent derived stream.
    candidates:
        Number of LHS candidates to generate ("a large number" in the
        paper; 64 by default, more gives marginally better discrepancy).
    metric:
        Discrepancy function (defaults to the centered L2 discrepancy).
    """
    if candidates < 1:
        raise ValueError("candidates must be >= 1")
    metric = metric or centered_l2_discrepancy
    best_points: Optional[np.ndarray] = None
    best_value = np.inf
    for i in range(candidates):
        rng = make_rng(seed, "lhs-candidate", count, i)
        pts = latin_hypercube(space, count, rng, jitter=jitter)
        value = metric(pts)
        if value < best_value:
            best_value = value
            best_points = pts
    assert best_points is not None
    return OptimizedSample(
        points=best_points,
        discrepancy=float(best_value),
        candidates=candidates,
        sample_size=count,
    )


def discrepancy_curve(
    space: DesignSpace,
    sizes: Sequence[int],
    seed: int,
    candidates: int = 64,
    metric: Optional[DiscrepancyFn] = None,
) -> List[Tuple[int, float]]:
    """Best obtained discrepancy for each sample size (the Figure 2 curve)."""
    curve = []
    for size in sizes:
        sample = best_lhs_sample(space, size, seed, candidates=candidates, metric=metric)
        curve.append((size, sample.discrepancy))
    return curve


def find_knee(x: Sequence[float], y: Sequence[float]) -> float:
    """Locate the knee of a decreasing curve by maximum distance to the chord.

    The paper picks a sample size "near the knee" of the discrepancy curve;
    this helper makes that choice reproducible: the knee is the point with
    the largest perpendicular distance to the straight line joining the
    curve's endpoints (the standard "kneedle"-style geometric criterion).
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if len(x_arr) < 3:
        return float(x_arr[-1])
    # Normalise both axes so the geometry is scale-free.
    xs = (x_arr - x_arr[0]) / (x_arr[-1] - x_arr[0])
    span = y_arr.max() - y_arr.min()
    ys = (y_arr - y_arr.min()) / (span if span else 1.0)
    # Distance from each point to the endpoint chord.
    x0, y0, x1, y1 = xs[0], ys[0], xs[-1], ys[-1]
    norm = np.hypot(x1 - x0, y1 - y0)
    dist = np.abs((y1 - y0) * xs - (x1 - x0) * ys + x1 * y0 - y1 * x0) / norm
    return float(x_arr[int(np.argmax(dist))])
