"""Plackett-Burman screening designs (related-work baseline).

Yi et al. (HPCA 2005) — discussed in the paper's related work — screen
microarchitectural parameters with foldover Plackett-Burman designs: two-level
designs in which ``N`` runs estimate up to ``N - 1`` main effects.  They are
implemented here so the experiments can contrast PB screening (which assumes
negligible interactions) with the paper's LHS + RBF approach.

Designs are returned as ``(N, k)`` arrays of +/-1 factor settings; use
:func:`pb_to_unit` to map them onto unit-cube corners for a
:class:`~repro.core.design_space.DesignSpace`.
"""

from __future__ import annotations

import numpy as np

# First rows of the cyclic Plackett-Burman constructions (Plackett & Burman,
# 1946).  The remaining rows are cyclic shifts, plus a final all-minus row.
_GENERATORS = {
    12: "++-+++---+-",
    20: "++--++++-+-+----++-",
    24: "+++++-+-++--++--+-+----",
}


def _sylvester_hadamard(order: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix for power-of-two orders."""
    if order < 1 or order & (order - 1):
        raise ValueError("Sylvester construction needs a power-of-two order")
    h = np.array([[1]])
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h


def plackett_burman(factors: int) -> np.ndarray:
    """Smallest Plackett-Burman design accommodating ``factors`` factors.

    Parameters
    ----------
    factors:
        Number of two-level factors to screen (columns).

    Returns
    -------
    numpy.ndarray
        ``(N, factors)`` array of +/-1 settings with ``N`` a multiple of 4,
        ``N > factors``.  Columns are mutually orthogonal.
    """
    if factors < 1:
        raise ValueError("factors must be >= 1")
    runs = 4 * (-(-(factors + 1) // 4))  # next multiple of 4 above `factors`
    while True:
        design = _build(runs)
        if design is not None:
            return design[:, :factors]
        runs += 4
        if runs > 64:
            raise ValueError(f"no Plackett-Burman construction available for {factors} factors")


def _build(runs: int) -> np.ndarray | None:
    if runs in _GENERATORS:
        row = np.array([1 if c == "+" else -1 for c in _GENERATORS[runs]])
        k = runs - 1
        rows = [np.roll(row, shift) for shift in range(k)]
        design = np.vstack(rows + [-np.ones(k, dtype=int)])
        return design.astype(int)
    if runs >= 4 and runs & (runs - 1) == 0:  # power of two: Hadamard columns
        h = _sylvester_hadamard(runs)
        return h[:, 1:].astype(int)
    return None


def foldover(design: np.ndarray) -> np.ndarray:
    """Foldover of a two-level design: append the sign-reversed runs.

    Foldover de-aliases main effects from two-factor interactions, which is
    how Yi et al. use it.
    """
    design = np.asarray(design)
    return np.vstack([design, -design])


def pb_to_unit(design: np.ndarray) -> np.ndarray:
    """Map a +/-1 design onto unit-cube corners (0 for -1, 1 for +1)."""
    design = np.asarray(design, dtype=float)
    return (design + 1.0) / 2.0
