"""Adaptive (sequential) sampling — the paper's future-work extension.

Section 6 of the paper suggests that *"the simulation costs involved in
constructing predictive models can potentially be reduced using adaptive
sampling, wherein sets of design points to simulate are selected based on
data from initial small samples"*.

This module implements a simple, deterministic version of that idea:

1. start from a small discrepancy-optimised LHS seed sample;
2. fit two half-sample models (a jackknife split) and score a large random
   candidate pool by *model disagreement* — the absolute difference between
   the two half-models' predictions, a cheap proxy for predictive variance;
3. weight disagreement by the distance to the nearest already-simulated
   point (so batches stay space-filling) and add the top-scoring batch;
4. repeat until the budget is exhausted.

The model builder is injected, so the scheme works with any
:class:`repro.models.base.Model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.core.design_space import DesignSpace
from repro.sampling.optimizer import best_lhs_sample
from repro.util.rng import make_rng

#: Builds a fitted predictor from (unit-cube X, responses y); returns a
#: callable mapping (m, n) points to (m,) predictions.
ModelBuilder = Callable[[np.ndarray, np.ndarray], Callable[[np.ndarray], np.ndarray]]

#: Evaluates the true response (i.e. runs the simulator) at unit-cube points.
ResponseFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive sampling run."""

    points: np.ndarray  # (p, n) all simulated unit-cube points, in order
    responses: np.ndarray  # (p,)
    batch_sizes: List[int] = field(default_factory=list)


def adaptive_sample(
    space: DesignSpace,
    response_fn: ResponseFn,
    model_builder: ModelBuilder,
    budget: int,
    seed: int,
    initial: int = 20,
    batch: int = 10,
    pool: int = 512,
) -> AdaptiveResult:
    """Adaptively select and evaluate up to ``budget`` design points.

    Parameters
    ----------
    space:
        Design space sampled over.
    response_fn:
        Maps ``(m, n)`` unit-cube points to ``(m,)`` responses (simulation).
    model_builder:
        Fits a surrogate from the points gathered so far.
    budget:
        Total number of evaluated points (including the initial sample).
    seed:
        Root seed.
    initial:
        Size of the seed LHS sample.
    batch:
        Points added per adaptive round.
    pool:
        Size of the random candidate pool scored each round.
    """
    if budget < initial:
        raise ValueError("budget must be at least the initial sample size")
    seed_sample = best_lhs_sample(space, initial, seed, candidates=16)
    points = seed_sample.points
    responses = np.asarray(response_fn(points), dtype=float)
    batches = [initial]

    round_idx = 0
    while len(points) < budget:
        round_idx += 1
        take = min(batch, budget - len(points))
        rng = make_rng(seed, "adaptive-pool", round_idx)
        candidates = space.random_unit_points(pool, rng)

        # Jackknife split: interleave so both halves cover the space.
        half_a = model_builder(points[0::2], responses[0::2])
        half_b = model_builder(points[1::2], responses[1::2])
        disagreement = np.abs(half_a(candidates) - half_b(candidates))

        # Distance to the nearest simulated point keeps batches spread out.
        dists = np.sqrt(
            ((candidates[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
        ).min(axis=1)
        score = disagreement * dists

        chosen: List[int] = []
        for _ in range(take):
            idx = int(np.argmax(score))
            chosen.append(idx)
            # Penalise candidates close to the one just picked.
            d_new = np.sqrt(((candidates - candidates[idx]) ** 2).sum(axis=1))
            score = np.minimum(score, score * (d_new / (d_new.max() or 1.0)))
            score[idx] = -np.inf
        new_points = candidates[chosen]
        new_responses = np.asarray(response_fn(new_points), dtype=float)
        points = np.vstack([points, new_points])
        responses = np.concatenate([responses, new_responses])
        batches.append(take)

    return AdaptiveResult(points=points, responses=responses, batch_sizes=batches)
