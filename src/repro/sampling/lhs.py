"""Latin hypercube sampling, in the paper's variant.

The paper (Sec. 2.2) uses a variant of latin hypercube sampling [McKay et
al. 1979] in which *"the sample is ensured to have points corresponding to
all settings of a parameter, and the settings of each of the parameters are
randomly combined"*.  Two cases arise:

* parameters whose level count depends on the sample size (the *S* entries
  in Table 1, e.g. ROB size): classic LHS — one point per stratum of ``p``
  equal strata;
* parameters with a fixed, small number of levels ``L`` (e.g. the 6 L2
  sizes): every level appears either ``floor(p / L)`` or ``ceil(p / L)``
  times, and the assignment of levels to points is a random permutation, so
  all settings are covered as evenly as possible.

Points are produced in the unit cube; callers snap them to physical values
with :meth:`repro.core.design_space.DesignSpace.decode`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.design_space import DesignSpace


def lhs_levels(count: int, levels: int, rng: np.random.Generator) -> np.ndarray:
    """Random balanced assignment of ``levels`` settings to ``count`` points.

    Returns unit-cube coordinates (level centers on an even ``levels``-point
    grid over [0, 1]).  Every level appears ``count // levels`` or
    ``count // levels + 1`` times.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if levels == 1:
        return np.full(count, 0.5)
    reps = -(-count // levels)  # ceil
    assigned = np.tile(np.arange(levels), reps)[:count]
    rng.shuffle(assigned)
    return assigned / (levels - 1)


def _lhs_column(count: int, rng: np.random.Generator, jitter: bool) -> np.ndarray:
    """Classic one-point-per-stratum LHS column in [0, 1]."""
    strata = rng.permutation(count)
    offset = rng.random(count) if jitter else np.full(count, 0.5)
    return (strata + offset) / count


def latin_hypercube(
    space: DesignSpace,
    count: int,
    rng: np.random.Generator,
    jitter: bool = True,
    num_levels: Optional[int] = None,
) -> np.ndarray:
    """Draw one latin hypercube sample over ``space``.

    Parameters
    ----------
    space:
        Design space; parameters with a fixed ``levels`` attribute use the
        balanced level assignment, *S* parameters use classic LHS strata.
    count:
        Sample size ``p``.
    rng:
        Source of randomness.
    jitter:
        For *S* parameters, whether to jitter within each stratum (classic
        LHS) or use stratum centers.
    num_levels:
        Level count used when snapping *S* parameters onto a grid; defaults
        to ``count`` (the paper's sample-size dependent levels).

    Returns
    -------
    numpy.ndarray
        ``(count, n)`` unit-cube sample.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    cols = []
    for param in space.parameters:
        if param.levels is not None:
            cols.append(lhs_levels(count, param.levels, rng))
        else:
            col = _lhs_column(count, rng, jitter)
            levels = num_levels if num_levels is not None else count
            if levels >= 2:
                col = np.round(col * (levels - 1)) / (levels - 1)
            cols.append(col)
    return np.column_stack(cols)
