"""Plain-text table and series rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    str_headers = [_cell(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(len(cell))
            else:
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(str_headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    label: str = "",
) -> str:
    """Render an (x, y) series as a one-line-per-point ASCII bar chart.

    Used to show the *shape* of figure reproductions (knees, tapering error
    curves) directly in benchmark output.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if not x:
        return label
    lo = min(y)
    hi = max(y)
    span = (hi - lo) or 1.0
    lines = [label] if label else []
    for xv, yv in zip(x, y):
        bar = "#" * max(1, int(round((yv - lo) / span * width)))
        lines.append(f"{_cell(xv):>10} | {bar} {yv:.4g}")
    return "\n".join(lines)
