"""Deterministic random-number helpers.

Every stochastic component in the library receives an explicit integer seed.
To keep independent components decorrelated while remaining reproducible,
seeds are derived from a root seed plus a string label via a stable hash.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK_63 = (1 << 63) - 1


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``root_seed`` and a label path.

    The derivation uses SHA-256 over the textual representation of the root
    seed and labels, so the result is stable across Python processes and
    versions (unlike the built-in ``hash``).

    Parameters
    ----------
    root_seed:
        The root seed for the whole experiment.
    labels:
        Any hashable/printable values naming the component (e.g. a benchmark
        name and a sample index).

    Returns
    -------
    int
        A non-negative 63-bit integer seed.
    """
    text = repr((int(root_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK_63


def make_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root_seed, *labels))
