"""Small shared utilities: seeded RNG construction, table rendering, hashing."""

from repro.util.rng import derive_seed, make_rng
from repro.util.tables import format_table, render_series

__all__ = ["derive_seed", "make_rng", "format_table", "render_series"]
