"""Output formats for lint results: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO

from repro.lint.runner import LintResult

#: Version stamped into JSON reports so consumers can detect schema drift.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, stream: IO[str]) -> None:
    """Write a flake8-style ``path:line:col: RULE message`` report."""
    for finding in result.findings:
        stream.write(f"{finding.location()}: {finding.rule} {finding.message}\n")
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        stream.write(
            f"\n{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s) ({per_rule})\n"
        )
    else:
        stream.write(f"{result.files_checked} file(s) checked, no findings\n")
    if result.suppressed:
        stream.write(f"[{len(result.suppressed)} suppressed by noqa]\n")
    if result.baselined:
        stream.write(f"[{len(result.baselined)} grandfathered by baseline]\n")


def render_json(result: LintResult, stream: IO[str]) -> None:
    """Write the result as a single machine-readable JSON document."""
    doc = {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "repro.lint",
        "files_checked": result.files_checked,
        "ok": result.ok,
        "counts": result.counts_by_rule(),
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
    }
    json.dump(doc, stream, indent=2, sort_keys=True)
    stream.write("\n")


#: Reporter registry used by the CLI ``--format`` flag.
REPORTERS = {
    "text": render_text,
    "json": render_json,
}
