"""Output formats for lint results: human text, machine JSON, and SARIF."""

from __future__ import annotations

import json
from typing import IO

from repro.lint.core import RULES, Finding
from repro.lint.runner import LintResult

#: Version stamped into JSON reports so consumers can detect schema drift.
JSON_SCHEMA_VERSION = 1

#: SARIF spec pinned by the report's ``version``/``$schema`` fields.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, stream: IO[str]) -> None:
    """Write a flake8-style ``path:line:col: RULE message`` report."""
    for finding in result.findings:
        tag = " (note)" if finding.severity == "note" else ""
        stream.write(
            f"{finding.location()}: {finding.rule}{tag} {finding.message}\n")
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        notes = len(result.notes)
        note_part = f", {notes} note(s)" if notes else ""
        stream.write(
            f"\n{len(result.errors)} finding(s){note_part} in "
            f"{result.files_checked} file(s) ({per_rule})\n"
        )
    else:
        stream.write(f"{result.files_checked} file(s) checked, no findings\n")
    if result.suppressed:
        stream.write(f"[{len(result.suppressed)} suppressed by noqa]\n")
    if result.baselined:
        stream.write(f"[{len(result.baselined)} grandfathered by baseline]\n")


def render_json(result: LintResult, stream: IO[str]) -> None:
    """Write the result as a single machine-readable JSON document."""
    doc = {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "repro.lint",
        "files_checked": result.files_checked,
        "ok": result.ok,
        "counts": result.counts_by_rule(),
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
    }
    json.dump(doc, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _sarif_level(finding: Finding) -> str:
    return "note" if finding.severity == "note" else "error"


def _sarif_result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": _sarif_level(finding),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": finding.line,
                    # SARIF columns are 1-based; findings carry 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }


def sarif_document(result: LintResult) -> dict:
    """Build the SARIF 2.1.0 log dict for ``result`` (one run, one tool)."""
    seen_rules = sorted({f.rule for f in result.findings})
    rules = []
    for rule_id in seen_rules:
        cls = RULES.get(rule_id)
        descriptor = {"id": rule_id}
        if cls is not None:
            descriptor["shortDescription"] = {"text": cls.title}
            if cls.rationale:
                descriptor["fullDescription"] = {"text": cls.rationale}
            descriptor["defaultConfiguration"] = {
                "level": "note" if cls.severity == "note" else "error",
            }
        rules.append(descriptor)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "results": [_sarif_result(f) for f in result.findings],
        }],
    }


def render_sarif(result: LintResult, stream: IO[str]) -> None:
    """Write the result as a SARIF 2.1.0 log (``--format sarif``)."""
    json.dump(sarif_document(result), stream, indent=2, sort_keys=True)
    stream.write("\n")


#: Reporter registry used by the CLI ``--format`` flag.
REPORTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
