"""Whole-program call graph and fixed-point passes over module summaries.

:class:`CallGraph` stitches the per-file :data:`ModuleSummary` facts of
:mod:`repro.lint.semantic.summary` into one program view: a function
table keyed by qualified name, a class table for method resolution
(following resolved base classes), and a call-edge relation.  On top of
that it runs the two cross-module fixed points the semantic rules need:

* :meth:`reachable` — breadth-first reachability from a set of root
  functions, keeping one witness parent per reached node so DET001 can
  print the full ``metric → helper → time.time()`` chain; and
* :meth:`ndarray_returning` — the least fixed point of "returns an
  ndarray": seeded by functions whose annotations or return expressions
  prove it, closed over functions that return another member's call.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.semantic.summary import ModuleSummary


class CallGraph:
    """Program-wide symbol table + call edges built from summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        #: function qname -> function record (see summary.py for shape)
        self.functions: Dict[str, Dict[str, Any]] = {}
        #: function qname -> repo-relative path of the defining file
        self.paths: Dict[str, str] = {}
        #: class qname -> class record (bases, methods, attr_types)
        self.classes: Dict[str, Dict[str, Any]] = {}
        for summary in summaries:
            path = summary["path"]
            for qname, record in summary["functions"].items():
                self.functions[qname] = record
                self.paths[qname] = path
            for record in summary["classes"].values():
                self.classes[record["qname"]] = record
        self._edges: Dict[str, List[Tuple[str, int]]] = {}
        for qname, record in self.functions.items():
            self._edges[qname] = self._resolve_calls(record)

    # -- resolution --------------------------------------------------------

    def _resolve_calls(self, record: Dict[str, Any]) -> List[Tuple[str, int]]:
        edges: List[Tuple[str, int]] = []
        for call in record["calls"]:
            target = self.resolve_call(call)
            if target is not None:
                edges.append((target, call["line"]))
        return edges

    def resolve_call(self, call: Dict[str, Any]) -> Optional[str]:
        """Resolve one call-IR entry to a known function qname, or None."""
        if call["kind"] in ("direct", "ref"):
            target = call["target"]
            if target in self.functions:
                return target
            if call["kind"] == "direct" and target in self.classes:
                return self.resolve_method(target, "__init__")
            return None
        if call["kind"] == "method":
            return self.resolve_method(call["recv"], call["name"])
        return None

    def resolve_method(self, class_qname: str, name: str) -> Optional[str]:
        """Resolve ``Class.name`` through the class and its resolved bases."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            cls = stack.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            record = self.classes.get(cls)
            if record is None:
                continue
            qname = f"{cls}.{name}"
            if name in record["methods"] and qname in self.functions:
                return qname
            stack.extend(record["bases"])
        return None

    def callees(self, qname: str) -> List[Tuple[str, int]]:
        """Resolved ``(callee_qname, call_line)`` edges out of ``qname``."""
        return self._edges.get(qname, [])

    # -- fixed points ------------------------------------------------------

    def roots_matching(self, suffixes: Iterable[str]) -> List[str]:
        """Function qnames ending in one of ``suffixes`` (``.a.b`` match)."""
        out = []
        for qname in self.functions:
            if any(qname == s or qname.endswith("." + s) for s in suffixes):
                out.append(qname)
        return sorted(out)

    def reachable(self, roots: Iterable[str]) -> Dict[str, Optional[str]]:
        """BFS closure of ``roots``; maps reached qname -> witness parent.

        Roots map to ``None``.  The parent chain reconstructs one shortest
        call path from a root to any reached function for diagnostics.
        """
        parent: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.functions and root not in parent:
                parent[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee, _line in self.callees(current):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)
        return parent

    def call_chain(self, parent: Dict[str, Optional[str]],
                   qname: str) -> List[str]:
        """Root-first call path to ``qname`` under a ``reachable`` map."""
        chain = [qname]
        seen = {qname}
        while parent.get(chain[-1]) is not None:
            nxt = parent[chain[-1]]
            if nxt in seen:  # pragma: no cover - parent maps are acyclic
                break
            chain.append(nxt)
            seen.add(nxt)
        chain.reverse()
        return chain

    def ndarray_returning(self) -> FrozenSet[str]:
        """Least fixed point of functions known to return an ndarray."""
        known: Set[str] = {
            qname for qname, record in self.functions.items()
            if record["returns_ndarray"]
        }
        changed = True
        while changed:
            changed = False
            for qname, record in self.functions.items():
                if qname in known:
                    continue
                for target in record["return_calls"]:
                    resolved = target if target in self.functions else (
                        self.resolve_method(target, "__init__")
                        if target in self.classes else None)
                    if resolved in known or target in known:
                        known.add(qname)
                        changed = True
                        break
        return frozenset(known)
