"""Per-file semantic extraction: the facts one module contributes.

One :data:`ModuleSummary` is extracted per source file and holds
everything the project-wide passes need — resolved imports, class and
function symbols, a call IR, nondeterminism witnesses, mutation and
pickling facts, and ndarray-typed loops.  Summaries are plain
JSON-serialisable dicts-of-primitives, which is what lets the
whole-program fact cache (:mod:`repro.lint.semantic.cache`) key them by
file content hash and replay them without re-parsing.

The extraction is deliberately best-effort: anything it cannot resolve
is recorded as unknown rather than guessed, so the downstream rules err
toward silence, not false positives.

Call IR entries (the ``calls`` list of a function record):

``{"kind": "direct", "target": "pkg.mod.fn", "line": N}``
    A call (or reference — e.g. a callback passed to a pool) to a
    resolved symbol.  The target may be a class, in which case the call
    graph routes it to ``__init__``; it may also be an external dotted
    name (``numpy.where``), which the graph simply ignores.
``{"kind": "method", "recv": "pkg.mod.Class", "name": "m", "line": N}``
    A method call on a value statically known to be an instance of
    ``recv``; resolved against the class (and its bases) at graph time.
``{"kind": "ref", "target": "pkg.mod.fn", "line": N}``
    A function passed as an argument (a callback that may be invoked
    later).  Unlike ``direct``, a ``ref`` to a *class* is ignored at
    graph time — ``isinstance(x, Cls)`` must not pull ``Cls.__init__``
    into reachability.
"""

from __future__ import annotations

import ast
import os
from typing import Any, Dict, List, Optional

from repro.lint.core import attribute_chain

#: Bump to invalidate every cached summary when the extractor changes.
EXTRACTOR_VERSION = 1

#: JSON shape of one module's facts.
ModuleSummary = Dict[str, Any]

# -- nondeterminism witnesses (DET001 inputs) ---------------------------------

#: Dotted calls that read a wall clock.
_TIME_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: ``numpy.random`` attributes that construct fresh seeded state (allowed).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
})

#: Dotted calls producing fresh entropy regardless of arguments.
_ENTROPY_CALLS = frozenset({
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
})

#: Environment reads.
_ENV_CALLS = frozenset({"os.getenv", "os.environ.get"})

#: Filesystem enumeration (result order / content is machine state).
_FSLIST_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})

#: Method names that enumerate the filesystem on any receiver
#: (``Path.iterdir`` / ``Path.rglob`` have no non-filesystem homonyms in
#: this codebase; bare ``glob``/``walk`` attributes are too common to flag).
_FSLIST_METHODS = frozenset({"iterdir", "rglob"})

# -- ndarray type inference (VEC001 inputs) -----------------------------------

#: ``numpy`` top-level callables returning arrays.
_NP_ARRAY_CONSTRUCTORS = frozenset({
    "array", "asarray", "asanyarray", "ascontiguousarray", "zeros", "ones",
    "empty", "full", "zeros_like", "ones_like", "empty_like", "full_like",
    "arange", "linspace", "logspace", "geomspace", "where", "concatenate",
    "stack", "vstack", "hstack", "column_stack", "atleast_1d", "atleast_2d",
    "atleast_3d", "sort", "argsort", "unique", "cumsum", "cumprod", "diff",
    "maximum", "minimum", "clip", "abs", "exp", "log", "sqrt", "sin", "cos",
    "power", "repeat", "tile", "fromiter", "frombuffer", "copy",
})

#: ``np.random.Generator`` methods returning arrays (with a size argument
#: they can also return scalars; for loop detection array is the safe bet).
_RNG_ARRAY_METHODS = frozenset({
    "integers", "random", "normal", "uniform", "standard_normal", "choice",
    "permutation", "permuted", "exponential", "poisson", "binomial",
})

#: ndarray methods that return another ndarray.
_NDARRAY_CHAIN_METHODS = frozenset({
    "copy", "ravel", "flatten", "reshape", "astype", "cumsum",
    "clip", "round", "transpose", "squeeze",
})

# -- cached-value aliasing (MUT001 inputs) ------------------------------------

#: Mapping-mutating method names.
_MUTATING_METHODS = frozenset({
    "update", "pop", "popitem", "clear", "setdefault", "__setitem__",
})

#: Attribute names whose subscript/``.get`` reads alias cached entries.
_CACHE_ATTRS = frozenset({"_cache"})

#: Method names whose return values are simulation-cache reads.
_CACHE_RETURNING_METHODS = frozenset({"result_at"})

#: Calls that launder a protected value into a fresh copy.
_COPYING_CALLS = frozenset({"dict", "list", "deepcopy", "copy"})


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``, walking up through ``__init__.py``.

    ``src/repro/simulator/cache.py`` maps to ``repro.simulator.cache``
    because every directory from ``repro`` down carries an
    ``__init__.py``.  A file outside any package maps to its bare stem,
    which is how standalone harnesses under ``benchmarks/`` appear.
    """
    path = os.path.normpath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = []
    while directory and os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.append(pkg)
    parts.reverse()
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts) if parts else stem


class _Scope:
    """One lexical scope: bindings for imports, types and local defs."""

    def __init__(self, kind: str, qname: str):
        self.kind = kind  # "module" | "class" | "function"
        self.qname = qname
        #: local name -> dotted import target
        self.imports: Dict[str, str] = {}
        #: local name -> type descriptor ("ndarray", "rng", class qname)
        self.types: Dict[str, str] = {}
        #: local name -> qname of a def/class introduced in this scope
        self.defs: Dict[str, str] = {}
        #: defs nested inside a *function* body: name -> "function"|"class"|
        #: "lambda" (all unpicklable by qualified name)
        self.local_defs: Dict[str, str] = {}
        #: local names bound to open file handles
        self.handles: set = set()
        #: local names bound to ProcessPoolExecutor instances
        self.pools: set = set()
        #: local names aliasing cached values: name -> origin description
        self.protected: Dict[str, str] = {}


class _Extractor(ast.NodeVisitor):
    """Extraction driver for one module; fills class/function records."""

    def __init__(self, module: str, path: str):
        self.module = module
        self.path = path.replace(os.sep, "/")
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.scopes: List[_Scope] = [_Scope("module", module)]
        self._record: Optional[Dict[str, Any]] = None

    # -- scope helpers -----------------------------------------------------

    @property
    def scope(self) -> _Scope:
        return self.scopes[-1]

    def _lookup(self, table_name: str, name: str) -> Optional[str]:
        """Innermost binding of ``name`` (class bodies don't enclose)."""
        for scope in reversed(self.scopes):
            if scope.kind == "class":
                continue  # class bodies are not enclosing scopes
            table = getattr(scope, table_name)
            if name in table:
                return table[name]
        return None

    def _current_class(self) -> Optional[str]:
        for scope in reversed(self.scopes):
            if scope.kind == "class":
                return scope.qname
        return None

    def _class_record_by_qname(self, qname: str) -> Optional[Dict[str, Any]]:
        record = self.classes.get(qname.rsplit(".", 1)[-1])
        if record is not None and record["qname"] == qname:
            return record
        return None

    # -- pre-scan: module symbols so forward references resolve ------------

    def prescan(self, tree: ast.Module) -> None:
        """Record module-level defs and classes before the main walk."""
        module_scope = self.scopes[0]
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_scope.defs[node.name] = f"{self.module}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                qname = f"{self.module}.{node.name}"
                module_scope.defs[node.name] = qname
                self.classes[node.name] = {
                    "qname": qname,
                    "line": node.lineno,
                    "bases": [],
                    "methods": [
                        n.name for n in node.body
                        if isinstance(n, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                    ],
                    "attr_types": {},
                }

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.scope.imports[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.scope.imports[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            pkg = self.module.split(".")
            anchor = pkg[: len(pkg) - node.level]
            base = ".".join(anchor + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.scope.imports[local] = \
                f"{base}.{alias.name}" if base else alias.name

    # -- resolution and type inference -------------------------------------

    def _resolve_name(self, name: str) -> Optional[str]:
        """Resolve a bare name to a dotted target (def, class or import)."""
        target = self._lookup("defs", name)
        if target is not None:
            return target
        return self._lookup("imports", name)

    def _resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve ``a.b.c`` through the import table to a dotted string."""
        chain = attribute_chain(node)
        if chain is None:
            return None
        root = self._resolve_name(chain[0])
        if root is None:
            return None
        return ".".join((root,) + chain[1:])

    def infer_type(self, node: ast.AST) -> Optional[str]:
        """Best-effort type of an expression: ndarray, rng, or class qname."""
        if isinstance(node, ast.Name):
            return self._lookup("types", node.id)
        if isinstance(node, ast.Attribute):
            chain = attribute_chain(node)
            if chain and chain[0] == "self" and len(chain) == 2:
                cls = self._current_class()
                if cls is not None:
                    record = self._class_record_by_qname(cls)
                    if record is not None:
                        return record["attr_types"].get(chain[1])
            return None
        if isinstance(node, ast.BinOp):
            if "ndarray" in (self.infer_type(node.left),
                             self.infer_type(node.right)):
                return "ndarray"
            return None
        if isinstance(node, ast.Call):
            return self._infer_call_type(node)
        return None

    def _infer_call_type(self, node: ast.Call) -> Optional[str]:
        dotted = self._resolve_dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] == "numpy":
                if dotted == "numpy.random.default_rng":
                    return "rng"
                if len(parts) == 2 and parts[1] in _NP_ARRAY_CONSTRUCTORS:
                    return "ndarray"
                return None
            # Calling a CapWord dotted name yields an instance of that
            # class; whether it really is a class is decided at graph time.
            if parts[-1][:1].isupper():
                return dotted
            return None
        if isinstance(node.func, ast.Attribute):
            recv_type = self.infer_type(node.func.value)
            if recv_type == "rng" and node.func.attr in _RNG_ARRAY_METHODS:
                return "ndarray"
            if recv_type == "ndarray" \
                    and node.func.attr in _NDARRAY_CHAIN_METHODS:
                return "ndarray"
        return None

    def annotation_type(self, ann: Optional[ast.AST]) -> Optional[str]:
        """Type descriptor from an annotation node, if recognisable."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        else:
            text = self._safe_unparse(ann)
        if "ndarray" in text or "NDArray" in text:
            return "ndarray"
        if text.endswith("random.Generator"):
            return "rng"
        if isinstance(ann, (ast.Name, ast.Attribute)):
            dotted = self._resolve_dotted(ann)
            if dotted is not None and dotted.rsplit(".", 1)[-1][:1].isupper():
                return dotted
        return None

    @staticmethod
    def _safe_unparse(node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"

    # -- declarations ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        in_function = self.scope.kind == "function"
        record = None if in_function else self.classes.get(node.name)
        if in_function:
            self.scope.local_defs[node.name] = "class"
            qname = f"{self.scope.qname}.{node.name}"
            self.scope.defs[node.name] = qname
        elif record is not None:
            record["bases"] = [
                dotted for dotted in
                (self._resolve_dotted(base) for base in node.bases)
                if dotted is not None
            ]
            qname = record["qname"]
        else:  # pragma: no cover - class nested directly in a class body
            qname = f"{self.scope.qname}.{node.name}"
        for decorator in node.decorator_list:
            self.visit(decorator)
        self.scopes.append(_Scope("class", qname))
        for child in node.body:
            self.visit(child)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node) -> None:
        parent = self.scope
        cls = self._current_class()
        if parent.kind == "function":
            parent.local_defs.setdefault(node.name, "function")
            qname = f"{parent.qname}.{node.name}"
            parent.defs[node.name] = qname
        elif parent.kind == "class":
            qname = f"{parent.qname}.{node.name}"
        else:
            qname = f"{self.module}.{node.name}"

        record: Dict[str, Any] = {
            "name": node.name,
            "cls": cls if parent.kind == "class" else None,
            "line": node.lineno,
            "calls": [],
            "witnesses": [],
            "returns_ndarray": False,
            "return_calls": [],
            "loops": [],
            "par": [],
            "mut": [],
        }
        self.functions[qname] = record

        outer_record = self._record
        self._record = record
        for decorator in node.decorator_list:
            self.visit(decorator)

        scope = _Scope("function", qname)
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if parent.kind == "class" and positional and not any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in node.decorator_list):
            # The receiver argument is an instance of the enclosing class
            # (``cls`` on classmethods resolves methods identically).
            scope.types[positional[0].arg] = parent.qname
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + ([args.vararg] if args.vararg else [])
            + list(args.kwonlyargs)
            + ([args.kwarg] if args.kwarg else [])
        ):
            atype = self.annotation_type(arg.annotation)
            if atype is not None:
                scope.types[arg.arg] = atype
        if self.annotation_type(node.returns) == "ndarray":
            record["returns_ndarray"] = True

        self.scopes.append(scope)
        for child in node.body:
            self.visit(child)
        self.scopes.pop()
        self._record = outer_record

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambda bodies contribute calls but no bindings worth tracking.
        self.visit(node.body)

    # -- statements --------------------------------------------------------

    def _emit(self, entry: Dict[str, Any]) -> None:
        if self._record is not None:
            self._record["calls"].append(entry)

    def _witness(self, kind: str, node: ast.AST, detail: str) -> None:
        if self._record is not None:
            self._record["witnesses"].append(
                {"kind": kind, "line": node.lineno,
                 "col": node.col_offset, "detail": detail})

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_entry_mutation_target(node)
        self.generic_visit(node)
        value_type = self.infer_type(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind_name(target.id, node.value, value_type)
            elif isinstance(target, ast.Attribute):
                self._bind_self_attr(target, value_type)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        declared = self.annotation_type(node.annotation)
        value_type = declared or (
            self.infer_type(node.value) if node.value else None)
        if isinstance(node.target, ast.Name):
            self._bind_name(node.target.id, node.value, value_type)
        elif isinstance(node.target, ast.Attribute):
            self._bind_self_attr(node.target, value_type)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name) \
                and target.id in self.scope.protected:
            self._mutation(target, target.id, "augmented assignment")
        elif isinstance(target, ast.Subscript):
            self._check_subscript_mutation(target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._check_subscript_mutation(target)
        self.generic_visit(node)

    def _bind_name(self, name: str, value: Optional[ast.AST],
                   value_type: Optional[str]) -> None:
        scope = self.scope
        if value_type is not None:
            scope.types[name] = value_type
        else:
            scope.types.pop(name, None)
        scope.handles.discard(name)
        scope.pools.discard(name)
        scope.protected.pop(name, None)
        if isinstance(value, ast.Lambda):
            scope.local_defs[name] = "lambda"
            return
        scope.local_defs.pop(name, None)
        if isinstance(value, ast.Name) and value.id in scope.protected:
            scope.protected[name] = scope.protected[value.id]
            return
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name):
                if value.func.id == "open":
                    scope.handles.add(name)
                if value.func.id in _COPYING_CALLS:
                    return  # dict(cached) etc: a fresh copy, unprotected
            dotted = self._resolve_dotted(value.func)
            if dotted is not None \
                    and dotted.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                scope.pools.add(name)
            origin = self._cache_read_origin(value)
            if origin is not None:
                scope.protected[name] = origin
        elif isinstance(value, ast.Subscript):
            origin = self._cache_subscript_origin(value)
            if origin is not None:
                scope.protected[name] = origin

    def _cache_read_origin(self, call: ast.Call) -> Optional[str]:
        """Origin label when ``call`` reads a cached value, else None."""
        if not isinstance(call.func, ast.Attribute):
            return None
        if call.func.attr in _CACHE_RETURNING_METHODS:
            return f"{call.func.attr}()"
        if call.func.attr == "get":
            chain = attribute_chain(call.func.value)
            if chain and chain[-1] in _CACHE_ATTRS:
                return f"{'.'.join(chain)}.get()"
        return None

    def _cache_subscript_origin(self, node: ast.Subscript) -> Optional[str]:
        chain = attribute_chain(node.value)
        if chain and chain[-1] in _CACHE_ATTRS:
            return f"{'.'.join(chain)}[...]"
        return None

    def _bind_self_attr(self, target: ast.Attribute,
                        value_type: Optional[str]) -> None:
        chain = attribute_chain(target)
        if not (chain and chain[0] == "self" and len(chain) == 2):
            return
        cls = self._current_class()
        if cls is None or value_type is None:
            return
        record = self._class_record_by_qname(cls)
        if record is not None:
            record["attr_types"].setdefault(chain[1], value_type)

    def _mutation(self, node: ast.AST, var: str, how: str) -> None:
        if self._record is not None:
            origin = self.scope.protected.get(var, "cache read")
            self._record["mut"].append({
                "line": node.lineno, "col": node.col_offset,
                "var": var, "how": how, "origin": origin,
            })

    def _check_entry_mutation_target(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._check_subscript_mutation(target)

    def _check_subscript_mutation(self, target: ast.Subscript) -> None:
        """``v[k] = ...`` / ``del v[k]`` where ``v`` aliases a cached value,
        or one-step-deeper ``cache[key][k] = ...`` writes."""
        value = target.value
        if isinstance(value, ast.Name) \
                and value.id in self.scope.protected:
            self._mutation(target, value.id, "item write")
        elif isinstance(value, ast.Subscript):
            origin = self._cache_subscript_origin(value)
            if origin is not None and self._record is not None:
                self._record["mut"].append({
                    "line": target.lineno, "col": target.col_offset,
                    "var": self._safe_unparse(value), "how": "item write",
                    "origin": origin,
                })

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if isinstance(item.optional_vars, ast.Name) \
                    and isinstance(item.context_expr, ast.Call):
                name = item.optional_vars.id
                call = item.context_expr
                if isinstance(call.func, ast.Name) and call.func.id == "open":
                    self.scope.handles.add(name)
                dotted = self._resolve_dotted(call.func)
                if dotted is not None \
                        and dotted.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                    self.scope.pools.add(name)
        for child in node.body:
            self.visit(child)

    def visit_Return(self, node: ast.Return) -> None:
        self.generic_visit(node)
        if self._record is None or node.value is None:
            return
        if self.infer_type(node.value) == "ndarray":
            self._record["returns_ndarray"] = True
        elif isinstance(node.value, ast.Call):
            target = self._resolve_dotted(node.value.func) if isinstance(
                node.value.func, (ast.Name, ast.Attribute)) else None
            if target is not None:
                self._record["return_calls"].append(target)

    # -- loops: VEC001 candidates and order-dependence witnesses -----------

    def visit_For(self, node: ast.For) -> None:
        self._check_order_dependence(node.iter)
        entry = self._loop_entry(node.iter)
        if entry is not None and self._record is not None:
            entry["line"] = node.lineno
            entry["col"] = node.col_offset
            self._record["loops"].append(entry)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_order_dependence(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_order_dependence(self, iter_node: ast.AST) -> None:
        """Iteration whose order depends on namespace or process state."""
        if isinstance(iter_node, ast.Call):
            if isinstance(iter_node.func, ast.Name) \
                    and iter_node.func.id in ("vars", "globals", "locals"):
                self._witness(
                    "dictorder", iter_node,
                    f"iterating {iter_node.func.id}() is namespace-order "
                    "dependent")
                return
            dotted = self._resolve_dotted(iter_node.func)
        else:
            dotted = self._resolve_dotted(iter_node)
        if dotted == "os.environ" \
                or (dotted or "").startswith("os.environ."):
            self._witness("dictorder", iter_node,
                          "iterating os.environ depends on process state")

    def _loop_entry(self, iter_node: ast.AST) -> Optional[Dict[str, Any]]:
        """Classify a ``for`` iterable; None when not provably an array."""
        node = iter_node
        # Unwrap enumerate/zip/reversed down to the first array-ish operand.
        while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("enumerate", "zip", "reversed")
                and node.args):
            if node.func.id == "zip":
                for arg in node.args:
                    if self.infer_type(arg) == "ndarray":
                        node = arg
                        break
                else:
                    node = node.args[0]
            else:
                node = node.args[0]
        src = self._safe_unparse(node)
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "range"):
            if any(self._mentions_ndarray_extent(arg) for arg in node.args):
                return {"kind": "ndarray", "iter": src,
                        "trip": self._safe_unparse(node.args[-1])}
            return None
        if self.infer_type(node) == "ndarray":
            return {"kind": "ndarray", "iter": src, "trip": f"len({src})"}
        if isinstance(node, ast.Call) \
                and isinstance(node.func, (ast.Name, ast.Attribute)):
            target = self._resolve_dotted(node.func)
            if target is not None:
                return {"kind": "call", "target": target, "iter": src,
                        "trip": f"len({src})"}
        return None

    def _mentions_ndarray_extent(self, node: ast.AST) -> bool:
        """Whether ``node`` contains ``len(arr)`` / ``arr.shape[...]``."""
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                    and sub.func.id == "len" and sub.args
                    and self.infer_type(sub.args[0]) == "ndarray"):
                return True
            if (isinstance(sub, ast.Attribute) and sub.attr == "shape"
                    and self.infer_type(sub.value) == "ndarray"):
                return True
        return False

    # -- calls: IR, witnesses, MUT001 method mutations, PAR001 sites -------

    def visit_Call(self, node: ast.Call) -> None:
        self._examine_call(node)
        self.generic_visit(node)

    def _examine_call(self, node: ast.Call) -> None:
        func = node.func
        dotted: Optional[str] = None
        if isinstance(func, (ast.Name, ast.Attribute)):
            dotted = self._resolve_dotted(func)

        if dotted is not None:
            self._check_witness_call(node, dotted)
            self._emit({"kind": "direct", "target": dotted,
                        "line": node.lineno})
        elif isinstance(func, ast.Attribute):
            recv_type = self.infer_type(func.value)
            if recv_type not in (None, "ndarray", "rng"):
                self._emit({"kind": "method", "recv": recv_type,
                            "name": func.attr, "line": node.lineno})
            elif func.attr in _FSLIST_METHODS:
                self._witness("fslist", node,
                              f".{func.attr}() enumerates the filesystem")
            if (isinstance(func.value, ast.Name)
                    and func.value.id in self.scope.protected
                    and func.attr in _MUTATING_METHODS):
                self._mutation(node, func.value.id, f".{func.attr}() call")

        # Callback references: a function passed as an argument may be
        # called later — record a conservative edge for reachability.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = self._resolve_dotted(arg)
                if ref is not None:
                    self._emit({"kind": "ref", "target": ref,
                                "line": node.lineno})

        self._check_pool_submission(node)

    def _check_witness_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if dotted in _TIME_CALLS:
            self._witness("time", node, f"{dotted}() reads the wall clock")
        elif dotted in _ENTROPY_CALLS:
            self._witness("rng", node, f"{dotted}() draws fresh entropy")
        elif dotted in _ENV_CALLS:
            self._witness("env", node, f"{dotted}() reads the environment")
        elif dotted in _FSLIST_CALLS:
            self._witness("fslist", node,
                          f"{dotted}() enumerates the filesystem")
        elif (len(parts) == 3 and parts[0] == "numpy" and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_ALLOWED):
            self._witness("rng", node,
                          f"np.random.{parts[2]}() uses the global NumPy RNG")
        elif (len(parts) == 2 and parts[0] == "random"
                and parts[1] != "Random"):
            self._witness("rng", node,
                          f"random.{parts[1]}() uses the hidden stdlib RNG")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        chain = attribute_chain(node.value)
        if chain is not None and len(chain) == 2 \
                and self._resolve_name(chain[0]) == "os" \
                and chain[1] == "environ" \
                and isinstance(node.ctx, ast.Load):
            self._witness("env", node, "os.environ[...] read")
        self.generic_visit(node)

    # -- PAR001 ------------------------------------------------------------

    def _check_pool_submission(self, node: ast.Call) -> None:
        """PAR001 inputs: picklability of work shipped to a process pool."""
        func = node.func
        payload: List[ast.AST] = []
        site = None
        if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
            recv = func.value
            is_pool = (
                isinstance(recv, ast.Name) and self._is_pool_name(recv.id)
            ) or (
                isinstance(recv, ast.Call)
                and (self._resolve_dotted(recv.func) or "")
                .rsplit(".", 1)[-1] == "ProcessPoolExecutor"
            )
            if is_pool:
                site = f"ProcessPoolExecutor.{func.attr}"
                payload = list(node.args)
        else:
            dotted = self._resolve_dotted(func) if isinstance(
                func, (ast.Name, ast.Attribute)) else None
            if dotted is not None \
                    and dotted.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                site = "ProcessPoolExecutor(initializer=...)"
                payload = [kw.value for kw in node.keywords
                           if kw.arg in ("initializer", "initargs")]
        if site is None or self._record is None:
            return
        for arg in payload:
            issue = self._pickle_issue(arg)
            if issue is not None:
                self._record["par"].append({
                    "line": arg.lineno, "col": arg.col_offset,
                    "site": site, "issue": issue,
                })

    def _is_pool_name(self, name: str) -> bool:
        return any(name in scope.pools for scope in self.scopes)

    def _pickle_issue(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` cannot cross a process boundary, if detectable."""
        if isinstance(node, ast.Lambda):
            return "lambda functions cannot be pickled"
        if isinstance(node, ast.Name):
            for scope in reversed(self.scopes):
                if scope.kind == "module":
                    break
                if node.id in scope.local_defs:
                    kind = scope.local_defs[node.id]
                    return (f"'{node.id}' is a {kind} defined inside a "
                            "function body (unpicklable by qualified name)")
                if node.id in scope.handles:
                    return f"'{node.id}' is an open file handle"
        if isinstance(node, ast.Tuple):
            for element in node.elts:
                issue = self._pickle_issue(element)
                if issue is not None:
                    return issue
        return None


def extract_summary(path: str, tree: ast.Module,
                    module: Optional[str] = None) -> ModuleSummary:
    """Extract one file's :data:`ModuleSummary` from its parsed AST."""
    module = module or module_name_for_path(path)
    extractor = _Extractor(module, path)
    extractor.prescan(tree)
    extractor.visit(tree)
    return {
        "version": EXTRACTOR_VERSION,
        "module": module,
        "path": extractor.path,
        "classes": extractor.classes,
        "functions": extractor.functions,
    }
