"""The :class:`Project` handed to project-scope rules.

A project wraps the parsed :class:`~repro.lint.core.FileContext` set and
exposes the semantic layer lazily: module summaries (through the fact
cache when one is configured) and the :class:`CallGraph` are built on
first access, then shared by every rule in the run — four semantic
passes cost one analysis.

``graph_contexts`` can be a superset of ``contexts``: in ``--changed``
mode only the changed files are *linted* (produce findings), but the
call graph still spans the whole tree so cross-module reachability stays
sound.  Unchanged files come out of the fact cache without re-parsing.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.core import FileContext
from repro.lint.semantic.cache import FactCache, source_hash
from repro.lint.semantic.graph import CallGraph
from repro.lint.semantic.summary import ModuleSummary, extract_summary


def _rel(path: str) -> str:
    """Repo-relative forward-slash path used as the cache/summary key."""
    rel = os.path.relpath(path)
    if rel.startswith(".."):
        rel = os.path.abspath(path)
    return rel.replace(os.sep, "/")


class Project:
    """Whole-program view shared by every :class:`ProjectRule` in a run."""

    def __init__(self, contexts: Sequence[FileContext],
                 graph_sources: Optional[Iterable[str]] = None,
                 fact_cache: Optional[FactCache] = None):
        #: Files being linted this run (findings may only anchor here).
        self.contexts = list(contexts)
        self._graph_sources = list(graph_sources or [])
        self._cache = fact_cache if fact_cache is not None else FactCache(None)
        self._summaries: Optional[List[ModuleSummary]] = None
        self._graph: Optional[CallGraph] = None
        #: summary path key -> the path exactly as the runner saw it, so
        #: findings match the context paths used for suppression/baseline.
        self._ctx_paths = {_rel(ctx.path): ctx.path for ctx in self.contexts}
        #: Paths (as summary keys) of the linted files, for rules that
        #: must not report findings outside the linted set.
        self.linted_paths = frozenset(self._ctx_paths)

    def ctx_path(self, summary_path: str) -> str:
        """Runner-facing path for a summary path key (identity fallback)."""
        return self._ctx_paths.get(summary_path, summary_path)

    @property
    def summaries(self) -> List[ModuleSummary]:
        """Module summaries over the graph scope (built or cache-replayed)."""
        if self._summaries is None:
            self._summaries = self._build_summaries()
        return self._summaries

    @property
    def graph(self) -> CallGraph:
        """The program call graph (built lazily from the summaries)."""
        if self._graph is None:
            self._graph = CallGraph(self.summaries)
        return self._graph

    def save_cache(self) -> None:
        """Persist the fact cache if summaries were built this run."""
        if self._summaries is not None:
            self._cache.prune(s["path"] for s in self._summaries)
            self._cache.save()

    def _build_summaries(self) -> List[ModuleSummary]:
        summaries: List[ModuleSummary] = []
        seen = set()
        for ctx in self.contexts:
            key = _rel(ctx.path)
            seen.add(key)
            summaries.append(
                self._summarise(key, ctx.source, tree=ctx.tree))
        for path in self._graph_sources:
            key = _rel(path)
            if key in seen:
                continue
            seen.add(key)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    source = fh.read()
            except OSError:
                continue
            summary = self._summarise(key, source)
            if summary is not None:
                summaries.append(summary)
        return [s for s in summaries if s is not None]

    def _summarise(self, key: str, source: str,
                   tree: Optional[ast.Module] = None
                   ) -> Optional[ModuleSummary]:
        digest = source_hash(source)
        cached = self._cache.get(key, digest)
        if cached is not None:
            return cached
        if tree is None:
            try:
                tree = ast.parse(source, filename=key)
            except SyntaxError:
                return None
        summary = extract_summary(key, tree)
        self._cache.put(key, digest, summary)
        return summary


def build_project(contexts: Sequence[FileContext],
                  graph_sources: Optional[Iterable[str]] = None,
                  fact_cache_path: Optional[str] = None) -> Project:
    """Construct a :class:`Project`, wiring the on-disk fact cache.

    ``fact_cache_path=None`` disables persistence (summaries are still
    memoised in-process for the duration of the run).
    """
    cache = FactCache(fact_cache_path)
    return Project(contexts, graph_sources=graph_sources, fact_cache=cache)
