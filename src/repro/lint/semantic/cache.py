"""Whole-program fact cache: module summaries keyed by content hash.

Semantic extraction parses and walks every linted file; on a warm run
most files are unchanged, so their summaries can be replayed from disk.
The cache is one JSON document::

    {"tool": "repro.lint.semantic", "version": 1,
     "extractor": <EXTRACTOR_VERSION>,
     "files": {"src/repro/…/x.py": {"hash": "<sha256>", "summary": {...}}}}

keyed by repo-relative path with the file's source hash alongside, so a
stale entry can never be replayed for edited content.  A version or
extractor mismatch drops the whole cache.  Writes are atomic
(temp file + ``os.replace``) and merge-update: entries for paths outside
the current lint set are pruned so the file tracks the linted tree.

The default location is ``$REPRO_CACHE_DIR`` (or ``.repro_cache/``)
``/lint-facts.json`` — the same root the simulation cache uses, already
git-ignored.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.lint.semantic.summary import EXTRACTOR_VERSION, ModuleSummary

#: Schema version of the cache document itself.
CACHE_VERSION = 1

#: File name of the fact cache inside the cache directory.
FACT_CACHE_NAME = "lint-facts.json"


def default_fact_cache_path() -> str:
    """Default on-disk location, honouring ``$REPRO_CACHE_DIR``."""
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return os.path.join(root, FACT_CACHE_NAME)


def source_hash(source: str) -> str:
    """Content hash used as the cache key for one file's summary."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FactCache:
    """Load/store of module summaries keyed by path + content hash."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, object]] = {}
        if path is not None:
            self._entries = self._load(path)

    @staticmethod
    def _load(path: str) -> Dict[str, Dict[str, object]]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return {}
        if (doc.get("version") != CACHE_VERSION
                or doc.get("extractor") != EXTRACTOR_VERSION
                or not isinstance(doc.get("files"), dict)):
            return {}
        return doc["files"]

    def get(self, path: str, digest: str) -> Optional[ModuleSummary]:
        """Cached summary for ``path`` at content ``digest``, else None."""
        entry = self._entries.get(path)
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry["summary"]  # type: ignore[return-value]
        self.misses += 1
        return None

    def put(self, path: str, digest: str, summary: ModuleSummary) -> None:
        """Record ``summary`` for ``path`` at content ``digest``."""
        self._entries[path] = {"hash": digest, "summary": summary}

    def prune(self, keep_paths) -> None:
        """Drop entries whose path is not in ``keep_paths``."""
        keep = set(keep_paths)
        for path in list(self._entries):
            if path not in keep:
                del self._entries[path]

    def save(self) -> None:
        """Atomically persist the cache; a failed write is non-fatal."""
        if self.path is None:
            return
        doc = {
            "tool": "repro.lint.semantic",
            "version": CACHE_VERSION,
            "extractor": EXTRACTOR_VERSION,
            "files": self._entries,
        }
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".lint-facts-", suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            pass
