"""Project-wide semantic analysis for :mod:`repro.lint`.

This package gives project-scope rules a whole-program view: per-file
module summaries (:mod:`~repro.lint.semantic.summary`), a call graph
with method resolution and reachability/ndarray fixed points
(:mod:`~repro.lint.semantic.graph`), a content-hash fact cache
(:mod:`~repro.lint.semantic.cache`), and the :class:`Project` facade the
runner hands to each :class:`~repro.lint.core.ProjectRule`
(:mod:`~repro.lint.semantic.project`).

The four shipped semantic rules — DET001, MUT001, PAR001 and VEC001 —
live in :mod:`repro.lint.rules.semantic` and consume this layer.
"""

from repro.lint.semantic.cache import (
    FactCache,
    default_fact_cache_path,
    source_hash,
)
from repro.lint.semantic.graph import CallGraph
from repro.lint.semantic.project import Project, build_project
from repro.lint.semantic.summary import (
    EXTRACTOR_VERSION,
    ModuleSummary,
    extract_summary,
    module_name_for_path,
)

__all__ = [
    "CallGraph",
    "EXTRACTOR_VERSION",
    "FactCache",
    "ModuleSummary",
    "Project",
    "build_project",
    "default_fact_cache_path",
    "extract_summary",
    "module_name_for_path",
    "source_hash",
]
