"""Numerical-stability rules: NUM001 and NUM002.

NUM001 — no explicit matrix inversion and no unregularized normal-equation
solves.  ``np.linalg.inv`` squares the condition number for no benefit,
and ``solve(X.T @ X, X.T @ y)`` written literally has no ridge term; both
are exactly the ill-conditioning failure mode the RBF weight fit guards
against (``models/rbf.py`` adds a diagonal ridge before solving).  Use
``np.linalg.lstsq``/``solve`` on a regularized system instead.

NUM002 — no ``==`` / ``!=`` against float literals.  Snapped design-space
levels, CPI values and discrepancy scores are all floats produced by
arithmetic; exact comparison is representation-dependent.  Use
``math.isclose`` / ``np.isclose`` or an explicit tolerance.
"""

from __future__ import annotations

import ast

from repro.lint.core import VisitorRule, attribute_chain, register

#: Roots under which ``.linalg.inv`` is recognised.
_LINALG_ROOTS = ("np", "numpy", "scipy", "linalg")


def _is_float_literal(node: ast.AST) -> bool:
    """Whether ``node`` is a float constant, including ``-1.5`` style."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_normal_equations(node: ast.AST) -> bool:
    """Whether ``node`` is literally ``X.T @ X`` for some expression X."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult)):
        return False
    left = node.left
    if not (isinstance(left, ast.Attribute) and left.attr == "T"):
        return False
    return ast.dump(left.value) == ast.dump(node.right)


@register
class IllConditionedSolveRule(VisitorRule):
    """Forbid ``np.linalg.inv`` and literal normal-equation solves."""

    id = "NUM001"
    title = "ill-conditioned solve: linalg.inv or unregularized X.T@X solve"
    rationale = (
        "Matrix inversion and raw normal equations square the condition "
        "number; the model-fitting layer must use lstsq or a ridge-"
        "regularized solve to keep RBF weight fits well-conditioned."
    )

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain is not None and len(chain) >= 2:
            if chain[-1] == "inv" and chain[-2] == "linalg" and chain[0] in _LINALG_ROOTS:
                self.report(
                    node,
                    "np.linalg.inv squares the condition number; use "
                    "np.linalg.solve/lstsq on the original system",
                )
            elif (chain[-1] in ("solve", "lstsq") and chain[-2] == "linalg"
                    and chain[0] in _LINALG_ROOTS and node.args
                    and _is_normal_equations(node.args[0])):
                self.report(
                    node,
                    "unregularized normal-equation solve (X.T @ X); add a "
                    "ridge term to the Gram matrix or use lstsq on X directly",
                )
        self.generic_visit(node)


@register
class FloatEqualityRule(VisitorRule):
    """Forbid ``==`` / ``!=`` comparisons against float literals."""

    id = "NUM002"
    title = "float equality comparison; use isclose or a tolerance"
    rationale = (
        "Floats produced by arithmetic (snapped levels, CPI, discrepancy) "
        "rarely compare exactly equal; exact comparison makes behaviour "
        "depend on rounding and platform."
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(operands[i]) or _is_float_literal(operands[i + 1]):
                self.report(
                    node,
                    "equality comparison against a float literal; use "
                    "math.isclose/np.isclose or compare with a tolerance",
                )
                break
        self.generic_visit(node)
