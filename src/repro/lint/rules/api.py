"""API hygiene rules: API001 (mutable defaults, bare except) and API002.

Mutable defaults (``def f(x, acc=[])``) are evaluated once at function
definition and shared across calls — state leaks between experiment runs,
which is exactly the cross-run coupling the reproducibility contract
forbids.  Bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``
and hides real failures inside long simulation sweeps; catch a concrete
exception type (or at minimum ``Exception``).

API002 generalises the first half of that contract: *any* function call in
a parameter default runs once, at import time.  A default like
``cache_dir=default_cache_dir()`` freezes whatever the environment said at
import, so ``REPRO_CACHE_DIR`` set afterwards is silently ignored — the
exact bug class fixed in ``experiments/runner.py``.  Default to ``None``
(or a module-level sentinel) and resolve inside the function.
"""

from __future__ import annotations

import ast

from repro.lint.core import VisitorRule, register

#: Call names whose zero-argument form builds a fresh mutable container.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.AST) -> bool:
    """Whether a default-value expression is a shared mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES)


@register
class ApiHygieneRule(VisitorRule):
    """Forbid mutable default arguments and bare ``except:`` clauses."""

    id = "API001"
    title = "mutable default argument or bare except clause"
    rationale = (
        "Mutable defaults share state across calls (cross-run coupling); "
        "bare except hides real failures and eats KeyboardInterrupt inside "
        "long sweeps."
    )

    def _check_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(
                    default,
                    f"mutable default argument in {node.name}(); default to "
                    "None and create the container inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except: swallows SystemExit/KeyboardInterrupt; catch "
                "a concrete exception type",
            )
        self.generic_visit(node)


@register
class CallInDefaultRule(VisitorRule):
    """Forbid function-call expressions in parameter defaults."""

    id = "API002"
    title = "function call evaluated once in a parameter default"
    rationale = (
        "A call in a default runs at import time, freezing environment or "
        "config state (e.g. a cache dir read from $REPRO_CACHE_DIR) before "
        "the caller can change it; default to None and resolve at call "
        "time."
    )

    def _check_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            for call in ast.walk(default):
                if not isinstance(call, ast.Call):
                    continue
                # Zero-argument mutable factories are API001's finding;
                # don't report the same expression twice.
                if (isinstance(call.func, ast.Name)
                        and call.func.id in _MUTABLE_FACTORIES):
                    continue
                self.report(
                    call,
                    f"call in parameter default of {node.name}() is "
                    "evaluated once at import time; default to None and "
                    "resolve inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)
