"""API001 — API hygiene: mutable default arguments and bare ``except:``.

Mutable defaults (``def f(x, acc=[])``) are evaluated once at function
definition and shared across calls — state leaks between experiment runs,
which is exactly the cross-run coupling the reproducibility contract
forbids.  Bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``
and hides real failures inside long simulation sweeps; catch a concrete
exception type (or at minimum ``Exception``).
"""

from __future__ import annotations

import ast

from repro.lint.core import VisitorRule, register

#: Call names whose zero-argument form builds a fresh mutable container.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.AST) -> bool:
    """Whether a default-value expression is a shared mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES)


@register
class ApiHygieneRule(VisitorRule):
    """Forbid mutable default arguments and bare ``except:`` clauses."""

    id = "API001"
    title = "mutable default argument or bare except clause"
    rationale = (
        "Mutable defaults share state across calls (cross-run coupling); "
        "bare except hides real failures and eats KeyboardInterrupt inside "
        "long sweeps."
    )

    def _check_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(
                    default,
                    f"mutable default argument in {node.name}(); default to "
                    "None and create the container inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except: swallows SystemExit/KeyboardInterrupt; catch "
                "a concrete exception type",
            )
        self.generic_visit(node)
