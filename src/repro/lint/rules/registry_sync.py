"""REG001 — experiment registry, modules and benchmark harnesses in sync.

Every paper exhibit lives three times in this repository: a
``fig*/table*`` module under ``experiments/``, an entry in
``experiments/registry.py``, and a regeneration harness under
``benchmarks/``.  Drift between the three is invisible until a release
audit (an exhibit silently stops being regenerated) — exactly the
data-pipeline rot Concorde/NeuroScalar-style performance models are known
to suffer from.  This project-scope rule checks, over the whole linted
file set:

* every ``experiments/fig*.py`` / ``experiments/table*.py`` module is
  registered in the sibling ``registry.py`` (finding on the module);
* every registry entry's ``module`` resolves to an existing experiment
  file (finding on ``registry.py``);
* every registry entry's ``bench`` harness file exists (finding on
  ``registry.py``);
* no orphaned ``benchmarks/test_fig*.py`` / ``test_table*.py`` harness
  exists without a registry entry (finding on ``registry.py``).

The harness checks need a repository root; it is located by walking up
from the registry file looking for the referenced paths, so the rule
degrades gracefully when linting an isolated file.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence

from repro.lint.core import FileContext, Finding, ProjectRule, register

#: Experiment-module filename shape (``fig4_error_vs_sample_size.py``).
_EXHIBIT_RE = re.compile(r"^(fig|table)\w*\.py$")

#: Harness filename shape under ``benchmarks/``.
_HARNESS_RE = re.compile(r"^test_(fig|table)\w*\.py$")


def _is_experiment_module(path: str) -> bool:
    directory, name = os.path.split(path)
    return (os.path.basename(directory) == "experiments"
            and _EXHIBIT_RE.match(name) is not None)


class RegistryInfo:
    """Module and bench strings extracted from a ``registry.py`` AST."""

    def __init__(self, modules: List[str], benches: List[str]):
        self.modules = modules
        self.benches = benches

    @property
    def module_stems(self) -> List[str]:
        """Last dotted component of each registered experiment module."""
        return [m.rsplit(".", 1)[-1] for m in self.modules]

    @classmethod
    def parse(cls, tree: ast.Module) -> "RegistryInfo":
        """Collect ``Experiment(...)`` constructor module/bench arguments."""
        modules: List[str] = []
        benches: List[str] = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "Experiment"):
                continue
            args: Dict[str, str] = {}
            names = ("exhibit", "title", "module", "bench", "workloads")
            for pos, arg in zip(names, node.args):
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    args[pos] = arg.value
            for kw in node.keywords:
                if (kw.arg in names and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)):
                    args[kw.arg] = kw.value.value
            if "module" in args:
                modules.append(args["module"])
            if "bench" in args:
                benches.append(args["bench"])
        return cls(modules, benches)


def _find_root_for(start_dir: str, relative: str, max_up: int = 6) -> Optional[str]:
    """Walk up from ``start_dir`` to find a root containing ``relative``."""
    current = os.path.abspath(start_dir)
    for _ in range(max_up):
        if os.path.exists(os.path.join(current, relative)):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            break
        current = parent
    return None


@register
class RegistrySyncRule(ProjectRule):
    """Cross-check experiment modules, registry entries and harnesses."""

    id = "REG001"
    title = "experiment module / registry.py / benchmarks harness drift"
    rationale = (
        "An exhibit module that is missing from the registry (or whose "
        "harness is gone) silently drops out of the reproduction surface; "
        "the registry is only trustworthy if it is mechanically synced."
    )

    def check(self, project) -> List[Finding]:
        """Run the four sync checks over the linted file set."""
        contexts: Sequence[FileContext] = project.contexts
        findings: List[Finding] = []
        by_path = {os.path.abspath(ctx.path): ctx for ctx in contexts}

        experiment_ctxs = [c for c in contexts if _is_experiment_module(c.path)]
        registry_ctxs = {
            os.path.abspath(c.path): c for c in contexts
            if (os.path.basename(c.path) == "registry.py"
                and os.path.basename(os.path.dirname(c.path)) == "experiments")
        }

        # -- modules must be registered in their sibling registry.py ------
        for ctx in experiment_ctxs:
            directory = os.path.dirname(os.path.abspath(ctx.path))
            reg_path = os.path.join(directory, "registry.py")
            info = self._registry_info(reg_path, by_path)
            stem = os.path.splitext(os.path.basename(ctx.path))[0]
            if info is None:
                findings.append(self.finding(
                    ctx.path, None,
                    "experiment module has no sibling experiments/registry.py "
                    "to be registered in",
                ))
            elif stem not in info.module_stems:
                findings.append(self.finding(
                    ctx.path, None,
                    f"experiment module {stem!r} is not registered in "
                    "experiments/registry.py",
                ))

        # -- registry entries must resolve both ways ----------------------
        for reg_path, ctx in registry_ctxs.items():
            info = RegistryInfo.parse(ctx.tree)
            reg_dir = os.path.dirname(reg_path)
            for module in info.modules:
                stem = module.rsplit(".", 1)[-1]
                if not os.path.isfile(os.path.join(reg_dir, stem + ".py")):
                    findings.append(self.finding(
                        ctx.path, None,
                        f"registry entry module {module!r} has no "
                        f"experiments/{stem}.py implementation",
                    ))
            root = None
            if info.benches:
                root = _find_root_for(reg_dir, info.benches[0])
                if root is None:
                    root = _find_root_for(reg_dir, "benchmarks")
            for bench in info.benches:
                if root is None or not os.path.isfile(os.path.join(root, bench)):
                    findings.append(self.finding(
                        ctx.path, None,
                        f"registry entry harness {bench!r} does not exist",
                    ))
            findings.extend(self._orphan_harnesses(ctx, info, root))
        return findings

    def _registry_info(self, reg_path: str,
                       by_path: Dict[str, FileContext]) -> Optional[RegistryInfo]:
        """Registry info from the linted set or by parsing the file on disk."""
        ctx = by_path.get(os.path.abspath(reg_path))
        if ctx is not None:
            return RegistryInfo.parse(ctx.tree)
        if os.path.isfile(reg_path):
            try:
                with open(reg_path, "r", encoding="utf-8") as fh:
                    return RegistryInfo.parse(ast.parse(fh.read(), filename=reg_path))
            except (OSError, SyntaxError):
                return None
        return None

    def _orphan_harnesses(self, ctx: FileContext, info: RegistryInfo,
                          root: Optional[str]) -> List[Finding]:
        """Benchmarks harnesses that no registry entry references."""
        if root is None:
            return []
        bench_dir = os.path.join(root, "benchmarks")
        if not os.path.isdir(bench_dir):
            return []
        referenced = {os.path.basename(b) for b in info.benches}
        findings = []
        for name in sorted(os.listdir(bench_dir)):
            if _HARNESS_RE.match(name) and name not in referenced:
                findings.append(self.finding(
                    ctx.path, None,
                    f"orphaned harness benchmarks/{name} is not referenced "
                    "by any registry entry",
                ))
        return findings
