"""Observability rules: OBS001 (no bare ``print``) and OBS002 (no raw
wall clocks) in library code.

Library modules that ``print`` bypass the observability layer: the output
cannot be captured into traces, silenced in workers, or redirected by the
harness, and it interleaves unpredictably with progress rendering under
parallel runs.  Library code should either return data and let the caller
render it, or go through :func:`repro.obs.echo` — the one console seam.

The same argument applies to clocks.  A library module that reads
``time.perf_counter()`` directly produces timings that deterministic
tests cannot fake and traces cannot align: :func:`repro.obs.monotonic`
is the one clock seam — it reads the active trace collector's injectable
clock when tracing and falls back to ``time.perf_counter()`` otherwise,
so a test handing ``Collector(clock=FakeClock())`` controls *every*
duration in the run, not just the spans.

The CLI front-ends (any ``cli.py``), the lint text reporter
(``lint/reporters.py``) and the observability package itself
(``repro/obs/``) are the designated console owners and are exempt from
OBS001; only ``repro/obs/`` — where the seam is implemented — may touch
the raw clock under OBS002.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import List

from repro.lint.core import (
    FileContext,
    Finding,
    VisitorRule,
    attribute_chain,
    register,
)


def _exempt(path: str) -> bool:
    """Whether ``path`` may print: not library code, or a console owner."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests render output by design
    if parts[-1] == "cli.py":
        return True
    if "obs" in parts:
        return True
    return len(parts) >= 2 and parts[-2:] == ("lint", "reporters.py")


@register
class NoBarePrintRule(VisitorRule):
    """Forbid bare ``print(...)`` in ``repro`` library modules."""

    id = "OBS001"
    title = "bare print() in library code bypasses the observability layer"
    rationale = (
        "print() in repro/ library modules cannot be captured into traces "
        "or silenced in worker processes; return data to the caller or go "
        "through repro.obs.echo. CLI front-ends, lint/reporters.py and "
        "repro/obs itself own the console and are exempt."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                "bare print() in library code; return the text to the "
                "caller or use repro.obs.echo",
            )
        self.generic_visit(node)


#: The ``time`` module readings OBS002 forbids outside ``repro/obs``.
_RAW_CLOCKS = ("time", "monotonic", "perf_counter")


def _clock_exempt(path: str) -> bool:
    """Whether ``path`` may read the raw clock: not library code, or obs."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests time things directly
    return "obs" in parts  # the seam's own implementation


@register
class NoRawClockRule(VisitorRule):
    """Forbid direct ``time`` clock reads in ``repro`` library modules."""

    id = "OBS002"
    title = "raw wall-clock read in library code bypasses the clock seam"
    rationale = (
        "time.time()/time.monotonic()/time.perf_counter() in repro/ "
        "library modules produce durations that deterministic tests "
        "cannot fake and traces cannot align; read repro.obs.monotonic() "
        "instead — it follows the active collector's injectable clock. "
        "Only repro/obs, where the seam lives, touches the raw clock."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _clock_exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain and len(chain) == 2 and chain[0] == "time" \
                and chain[1] in _RAW_CLOCKS:
            self.report(
                node,
                f"time.{chain[1]}() in library code; use "
                "repro.obs.monotonic() so tests and traces control the "
                "clock",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and node.level == 0:
            clocks = sorted(
                alias.name for alias in node.names
                if alias.name in _RAW_CLOCKS
            )
            if clocks:
                self.report(
                    node,
                    f"importing {', '.join(clocks)} from time in library "
                    "code; use repro.obs.monotonic() so tests and traces "
                    "control the clock",
                )
        self.generic_visit(node)
