"""Observability rule: OBS001 (no bare ``print`` in library code).

Library modules that ``print`` bypass the observability layer: the output
cannot be captured into traces, silenced in workers, or redirected by the
harness, and it interleaves unpredictably with progress rendering under
parallel runs.  Library code should either return data and let the caller
render it, or go through :func:`repro.obs.echo` — the one console seam.

The CLI front-ends (any ``cli.py``), the lint text reporter
(``lint/reporters.py``) and the observability package itself
(``repro/obs/``) are the designated console owners and are exempt.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import List

from repro.lint.core import FileContext, Finding, VisitorRule, register


def _exempt(path: str) -> bool:
    """Whether ``path`` may print: not library code, or a console owner."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests render output by design
    if parts[-1] == "cli.py":
        return True
    if "obs" in parts:
        return True
    return len(parts) >= 2 and parts[-2:] == ("lint", "reporters.py")


@register
class NoBarePrintRule(VisitorRule):
    """Forbid bare ``print(...)`` in ``repro`` library modules."""

    id = "OBS001"
    title = "bare print() in library code bypasses the observability layer"
    rationale = (
        "print() in repro/ library modules cannot be captured into traces "
        "or silenced in worker processes; return data to the caller or go "
        "through repro.obs.echo. CLI front-ends, lint/reporters.py and "
        "repro/obs itself own the console and are exempt."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                "bare print() in library code; return the text to the "
                "caller or use repro.obs.echo",
            )
        self.generic_visit(node)
