"""Observability rules: OBS001 (no bare ``print``), OBS002 (no raw wall
clocks) and OBS003 (no raw artifact serialisation) in library code.

Library modules that ``print`` bypass the observability layer: the output
cannot be captured into traces, silenced in workers, or redirected by the
harness, and it interleaves unpredictably with progress rendering under
parallel runs.  Library code should either return data and let the caller
render it, or go through :func:`repro.obs.echo` — the one console seam.

The same argument applies to clocks.  A library module that reads
``time.perf_counter()`` directly produces timings that deterministic
tests cannot fake and traces cannot align: :func:`repro.obs.monotonic`
is the one clock seam — it reads the active trace collector's injectable
clock when tracing and falls back to ``time.perf_counter()`` otherwise,
so a test handing ``Collector(clock=FakeClock())`` controls *every*
duration in the run, not just the spans.

The CLI front-ends (any ``cli.py``), the lint text reporter
(``lint/reporters.py``) and the observability package itself
(``repro/obs/``) are the designated console owners and are exempt from
OBS001; only ``repro/obs/`` — where the seam is implemented — may touch
the raw clock under OBS002.

OBS003 extends the same seam argument to *artifact writes*: a library
module that calls ``pickle.dump``, ``np.save``/``savez`` or
``joblib.dump`` directly produces anonymous binary files with no format
version, no provenance, and no registry entry — exactly the artifacts the
model registry exists to replace.  Model persistence goes through
:mod:`repro.models.io` (and registration through
:mod:`repro.models.registry`); simulator trace archives go through
:mod:`repro.simulator.trace_io`.  Those three modules are the designated
serialisation seams and the only library code exempt from OBS003.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import List

from repro.lint.core import (
    FileContext,
    Finding,
    VisitorRule,
    attribute_chain,
    register,
)


def _exempt(path: str) -> bool:
    """Whether ``path`` may print: not library code, or a console owner."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests render output by design
    if parts[-1] == "cli.py":
        return True
    if "obs" in parts:
        return True
    return len(parts) >= 2 and parts[-2:] == ("lint", "reporters.py")


@register
class NoBarePrintRule(VisitorRule):
    """Forbid bare ``print(...)`` in ``repro`` library modules."""

    id = "OBS001"
    title = "bare print() in library code bypasses the observability layer"
    rationale = (
        "print() in repro/ library modules cannot be captured into traces "
        "or silenced in worker processes; return data to the caller or go "
        "through repro.obs.echo. CLI front-ends, lint/reporters.py and "
        "repro/obs itself own the console and are exempt."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                "bare print() in library code; return the text to the "
                "caller or use repro.obs.echo",
            )
        self.generic_visit(node)


#: The ``time`` module readings OBS002 forbids outside ``repro/obs``.
_RAW_CLOCKS = ("time", "monotonic", "perf_counter")


def _clock_exempt(path: str) -> bool:
    """Whether ``path`` may read the raw clock: not library code, or obs."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests time things directly
    return "obs" in parts  # the seam's own implementation


@register
class NoRawClockRule(VisitorRule):
    """Forbid direct ``time`` clock reads in ``repro`` library modules."""

    id = "OBS002"
    title = "raw wall-clock read in library code bypasses the clock seam"
    rationale = (
        "time.time()/time.monotonic()/time.perf_counter() in repro/ "
        "library modules produce durations that deterministic tests "
        "cannot fake and traces cannot align; read repro.obs.monotonic() "
        "instead — it follows the active collector's injectable clock. "
        "Only repro/obs, where the seam lives, touches the raw clock."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _clock_exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain and len(chain) == 2 and chain[0] == "time" \
                and chain[1] in _RAW_CLOCKS:
            self.report(
                node,
                f"time.{chain[1]}() in library code; use "
                "repro.obs.monotonic() so tests and traces control the "
                "clock",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and node.level == 0:
            clocks = sorted(
                alias.name for alias in node.names
                if alias.name in _RAW_CLOCKS
            )
            if clocks:
                self.report(
                    node,
                    f"importing {', '.join(clocks)} from time in library "
                    "code; use repro.obs.monotonic() so tests and traces "
                    "control the clock",
                )
        self.generic_visit(node)


#: Raw-serialisation call chains OBS003 forbids, per module alias.  The
#: ``numpy`` entry also matches the conventional ``np`` alias.
_RAW_SERIALISERS = {
    "pickle": ("dump", "dumps"),
    "numpy": ("save", "savez", "savez_compressed"),
    "np": ("save", "savez", "savez_compressed"),
    "joblib": ("dump",),
}

#: ``repro``-relative suffixes of the designated serialisation seams.
_SERIALISATION_SEAMS = (
    ("models", "io.py"),        # versioned model persistence
    ("models", "registry.py"),  # content-addressed registration
    ("simulator", "trace_io.py"),  # compressed trace archives
)


def _serialisation_exempt(path: str) -> bool:
    """Whether ``path`` may serialise raw artifacts: not library code,
    or one of the designated seams listed in the module docstring."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests write scratch files freely
    return any(
        len(parts) >= len(seam) and parts[-len(seam):] == seam
        for seam in _SERIALISATION_SEAMS
    )


@register
class NoRawSerialisationRule(VisitorRule):
    """Forbid raw artifact serialisation in ``repro`` library modules."""

    id = "OBS003"
    title = "raw artifact serialisation in library code bypasses the registry"
    rationale = (
        "pickle.dump/np.save/joblib.dump in repro/ library modules produce "
        "anonymous artifacts with no format version, provenance, or "
        "registry entry; persist models through repro.models.io (and "
        "register through repro.models.registry), traces through "
        "repro.simulator.trace_io — the designated serialisation seams."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _serialisation_exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain and len(chain) == 2 and chain[1] in \
                _RAW_SERIALISERS.get(chain[0], ()):
            self.report(
                node,
                f"{chain[0]}.{chain[1]}() in library code; write artifacts "
                "through repro.models.io / repro.models.registry / "
                "repro.simulator.trace_io",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module in ("pickle", "numpy", "joblib"):
            forbidden = sorted(
                alias.name for alias in node.names
                if alias.name in _RAW_SERIALISERS[node.module]
            )
            if forbidden:
                self.report(
                    node,
                    f"importing {', '.join(forbidden)} from {node.module} "
                    "in library code; write artifacts through "
                    "repro.models.io / repro.models.registry / "
                    "repro.simulator.trace_io",
                )
        self.generic_visit(node)
