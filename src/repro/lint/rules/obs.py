"""Observability rules: OBS001 (no bare ``print``), OBS002 (no raw wall
clocks), OBS003 (no raw artifact serialisation) and OBS004 (no blocking
calls reachable from async serving handlers) in library code.

Library modules that ``print`` bypass the observability layer: the output
cannot be captured into traces, silenced in workers, or redirected by the
harness, and it interleaves unpredictably with progress rendering under
parallel runs.  Library code should either return data and let the caller
render it, or go through :func:`repro.obs.echo` — the one console seam.

The same argument applies to clocks.  A library module that reads
``time.perf_counter()`` directly produces timings that deterministic
tests cannot fake and traces cannot align: :func:`repro.obs.monotonic`
is the one clock seam — it reads the active trace collector's injectable
clock when tracing and falls back to ``time.perf_counter()`` otherwise,
so a test handing ``Collector(clock=FakeClock())`` controls *every*
duration in the run, not just the spans.

The CLI front-ends (any ``cli.py``), the lint text reporter
(``lint/reporters.py``) and the observability package itself
(``repro/obs/``) are the designated console owners and are exempt from
OBS001; only ``repro/obs/`` — where the seam is implemented — may touch
the raw clock under OBS002.

OBS003 extends the same seam argument to *artifact writes*: a library
module that calls ``pickle.dump``, ``np.save``/``savez`` or
``joblib.dump`` directly produces anonymous binary files with no format
version, no provenance, and no registry entry — exactly the artifacts the
model registry exists to replace.  Model persistence goes through
:mod:`repro.models.io` (and registration through
:mod:`repro.models.registry`); simulator trace archives go through
:mod:`repro.simulator.trace_io`.  Those three modules are the designated
serialisation seams and the only library code exempt from OBS003.

OBS004 guards the serving event loop.  ``repro serve`` answers requests
from a single asyncio loop: one ``time.sleep``, raw ``socket`` call or
synchronous file read inside (or reachable from) an ``async def`` handler
stalls *every* in-flight request, invisibly — the classic async
foot-gun.  The rule walks each ``repro/serve`` module's intra-file call
graph from its ``async def`` roots and flags blocking calls anywhere
reachable.  Blocking telemetry I/O belongs behind the synchronous
:mod:`repro.obs.live` sinks (invoked through the application object,
outside this file-local reachability) and model loading belongs in
synchronous startup code.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import List

from repro.lint.core import (
    FileContext,
    Finding,
    VisitorRule,
    attribute_chain,
    register,
)


def _exempt(path: str) -> bool:
    """Whether ``path`` may print: not library code, or a console owner."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests render output by design
    if parts[-1] == "cli.py":
        return True
    if "obs" in parts:
        return True
    return len(parts) >= 2 and parts[-2:] == ("lint", "reporters.py")


@register
class NoBarePrintRule(VisitorRule):
    """Forbid bare ``print(...)`` in ``repro`` library modules."""

    id = "OBS001"
    title = "bare print() in library code bypasses the observability layer"
    rationale = (
        "print() in repro/ library modules cannot be captured into traces "
        "or silenced in worker processes; return data to the caller or go "
        "through repro.obs.echo. CLI front-ends, lint/reporters.py and "
        "repro/obs itself own the console and are exempt."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                "bare print() in library code; return the text to the "
                "caller or use repro.obs.echo",
            )
        self.generic_visit(node)


#: The ``time`` module readings OBS002 forbids outside ``repro/obs``.
_RAW_CLOCKS = ("time", "monotonic", "perf_counter")


def _clock_exempt(path: str) -> bool:
    """Whether ``path`` may read the raw clock: not library code, or obs."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests time things directly
    return "obs" in parts  # the seam's own implementation


@register
class NoRawClockRule(VisitorRule):
    """Forbid direct ``time`` clock reads in ``repro`` library modules."""

    id = "OBS002"
    title = "raw wall-clock read in library code bypasses the clock seam"
    rationale = (
        "time.time()/time.monotonic()/time.perf_counter() in repro/ "
        "library modules produce durations that deterministic tests "
        "cannot fake and traces cannot align; read repro.obs.monotonic() "
        "instead — it follows the active collector's injectable clock. "
        "Only repro/obs, where the seam lives, touches the raw clock."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _clock_exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain and len(chain) == 2 and chain[0] == "time" \
                and chain[1] in _RAW_CLOCKS:
            self.report(
                node,
                f"time.{chain[1]}() in library code; use "
                "repro.obs.monotonic() so tests and traces control the "
                "clock",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and node.level == 0:
            clocks = sorted(
                alias.name for alias in node.names
                if alias.name in _RAW_CLOCKS
            )
            if clocks:
                self.report(
                    node,
                    f"importing {', '.join(clocks)} from time in library "
                    "code; use repro.obs.monotonic() so tests and traces "
                    "control the clock",
                )
        self.generic_visit(node)


#: Raw-serialisation call chains OBS003 forbids, per module alias.  The
#: ``numpy`` entry also matches the conventional ``np`` alias.
_RAW_SERIALISERS = {
    "pickle": ("dump", "dumps"),
    "numpy": ("save", "savez", "savez_compressed"),
    "np": ("save", "savez", "savez_compressed"),
    "joblib": ("dump",),
}

#: ``repro``-relative suffixes of the designated serialisation seams.
_SERIALISATION_SEAMS = (
    ("models", "io.py"),        # versioned model persistence
    ("models", "registry.py"),  # content-addressed registration
    ("simulator", "trace_io.py"),  # compressed trace archives
)


def _serialisation_exempt(path: str) -> bool:
    """Whether ``path`` may serialise raw artifacts: not library code,
    or one of the designated seams listed in the module docstring."""
    parts = PurePath(path).parts
    if "repro" not in parts:
        return True  # benchmarks/examples/tests write scratch files freely
    return any(
        len(parts) >= len(seam) and parts[-len(seam):] == seam
        for seam in _SERIALISATION_SEAMS
    )


@register
class NoRawSerialisationRule(VisitorRule):
    """Forbid raw artifact serialisation in ``repro`` library modules."""

    id = "OBS003"
    title = "raw artifact serialisation in library code bypasses the registry"
    rationale = (
        "pickle.dump/np.save/joblib.dump in repro/ library modules produce "
        "anonymous artifacts with no format version, provenance, or "
        "registry entry; persist models through repro.models.io (and "
        "register through repro.models.registry), traces through "
        "repro.simulator.trace_io — the designated serialisation seams."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if _serialisation_exempt(ctx.path):
            return []
        return super().check_file(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain and len(chain) == 2 and chain[1] in \
                _RAW_SERIALISERS.get(chain[0], ()):
            self.report(
                node,
                f"{chain[0]}.{chain[1]}() in library code; write artifacts "
                "through repro.models.io / repro.models.registry / "
                "repro.simulator.trace_io",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module in ("pickle", "numpy", "joblib"):
            forbidden = sorted(
                alias.name for alias in node.names
                if alias.name in _RAW_SERIALISERS[node.module]
            )
            if forbidden:
                self.report(
                    node,
                    f"importing {', '.join(forbidden)} from {node.module} "
                    "in library code; write artifacts through "
                    "repro.models.io / repro.models.registry / "
                    "repro.simulator.trace_io",
                )
        self.generic_visit(node)


#: ``Path``/file-object methods that hit the filesystem synchronously.
_BLOCKING_FILE_METHODS = (
    "read_text", "write_text", "read_bytes", "write_bytes",
)


def _serve_scope(path: str) -> bool:
    """Whether OBS004 applies: a module under ``repro/serve``."""
    parts = PurePath(path).parts
    return "repro" in parts and "serve" in parts


@register
class NoBlockingInAsyncRule(VisitorRule):
    """Forbid blocking calls reachable from ``repro/serve`` async code."""

    id = "OBS004"
    title = "blocking call reachable from an async serving handler"
    rationale = (
        "repro serve answers every request from one asyncio event loop: "
        "a time.sleep, raw socket call, bare open() or synchronous "
        "Path read/write inside (or called, transitively, from) an "
        "async def stalls all in-flight requests. Use asyncio "
        "primitives, or hand the work to the synchronous repro.obs.live "
        "sinks outside the handler's reachability."
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if not _serve_scope(ctx.path):
            return []
        self._findings = []
        self._ctx = ctx
        functions: dict = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        reachable: set = set()
        frontier = [
            name for name, fn in functions.items()
            if isinstance(fn, ast.AsyncFunctionDef)
        ]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(
                callee for callee in self._callees(functions[name])
                if callee in functions
            )
        for name in sorted(reachable):
            self._scan(functions[name])
        return self._findings

    @staticmethod
    def _callees(func: ast.AST) -> set:
        """Intra-file callee names: bare calls plus ``self.method`` calls."""
        out: set = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            if len(chain) == 1:
                out.add(chain[0])
            elif len(chain) == 2 and chain[0] == "self":
                out.add(chain[1])
        return out

    def _scan(self, func: ast.AST) -> None:
        """Flag blocking calls in ``func``'s own body (not nested defs —
        those are scanned separately if and only if reachable)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                self._check_call(node)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain is None:
            return
        if chain == ("time", "sleep"):
            self.report(
                node,
                "time.sleep() reachable from an async handler blocks the "
                "whole event loop; await asyncio.sleep() instead",
            )
        elif len(chain) >= 2 and chain[0] == "socket":
            self.report(
                node,
                f"raw {'.'.join(chain)}() reachable from an async handler "
                "blocks the event loop; use asyncio streams",
            )
        elif chain == ("open",):
            self.report(
                node,
                "synchronous open() reachable from an async handler "
                "blocks the event loop; route file telemetry through the "
                "repro.obs.live sinks",
            )
        elif len(chain) >= 2 and chain[-1] in _BLOCKING_FILE_METHODS:
            self.report(
                node,
                f"synchronous .{chain[-1]}() reachable from an async "
                "handler blocks the event loop; route file I/O through "
                "the repro.obs.live sinks",
            )
