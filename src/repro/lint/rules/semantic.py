"""Semantic rules: DET001, MUT001, PAR001 and VEC001.

These four project-scope rules consume the whole-program facts of
:mod:`repro.lint.semantic` — the call graph, the nondeterminism
witnesses, the cached-value alias facts, the pool-submission facts and
the ndarray loop classifications.  They are the cross-module
generalisation of the per-file contracts the repo already enforces:

* **DET001** — nothing transitively reachable from the cache-keyed
  simulation entry points (``SimulationRunner.metric`` and friends,
  ``ProcessorConfig.key``) may consult wall clocks, hidden global RNG
  state, the environment, namespace-order iteration or filesystem
  listings.  Cache keys and cached metrics must be pure functions of
  the design point, or the memoised-simulation methodology of the paper
  silently stops being reproducible.
* **MUT001** — values read out of the simulation cache (``result_at``,
  ``_cache`` subscripts/``.get``) must not be mutated through any local
  alias: the cache hands out the only copy of ground truth.
* **PAR001** — work shipped into ``ProcessPoolExecutor.submit``/``map``
  must be statically picklable; lambdas, nested functions, local classes
  and open handles fail only at runtime, on the worker, with an opaque
  traceback.
* **VEC001** (severity *note*) — Python-level ``for`` loops over
  ndarray-typed values in the hot-path modules named by the
  ``benchmarks/perf`` targets, each reported with its trip-count
  expression.  This is the mechanical worklist for ROADMAP item 2
  ("vectorise the hot paths"); notes never fail a lint run.

``repro.obs`` is exempt from DET001 witnesses: it is the measurement
seam (wall-clock spans, run manifests) and is nondeterministic by
design, mirroring the OBS002 exemption at the per-file layer.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import List

from repro.lint.core import Finding, ProjectRule, register

#: Call-graph roots of DET001, matched by qualified-name suffix so the
#: rule engages on fixtures that mirror the real class names.
DETERMINISM_ROOTS = (
    "SimulationRunner.metric",
    "SimulationRunner.result_at",
    "SimulationRunner.cpi",
    "SimulationRunner.power",
    "SimulationRunner._trace_fingerprint",
    "ProcessorConfig.key",
)

#: Hot-path files whose array loops form the ROADMAP item 2 worklist
#: (path suffixes; the prof targets file *is* the benchmarks/perf code).
HOT_PATH_SUFFIXES = (
    "repro/simulator/cache.py",
    "repro/simulator/hierarchy.py",
    "repro/simulator/tlb.py",
    "repro/models/rbf.py",
    "repro/obs/prof/targets.py",
)


def _is_obs_path(path: str) -> bool:
    """Whether ``path`` lies inside the ``repro.obs`` measurement seam."""
    parts = PurePath(path).parts
    return any(parts[i:i + 2] == ("repro", "obs")
               for i in range(len(parts) - 1))


def _short(qname: str) -> str:
    """Readable tail of a qualified name for call-chain messages."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname


@register
class DeterminismRule(ProjectRule):
    """DET001: cache-keyed simulation paths must be deterministic."""

    id = "DET001"
    title = "nondeterminism reachable from cache-keyed simulation entry points"
    rationale = (
        "The paper's methodology memoises simulation samples by design "
        "point; any wall-clock, global-RNG, environment or filesystem-order "
        "dependence reachable from the metric/cache-key paths makes cached "
        "and fresh results diverge silently."
    )

    def check(self, project) -> List[Finding]:
        """Walk the reachable set of the determinism roots for witnesses."""
        graph = project.graph
        roots = graph.roots_matching(DETERMINISM_ROOTS)
        parent = graph.reachable(roots)
        findings: List[Finding] = []
        for qname in sorted(parent):
            path = graph.paths[qname]
            if path not in project.linted_paths or _is_obs_path(path):
                continue
            record = graph.functions[qname]
            if not record["witnesses"]:
                continue
            chain = " -> ".join(
                _short(q) for q in graph.call_chain(parent, qname))
            for witness in record["witnesses"]:
                findings.append(Finding(
                    rule=self.id, path=project.ctx_path(path),
                    line=witness["line"], col=witness["col"],
                    message=(f"{witness['detail']} — reachable from a "
                             f"cache-keyed entry point via {chain}"),
                    severity=self.severity,
                ))
        return findings


@register
class CacheMutationRule(ProjectRule):
    """MUT001: cached simulation results must never be mutated."""

    id = "MUT001"
    title = "mutation of a value aliasing the simulation cache"
    rationale = (
        "result_at() and the _cache mapping hand out the canonical copy of "
        "a simulated point; mutating it through any alias corrupts every "
        "later read of the same design point."
    )

    def check(self, project) -> List[Finding]:
        """Lift the intra-procedural alias-mutation facts into findings."""
        graph = project.graph
        findings: List[Finding] = []
        for qname in sorted(graph.functions):
            path = graph.paths[qname]
            if path not in project.linted_paths:
                continue
            for fact in graph.functions[qname]["mut"]:
                findings.append(Finding(
                    rule=self.id, path=project.ctx_path(path),
                    line=fact["line"], col=fact["col"],
                    message=(f"'{fact['var']}' aliases a cached value "
                             f"(from {fact['origin']}) and is mutated via "
                             f"{fact['how']}; copy before modifying"),
                    severity=self.severity,
                ))
        return findings


@register
class PicklabilityRule(ProjectRule):
    """PAR001: process-pool payloads must be statically picklable."""

    id = "PAR001"
    title = "unpicklable object shipped to a ProcessPoolExecutor"
    rationale = (
        "submit()/map() arguments cross a process boundary via pickle; "
        "lambdas, nested functions, local classes and open handles only "
        "fail at runtime on the worker."
    )

    def check(self, project) -> List[Finding]:
        """Lift the pool-submission picklability facts into findings."""
        graph = project.graph
        findings: List[Finding] = []
        for qname in sorted(graph.functions):
            path = graph.paths[qname]
            if path not in project.linted_paths:
                continue
            for fact in graph.functions[qname]["par"]:
                findings.append(Finding(
                    rule=self.id, path=project.ctx_path(path),
                    line=fact["line"], col=fact["col"],
                    message=(f"{fact['issue']} — arguments to "
                             f"{fact['site']} must be picklable"),
                    severity=self.severity,
                ))
        return findings


@register
class VectorisationRule(ProjectRule):
    """VEC001 (note): ndarray loops in hot-path modules, with trip counts."""

    id = "VEC001"
    title = "Python-level loop over an ndarray in a hot-path module"
    severity = "note"
    rationale = (
        "The benchmarks/perf targets pin the modules where Python-level "
        "element loops dominate; each one is a vectorisation candidate "
        "(ROADMAP item 2) and is reported with its trip-count expression "
        "so the worklist is mechanical."
    )

    def check(self, project) -> List[Finding]:
        """Report array-typed loops in the hot-path modules as notes."""
        graph = project.graph
        array_returning = None  # computed lazily: most runs have no "call" loops
        findings: List[Finding] = []
        for qname in sorted(graph.functions):
            path = graph.paths[qname]
            if path not in project.linted_paths:
                continue
            if not path.endswith(HOT_PATH_SUFFIXES):
                continue
            for loop in graph.functions[qname]["loops"]:
                if loop["kind"] == "call":
                    if array_returning is None:
                        array_returning = graph.ndarray_returning()
                    if loop["target"] not in array_returning:
                        continue
                findings.append(Finding(
                    rule=self.id, path=project.ctx_path(path),
                    line=loop["line"], col=loop["col"],
                    message=(f"Python-level loop over ndarray "
                             f"'{loop['iter']}' (trip count: "
                             f"{loop['trip']}) — vectorisation candidate"),
                    severity=self.severity,
                ))
        return findings
