"""Concrete lint rules.

Importing this package registers every rule in :data:`repro.lint.core.RULES`.
Each module groups the rules of one contract area:

* :mod:`repro.lint.rules.rng` — reproducibility (RNG001)
* :mod:`repro.lint.rules.numerics` — numerical stability (NUM001, NUM002)
* :mod:`repro.lint.rules.design_space` — design-space names (DS001)
* :mod:`repro.lint.rules.registry_sync` — exhibit registry drift (REG001)
* :mod:`repro.lint.rules.api` — API hygiene (API001, API002)
* :mod:`repro.lint.rules.obs` — observability (OBS001)
* :mod:`repro.lint.rules.semantic` — whole-program semantic passes
  (DET001, MUT001, PAR001, VEC001)
"""

from repro.lint.rules import (
    api,
    design_space,
    numerics,
    obs,
    registry_sync,
    rng,
    semantic,
)

__all__ = ["api", "design_space", "numerics", "obs", "registry_sync", "rng",
           "semantic"]
