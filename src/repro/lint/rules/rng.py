"""RNG001 — no module-level (global-state) random-number calls.

Every stochastic component must thread an explicitly seeded
:class:`numpy.random.Generator` (see :func:`repro.util.rng.make_rng`).
Calls into the legacy global-state APIs — ``np.random.random()``,
``np.random.seed()``, ``random.random()``, ... — silently couple
components through hidden global state and make runs order-dependent,
which breaks the seeded-LHS / deterministic-simulation discipline the
paper's statistics rest on.

Constructing generators is fine: ``np.random.default_rng(seed)``,
``np.random.Generator``, bit generators, and ``random.Random(seed)`` all
produce self-contained, explicitly seeded state.
"""

from __future__ import annotations

import ast

from repro.lint.core import VisitorRule, attribute_chain, register

#: numpy.random attributes that create fresh, explicitly seeded state
#: (allowed) rather than touching the hidden global generator (banned).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
})

#: stdlib ``random`` module functions that operate on the hidden global
#: generator.  ``random.Random`` (the class) is allowed.
_STDLIB_RANDOM_BANNED = frozenset({
    "random", "seed", "randint", "randrange", "getrandbits", "uniform",
    "choice", "choices", "shuffle", "sample", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "weibullvariate", "vonmisesvariate", "triangular",
    "binomialvariate", "randbytes",
})


@register
class GlobalRngRule(VisitorRule):
    """Forbid calls through the module-level RNG state."""

    id = "RNG001"
    title = "module-level RNG call; thread a seeded np.random.Generator"
    rationale = (
        "Global RNG state makes results depend on call order and on other "
        "components; reproducible experiments require explicitly seeded "
        "generators passed as arguments (repro.util.rng.make_rng)."
    )

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain is not None:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.Call, chain: tuple) -> None:
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if (len(chain) == 3 and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in _NP_RANDOM_ALLOWED):
            self.report(
                node,
                f"call to np.random.{chain[2]} uses the global NumPy RNG; "
                "thread an explicit np.random.Generator "
                "(repro.util.rng.make_rng) instead",
            )
        # random.<fn>(...) on the stdlib module-level generator
        elif (len(chain) == 2 and chain[0] == "random"
                and chain[1] in _STDLIB_RANDOM_BANNED):
            self.report(
                node,
                f"call to random.{chain[1]} uses the hidden stdlib RNG; "
                "use an explicitly seeded generator instead",
            )
