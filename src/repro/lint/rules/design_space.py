"""DS001 — design-space parameter names must exist in the canonical registry.

The paper's Table 1/2 spaces (``repro.core.design_space``) define the only
valid parameter identifiers (``pipe_depth``, ``rob_size``, ``l2_lat``, ...).
A typo in a string literal — ``"l2_latency"`` for ``"l2_lat"`` — does not
fail at import time; it produces a KeyError deep inside an experiment run,
or worse, a silently wrong baseline dictionary.  This rule resolves
parameter-name string literals against the canonical registry in the
syntactic contexts where such names appear:

* keyword arguments named ``param`` / ``param_x`` / ``param_y`` /
  ``param_name`` / ``parameter`` / ``parameters``;
* string subscripts of objects whose name mentions ``space``
  (``space["rob_size"]``, ``design_space["l2_lat"]``);
* dict literals in which most string keys are already parameter names
  (design-point baselines like fig1's) — the odd one out is flagged;
* list/tuple/set literals in which most string elements are parameter
  names (expected-split tables like table5's).

The majority heuristics mean ordinary dicts keyed by benchmark name or
metric never trip the rule; only collections that are clearly *about*
design parameters are checked.
"""

from __future__ import annotations

import ast
import difflib
from typing import FrozenSet, List

from repro.lint.core import VisitorRule, register

#: Keyword-argument names whose string value is a design parameter name.
_PARAM_KWARGS = frozenset({
    "param", "param_x", "param_y", "param_name", "parameter", "parameters",
})

#: Minimum collection size before the majority heuristic applies.
_MIN_COLLECTION = 3


def canonical_parameter_names() -> FrozenSet[str]:
    """The union of parameter names across the paper's design spaces.

    Imported lazily so that the linter can still run (with DS001 inert)
    in a stripped-down environment where the modeling stack is absent.
    """
    try:
        from repro.core.design_space import paper_design_space, paper_test_space
    except Exception:  # pragma: no cover - only in stripped environments
        return frozenset()
    names = set(paper_design_space().names) | set(paper_test_space().names)
    return frozenset(names)


@register
class DesignSpaceNameRule(VisitorRule):
    """Resolve parameter-name string literals against the canonical set."""

    id = "DS001"
    title = "unknown design-space parameter name in string literal"
    rationale = (
        "Typo'd parameter names fail at experiment runtime (or silently "
        "skew a baseline dict) instead of at review time; the canonical "
        "registry in core/design_space.py is the single source of truth."
    )

    def __init__(self) -> None:
        self.known = canonical_parameter_names()

    def _flag(self, node: ast.AST, name: str) -> None:
        close = difflib.get_close_matches(name, sorted(self.known), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        self.report(
            node,
            f"{name!r} is not a design-space parameter "
            f"(see core/design_space.py){hint}",
        )

    def _str_value(self, node: ast.AST):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self.known:
            for kw in node.keywords:
                if kw.arg in _PARAM_KWARGS:
                    value = self._str_value(kw.value)
                    if value is not None and value not in self.known:
                        self._flag(kw.value, value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.known and isinstance(node.value, ast.Name) and "space" in node.value.id:
            sl = node.slice
            if isinstance(sl, ast.Index):  # pragma: no cover - py<3.9 AST
                sl = sl.value
            value = self._str_value(sl)
            if value is not None and value not in self.known:
                self._flag(node, value)
        self.generic_visit(node)

    def _check_collection(self, node: ast.AST, elements: List[ast.AST]) -> None:
        strings = [(el, self._str_value(el)) for el in elements]
        strings = [(el, v) for el, v in strings if v is not None]
        if len(strings) < _MIN_COLLECTION:
            return
        hits = sum(1 for _, v in strings if v in self.known)
        if hits * 2 <= len(strings):
            return  # not a parameter-name collection
        for el, v in strings:
            if v not in self.known:
                self._flag(el, v)

    def visit_Dict(self, node: ast.Dict) -> None:
        if self.known:
            self._check_collection(node, [k for k in node.keys if k is not None])
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        if self.known:
            self._check_collection(node, node.elts)
        self.generic_visit(node)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        if self.known:
            self._check_collection(node, node.elts)
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        if self.known:
            self._check_collection(node, node.elts)
        self.generic_visit(node)
