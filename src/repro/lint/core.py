"""Core of the ``repro.lint`` framework: findings, rules, suppression.

A *rule* is a small class that inspects one parsed source file (or, for
``scope = "project"`` rules, the whole set of linted files) and emits
:class:`Finding` objects.  Rules register themselves in :data:`RULES` via
the :func:`register` decorator so the runner and the CLI discover them
automatically.

Suppression follows a two-level scheme:

* an inline trailing comment ``# repro: noqa[RULE-ID]`` suppresses matching
  findings on that source line;
* a standalone comment line ``# repro: noqa[RULE-ID]`` (nothing but the
  comment on the line) suppresses matching findings in the whole file.

``# repro: noqa`` without a bracket list suppresses every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

#: Sentinel rule-id set meaning "suppress every rule".
ALL_RULES = "*"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[\s*(?P<ids>[A-Za-z0-9_,\s-]+)\s*\])?",
)


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule violation at a source location.

    ``severity`` is ``"error"`` (gates the exit code) or ``"note"`` —
    advisory findings such as the VEC001 vectorisation worklist that are
    reported but never fail a run.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (used by the JSON reporter)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def location(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"


def _parse_noqa_ids(text: str) -> Set[str]:
    """Extract the suppressed rule-id set from a noqa comment match."""
    match = _NOQA_RE.search(text)
    if match is None:
        return set()
    ids = match.group("ids")
    if ids is None:
        return {ALL_RULES}
    return {part.strip().upper() for part in ids.split(",") if part.strip()}


@dataclass
class Suppressions:
    """Per-file suppression state parsed from ``# repro: noqa`` comments."""

    #: Rule ids suppressed for the whole file (standalone comment lines).
    file_level: Set[str] = field(default_factory=set)
    #: Rule ids suppressed per physical line (inline trailing comments).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether findings of ``rule`` at ``line`` are suppressed."""
        for ids in (self.file_level, self.by_line.get(line, set())):
            if ALL_RULES in ids or rule.upper() in ids:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Parse ``# repro: noqa`` comments out of a source string.

    Tokenization errors are swallowed (the parser reports those paths as
    ``SYN001`` findings separately), yielding no suppressions.
    """
    supp = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return supp
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        ids = _parse_noqa_ids(tok.string)
        if not ids:
            continue
        lineno = tok.start[0]
        line_text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if line_text.strip() == tok.string.strip():
            supp.file_level |= ids
        else:
            supp.by_line.setdefault(lineno, set()).update(ids)
    return supp


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Multi-line anchor spans: ``(first, last)`` line of each statement.

    For compound statements (defs, classes, ``if``/``for``/``with``/...)
    only the *header* — decorators through the line before the first body
    statement — counts, so a noqa inside a function body never blankets
    the whole function.  Single-line statements are omitted: they need no
    expansion.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, decorators[0].lineno)
            end = body[0].lineno - 1
        if end > start:
            spans.append((start, end))
    return spans


def _expand_multiline_suppressions(
    supp: Suppressions, spans: Sequence[Tuple[int, int]]
) -> None:
    """Widen inline noqa comments to their whole multi-line statement.

    A finding's anchor (e.g. the ``def`` line of a decorated function, or
    the opening line of a parenthesised call) and the physical line a
    trailing ``# repro: noqa[...]`` comment sits on can differ when the
    statement spans several lines; expanding each inline suppression over
    the smallest enclosing statement span makes the comment effective
    anywhere in that statement.
    """
    if not supp.by_line:
        return
    for line in list(supp.by_line):
        ids = supp.by_line[line]
        best: Optional[Tuple[int, int]] = None
        for start, end in spans:
            if start <= line <= end and (
                    best is None or end - start < best[1] - best[0]):
                best = (start, end)
        if best is not None:
            for covered in range(best[0], best[1] + 1):
                supp.by_line.setdefault(covered, set()).update(ids)


@dataclass
class FileContext:
    """Everything a file-scope rule needs about one source file."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        """Parse ``source`` into a context; raises ``SyntaxError`` as-is."""
        tree = ast.parse(source, filename=path)
        supp = parse_suppressions(source)
        _expand_multiline_suppressions(supp, _statement_spans(tree))
        return cls(path=path, source=source, tree=tree, suppressions=supp)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes below and implement either
    :meth:`check_file` (``scope = "file"``) or :meth:`check_project`
    (``scope = "project"``).  File-scope rules that prefer the visitor
    style can instead subclass :class:`VisitorRule`.
    """

    #: Unique id, e.g. ``"RNG001"``; shown in reports and noqa comments.
    id: str = ""
    #: One-line summary shown by ``--list-rules`` and in the docs.
    title: str = ""
    #: ``"file"`` (checked per file) or ``"project"`` (checked once over all).
    scope: str = "file"
    #: Longer rationale used for documentation.
    rationale: str = ""
    #: ``"error"`` (default, gates the exit code) or ``"note"`` (advisory).
    severity: str = "error"

    def check_file(self, ctx: FileContext) -> List[Finding]:
        """Check one file; return findings (file-scope rules)."""
        return []

    def check_project(self, contexts: Sequence[FileContext]) -> List[Finding]:
        """Check the whole linted set; return findings (project rules)."""
        return []

    # -- helpers ----------------------------------------------------------

    def finding(self, path: str, node: Optional[ast.AST], message: str,
                line: int = 1, col: int = 0) -> Finding:
        """Build a :class:`Finding` for this rule at ``node`` (or line/col)."""
        if node is not None:
            line = getattr(node, "lineno", line)
            col = getattr(node, "col_offset", col)
        return Finding(rule=self.id, path=path, line=line, col=col,
                       message=message, severity=self.severity)


class VisitorRule(Rule, ast.NodeVisitor):
    """File-scope rule written as an :class:`ast.NodeVisitor`.

    Subclasses implement ``visit_*`` methods and call :meth:`report`;
    :meth:`check_file` drives the traversal and collects the findings.
    """

    def check_file(self, ctx: FileContext) -> List[Finding]:
        """Visit the file's AST and return the collected findings."""
        self._findings: List[Finding] = []
        self._ctx = ctx
        self.visit(ctx.tree)
        return self._findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding for ``node`` in the file being checked."""
        self._findings.append(self.finding(self._ctx.path, node, message))


class ProjectRule(Rule):
    """Project-scope rule driven by a whole-program :class:`Project`.

    Where :class:`VisitorRule` sees one file's AST, a ``ProjectRule``
    sees the entire linted set at once through a
    :class:`repro.lint.semantic.Project`: the parsed file contexts plus
    — built lazily, so rules that only need the raw contexts pay
    nothing — the symbol table, call graph and dataflow facts of
    :mod:`repro.lint.semantic`.  The runner builds the project once per
    run and shares it across every project rule, so four semantic passes
    cost one analysis.

    Subclasses implement :meth:`check`; :meth:`check_project` remains as
    a compatibility shim that wraps bare contexts in a project.
    """

    scope = "project"

    def check(self, project) -> List[Finding]:
        """Check the whole program; ``project`` is a semantic ``Project``."""
        return []

    def check_project(self, contexts: Sequence[FileContext]) -> List[Finding]:
        """Compatibility shim: wrap ``contexts`` and delegate to :meth:`check`."""
        from repro.lint.semantic import Project

        return self.check(Project(list(contexts)))


#: Registry of all known rules, keyed by rule id.
RULES: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULES` (keyed by ``id``)."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in RULES:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    RULES[rule_cls.id] = rule_cls
    return rule_cls


def all_rules(select: Optional[Set[str]] = None,
              ignore: Optional[Set[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, honouring select/ignore id sets."""
    out: List[Rule] = []
    for rule_id in sorted(RULES):
        if select and rule_id not in select:
            continue
        if ignore and rule_id in ignore:
            continue
        out.append(RULES[rule_id]())
    return out


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve a dotted ``a.b.c`` expression to a name tuple, else ``None``.

    Used by rules to match fully qualified calls like ``np.linalg.inv``
    without caring how deep the attribute nesting goes.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
