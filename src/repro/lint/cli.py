"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: ``0`` clean, ``1`` findings (or baseline I/O problems),
``2`` usage errors (bad paths, unknown rules — argparse reports these).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Set

from repro.lint.baseline import Baseline, discover_baseline
from repro.lint.core import RULES
from repro.lint.incremental import DEFAULT_REF, ChangedFilesError
from repro.lint.reporters import REPORTERS
from repro.lint.runner import LintRunner
from repro.lint.semantic import default_fact_cache_path


def _rule_ids(text: str) -> Set[str]:
    """Parse a comma-separated rule-id list, validating against the registry."""
    ids = {part.strip().upper() for part in text.split(",") if part.strip()}
    unknown = ids - set(RULES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(RULES))})"
        )
    return ids


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static checks for the repro codebase's reproducibility, "
                    "numerical-stability and design-space contracts.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="report format (default: text)")
    parser.add_argument("--select", type=_rule_ids, default=None,
                        metavar="IDS", help="only run these rule ids")
    parser.add_argument("--ignore", type=_rule_ids, default=None,
                        metavar="IDS", help="skip these rule ids")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: ./lint-baseline.json when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write current findings as a new baseline and exit 0")
    parser.add_argument("--changed", nargs="?", const=DEFAULT_REF,
                        default=None, metavar="REF",
                        help="incremental mode: lint only files changed vs "
                             f"a git ref (default ref: {DEFAULT_REF}); "
                             "project-wide facts for unchanged files come "
                             "from the fact cache")
    parser.add_argument("--fact-cache", default=None, metavar="PATH",
                        help="location of the semantic fact cache (default: "
                             "$REPRO_CACHE_DIR or .repro_cache, "
                             "/lint-facts.json)")
    parser.add_argument("--no-fact-cache", action="store_true",
                        help="do not read or write the semantic fact cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def _list_rules(stream) -> int:
    for rule_id in sorted(RULES):
        cls = RULES[rule_id]
        stream.write(f"{rule_id}  [{cls.scope}]  {cls.title}\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(sys.stdout)

    baseline = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = discover_baseline(args.baseline)
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, TypeError) as exc:
                print(f"repro-lint: cannot read baseline: {exc}", file=sys.stderr)
                return 1

    fact_cache_path = None
    if not args.no_fact_cache:
        fact_cache_path = args.fact_cache or default_fact_cache_path()

    runner = LintRunner(select=args.select, ignore=args.ignore)
    try:
        result = runner.run(args.paths, baseline=baseline,
                            changed_ref=args.changed,
                            fact_cache_path=fact_cache_path)
    except FileNotFoundError as exc:
        parser.error(str(exc))  # exits 2
    except ChangedFilesError as exc:
        parser.error(str(exc))  # exits 2

    if args.write_baseline is not None:
        pairs = runner.source_lines(result.findings)
        Baseline.from_findings(pairs).save(args.write_baseline)
        print(f"baseline with {len(result.findings)} finding(s) written to "
              f"{args.write_baseline}")
        return 0

    try:
        REPORTERS[args.format](result, sys.stdout)
        sys.stdout.flush()
    except BrokenPipeError:
        # Reader (e.g. `repro-lint src | head`) closed the pipe; the
        # findings still determine the exit code.
        sys.stderr.close()  # suppress the interpreter's flush warning
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
