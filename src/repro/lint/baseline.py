"""Baseline support: grandfather existing findings, gate only new ones.

A baseline is a committed JSON file mapping finding *fingerprints* to a
count.  Fingerprints are line-number independent — they hash the rule id,
the path, and the text of the offending source line — so unrelated edits
that shift code up or down do not invalidate the baseline.  When the same
fingerprint occurs N times in the baseline, only the first N live
occurrences are filtered; new duplicates still fail.

The shipped repository baseline (``lint-baseline.json``) is empty: every
finding the linter knows about has been fixed at the source.  The file
exists so future PRs have a documented grandfathering mechanism.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.core import Finding

#: Default baseline filename looked up in the working directory.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


def fingerprint(finding: Finding, source_lines: Optional[List[str]] = None) -> str:
    """Stable fingerprint of a finding: rule + path + offending line text.

    ``source_lines`` are the file's lines; when unavailable (e.g. the file
    was deleted) the line number is used instead of the line text, which is
    still deterministic though less robust to reformatting.
    """
    if source_lines is not None and 0 < finding.line <= len(source_lines):
        anchor = source_lines[finding.line - 1].strip()
    else:
        anchor = f"line:{finding.line}"
    path = finding.path.replace(os.sep, "/")
    text = f"{finding.rule}\x1f{path}\x1f{anchor}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


class Baseline:
    """A set of grandfathered finding fingerprints with multiplicity."""

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self.counts: Counter = Counter(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline JSON file; raises ``ValueError`` on bad format."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or "fingerprints" not in data:
            raise ValueError(f"{path}: not a repro.lint baseline file")
        counts = data["fingerprints"]
        if not isinstance(counts, dict):
            raise ValueError(f"{path}: 'fingerprints' must be an object")
        return cls({str(k): int(v) for k, v in counts.items()})

    def save(self, path: str) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        data = {
            "format": _FORMAT_VERSION,
            "tool": "repro.lint",
            "fingerprints": {k: self.counts[k] for k in sorted(self.counts)},
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_findings(
        cls, pairs: Iterable[Tuple[Finding, Optional[List[str]]]]
    ) -> "Baseline":
        """Build a baseline grandfathering every ``(finding, lines)`` pair."""
        baseline = cls()
        for finding, lines in pairs:
            baseline.counts[fingerprint(finding, lines)] += 1
        return baseline

    def filter(
        self, pairs: Iterable[Tuple[Finding, Optional[List[str]]]]
    ) -> List[Finding]:
        """Return the findings NOT covered by the baseline.

        Consumes baseline multiplicity in order: with N grandfathered
        occurrences of a fingerprint, occurrences N+1, N+2, ... are kept.
        """
        budget = Counter(self.counts)
        fresh: List[Finding] = []
        for finding, lines in pairs:
            key = fingerprint(finding, lines)
            if budget[key] > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh


def discover_baseline(explicit: Optional[str] = None) -> Optional[str]:
    """Resolve the baseline path: explicit flag, else the default filename.

    Returns ``None`` when no baseline should be applied (no explicit path
    and no ``lint-baseline.json`` in the current working directory).
    """
    if explicit is not None:
        return explicit
    if os.path.isfile(DEFAULT_BASELINE_NAME):
        return DEFAULT_BASELINE_NAME
    return None
