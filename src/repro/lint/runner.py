"""File collection and rule execution for ``repro.lint``.

The runner turns a list of paths into parsed :class:`FileContext` objects,
runs every file-scope rule over each file and every project-scope rule
over the whole set, applies ``# repro: noqa`` suppressions, and (when a
baseline is given) filters grandfathered findings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline
from repro.lint.core import FileContext, Finding, ProjectRule, Rule, all_rules
from repro.lint.incremental import changed_files
from repro.lint.semantic import build_project

# Importing the rules package registers every concrete rule.
import repro.lint.rules  # noqa: F401  (import for side effect)

#: Rule id used for files that fail to parse.
SYNTAX_RULE = "SYN001"

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".venv", "venv", "node_modules",
    "build", "dist",
})


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Hidden directories, caches and ``*.egg-info`` trees are skipped.
    Nonexistent paths raise ``FileNotFoundError`` so typos fail loudly.
    """
    out: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(os.path.normpath(path))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith(".")
                    and not d.endswith(".egg-info")
                )
                for name in filenames:
                    if name.endswith(".py"):
                        out.add(os.path.normpath(os.path.join(dirpath, name)))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    #: Findings suppressed by noqa comments (for ``--show-suppressed``).
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings filtered by the baseline.
    baselined: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean: no live *error* findings.

        Advisory ``note`` findings (e.g. the VEC001 vectorisation
        worklist) are reported but never fail a run.
        """
        return not self.errors

    @property
    def errors(self) -> List[Finding]:
        """Live findings that gate the exit code."""
        return [f for f in self.findings if f.severity != "note"]

    @property
    def notes(self) -> List[Finding]:
        """Live advisory findings (reported, never failing)."""
        return [f for f in self.findings if f.severity == "note"]

    def counts_by_rule(self) -> Dict[str, int]:
        """Live finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts


class LintRunner:
    """Run the registered rules over a set of paths."""

    def __init__(self, select: Optional[Set[str]] = None,
                 ignore: Optional[Set[str]] = None):
        self.rules: List[Rule] = all_rules(select=select, ignore=ignore)

    def run(self, paths: Sequence[str],
            baseline: Optional[Baseline] = None,
            changed_ref: Optional[str] = None,
            fact_cache_path: Optional[str] = None) -> LintResult:
        """Lint ``paths`` (files or directories) and return the result.

        ``changed_ref`` switches on incremental mode: only files changed
        vs that git ref are linted, but project-scope rules still see the
        whole collected set through the semantic fact graph (unchanged
        files replay from the fact cache when ``fact_cache_path`` is
        set), so cross-module facts stay sound.  ``fact_cache_path=None``
        keeps the run stateless.
        """
        files = collect_files(paths)
        graph_sources = files
        if changed_ref is not None:
            changed = set(changed_files(changed_ref))
            files = [f for f in files if os.path.abspath(f) in changed]
        contexts: List[FileContext] = []
        raw: List[Finding] = []
        sources: Dict[str, List[str]] = {}

        for path in files:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            sources[path] = source.splitlines()
            try:
                contexts.append(FileContext.from_source(path, source))
            except SyntaxError as exc:
                raw.append(Finding(
                    rule=SYNTAX_RULE, path=path,
                    line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                ))

        for ctx in contexts:
            for rule in self.rules:
                if rule.scope == "file":
                    raw.extend(rule.check_file(ctx))

        project_rules = [r for r in self.rules if r.scope == "project"]
        if project_rules:
            # One whole-program analysis shared by every project rule.
            project = build_project(contexts, graph_sources=graph_sources,
                                    fact_cache_path=fact_cache_path)
            for rule in project_rules:
                if isinstance(rule, ProjectRule):
                    raw.extend(rule.check(project))
                else:
                    raw.extend(rule.check_project(contexts))
            project.save_cache()

        raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

        by_path = {ctx.path: ctx for ctx in contexts}
        live: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in raw:
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.suppressions.is_suppressed(
                    finding.rule, finding.line):
                suppressed.append(finding)
            else:
                live.append(finding)

        baselined: List[Finding] = []
        if baseline is not None and len(baseline):
            pairs = [(f, sources.get(f.path)) for f in live]
            fresh = baseline.filter(pairs)
            fresh_set = {id(f) for f in fresh}
            baselined = [f for f in live if id(f) not in fresh_set]
            live = fresh

        return LintResult(findings=live, files_checked=len(files),
                          suppressed=suppressed, baselined=baselined)

    def source_lines(self, findings: Iterable[Finding]) -> List[Tuple[Finding, Optional[List[str]]]]:
        """Pair findings with their file's source lines (baseline writing)."""
        cache: Dict[str, Optional[List[str]]] = {}
        pairs = []
        for finding in findings:
            if finding.path not in cache:
                try:
                    with open(finding.path, "r", encoding="utf-8") as fh:
                        cache[finding.path] = fh.read().splitlines()
                except OSError:
                    cache[finding.path] = None
            pairs.append((finding, cache[finding.path]))
        return pairs
