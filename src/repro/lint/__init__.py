"""repro.lint — AST-based static checks for the repo's own contracts.

The paper's statistical claims rest on discipline the type system cannot
see: explicitly seeded RNGs, well-conditioned least-squares fits, design
points whose parameter names actually exist in Table 1, and a
tables/figures registry that stays in sync with its harnesses.  This
package enforces those contracts mechanically:

========  =============================================================
RNG001    no module-level ``np.random.*`` / ``random.*`` RNG calls
NUM001    no ``np.linalg.inv`` / unregularized normal-equation solves
NUM002    no ``==`` / ``!=`` comparisons against float literals
DS001     parameter-name strings must exist in ``core/design_space.py``
REG001    experiments / registry.py / benchmarks harnesses in sync
API001    no mutable default arguments, no bare ``except:``
========  =============================================================

Run it as ``python -m repro.lint [paths]``, ``repro lint`` or
``repro-lint``; suppress per line or per file with ``# repro:
noqa[RULE-ID]``; grandfather findings in ``lint-baseline.json``.  See
``docs/linting.md`` for the full catalogue and workflow.
"""

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.core import (
    RULES,
    FileContext,
    Finding,
    Rule,
    Suppressions,
    VisitorRule,
    all_rules,
    parse_suppressions,
    register,
)
from repro.lint.runner import LintResult, LintRunner, collect_files

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintResult",
    "LintRunner",
    "RULES",
    "Rule",
    "Suppressions",
    "VisitorRule",
    "all_rules",
    "collect_files",
    "fingerprint",
    "parse_suppressions",
    "register",
]
