"""``repro lint --changed``: resolve the files changed vs a git ref.

The changed set is ``git diff --name-only <ref>...HEAD`` (the merge-base
form, so commits on the upstream branch do not count as local changes)
plus unstaged/staged modifications and untracked files.  Only ``.py``
paths that still exist are returned.  Any git failure — not a repo, the
ref does not exist, git missing — raises :class:`ChangedFilesError` so
the CLI can fall back loudly rather than lint nothing.
"""

from __future__ import annotations

import os
import subprocess
from typing import List

#: Default comparison ref for ``--changed`` without an argument.
DEFAULT_REF = "origin/main"


class ChangedFilesError(RuntimeError):
    """Raised when the changed set cannot be determined from git."""


def _git_lines(args: List[str], cwd: str) -> List[str]:
    try:
        proc = subprocess.run(
            ["git"] + args, cwd=cwd, capture_output=True, text=True,
            timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ChangedFilesError(f"git {' '.join(args)} failed: {exc}")
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise ChangedFilesError(
            f"git {' '.join(args)} failed: "
            f"{detail[0] if detail else proc.returncode}")
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_files(ref: str = DEFAULT_REF, cwd: str = ".") -> List[str]:
    """Python files changed vs ``ref`` (merge-base diff + worktree state).

    Returned paths are absolute: git reports names relative to the
    repository root, which need not be the caller's working directory.
    """
    root = _git_lines(["rev-parse", "--show-toplevel"], cwd)[0]
    names = set(_git_lines(["diff", "--name-only", f"{ref}...HEAD"], cwd))
    names.update(_git_lines(["diff", "--name-only", "HEAD"], cwd))
    names.update(_git_lines(
        ["ls-files", "--others", "--exclude-standard", "--full-name"], cwd))
    out = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = os.path.abspath(os.path.join(root, name))
        if os.path.isfile(path):
            out.append(path)
    return out
