"""Windowed metrics snapshots: rates and latency quantiles mid-flight.

A :class:`repro.obs.metrics.MetricsRegistry` accumulates totals for the
lifetime of a process; a ``/metrics`` endpoint additionally wants *rates*
— requests per second since you last looked.  :class:`MetricsWindow`
wraps a registry and diffs successive snapshots: counter deltas divided
by elapsed seconds on the observability clock
(:func:`repro.obs.monotonic`, so tests with an injected collector clock
get deterministic rates), alongside the cumulative totals and the
p50/p90/p99 quantiles the registry's reservoir histograms already carry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import monotonic


class MetricsWindow:
    """Successive-snapshot view over one registry: totals plus rates.

    Parameters
    ----------
    registry:
        The live registry to observe (shared with the recording code).
    clock:
        Zero-argument time source; defaults to
        :func:`repro.obs.monotonic` so an injected collector clock
        controls window boundaries in tests.
    """

    def __init__(self, registry: MetricsRegistry,
                 clock: Optional[Callable[[], float]] = None):
        self.registry = registry
        self._clock = clock if clock is not None else monotonic
        self._last_time = self._clock()
        self._last_counters: Dict[str, float] = dict(registry.counters)

    def snapshot(self) -> Dict[str, Any]:
        """One windowed snapshot; advances the window.

        Returns a plain-JSON dict::

            {
              "counters": {...cumulative totals...},
              "gauges": {...},
              "latency": {name: {count, mean, p50, p90, p99}, ...},
              "window": {"elapsed_s": ..., "rates": {name: per_second}},
            }

        ``rates`` covers every counter that moved (or existed) since the
        previous snapshot; a zero-elapsed window reports zero rates
        rather than dividing by zero.
        """
        now = self._clock()
        elapsed = max(0.0, now - self._last_time)
        counters = dict(self.registry.counters)
        rates: Dict[str, float] = {}
        for name in sorted(set(counters) | set(self._last_counters)):
            delta = counters.get(name, 0.0) - self._last_counters.get(name, 0.0)
            rates[name] = (delta / elapsed) if elapsed > 0 else 0.0
        latency: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.registry.histograms):
            hist = self.registry.histograms[name]
            latency[name] = {
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p90": hist.percentile(90),
                "p99": hist.percentile(99),
            }
        self._last_time = now
        self._last_counters = counters
        return {
            "counters": counters,
            "gauges": dict(self.registry.gauges),
            "latency": latency,
            "window": {"elapsed_s": elapsed, "rates": rates},
        }
