"""Structured JSONL access log: one flushed line per served request.

The serving layer's request-level record, separate from the span trace
(which captures *how long* the stages took) and from metrics (which
aggregate): the access log is the greppable per-request ledger — request
id, method, path, status, point count, latency — written with the same
lenient-read discipline as every other JSONL artifact in the repo (a
torn final line from a killed writer is the reader's problem to skip,
never a corruption of earlier records).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union


class AccessLog:
    """An append-only JSONL access log with per-line flush.

    Each :meth:`log` call writes exactly one sorted-key JSON object and
    flushes, so a reader (or a crash) observes whole records plus at most
    one torn line.  A sink for the serving layer's blocking file I/O —
    handlers hand records over; only this class touches the file.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.records_written = 0
        self._fh: Optional[Any] = open(self.path, "a", encoding="utf-8")

    def log(self, **fields: Any) -> None:
        """Append one access record (keyword fields become the object)."""
        assert self._fh is not None, "access log is closed"
        self._fh.write(json.dumps(fields, sort_keys=True) + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        """Close the underlying file; further :meth:`log` calls fail."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
