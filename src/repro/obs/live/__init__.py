"""repro.obs.live — continuous telemetry for processes that never exit.

The batch half of :mod:`repro.obs` assumes a run that ends: traces are
written at exit (:func:`repro.obs.write_trace`), manifests measure cost
once, and metrics are snapshotted when the command returns.  A serving
process needs the same telemetry *while it runs*:

* :class:`StreamingTraceSink` — appends each completed request's span
  tree to a JSONL trace file the moment its root span closes, with
  size-based rotation; the file is readable mid-flight with the existing
  :func:`repro.obs.read_trace` (``strict=False`` skips at most the one
  torn line a kill can leave).
* :class:`LiveCollector` — a :class:`repro.obs.Collector` that feeds the
  sink and drops emitted spans, so memory stays bounded over millions of
  requests.
* :class:`MetricsWindow` — rate-per-second deltas between successive
  registry snapshots plus p50/p90/p99 latency quantiles from the
  reservoir histograms: the payload behind a ``/metrics`` endpoint.
* :class:`AccessLog` — a structured JSONL access log, one flushed line
  per request.
* :func:`repro.obs.manifest.snapshot_manifest` (re-exported here) — the
  idempotent manifest refresh that makes manifests and ledger records
  work mid-process.

Everything here is the designated blocking-I/O seam for the serving
layer: lint rule OBS004 forbids blocking calls in ``repro/serve`` async
handlers precisely because this package owns them.
"""

from repro.obs.live.access import AccessLog
from repro.obs.live.stream import LiveCollector, StreamingTraceSink
from repro.obs.live.window import MetricsWindow
from repro.obs.manifest import snapshot_manifest

__all__ = [
    "AccessLog",
    "LiveCollector",
    "MetricsWindow",
    "StreamingTraceSink",
    "snapshot_manifest",
]
