"""Streaming JSONL trace sink: append-on-span-close, with rotation.

The batch writer (:func:`repro.obs.write_trace`) serialises a whole
collector at exit.  A long-lived process instead streams: every time a
*root* span closes — one served request, in the serving layer — its
complete subtree is flattened and appended to the trace file immediately,
parents before children, ids in emission order, exactly the schema
(version 1) :func:`repro.obs.read_trace` already parses.  Flushing whole
subtrees at root-close keeps the parent-precedes-child invariant that an
append-per-span stream would violate (children close first), and makes
every line boundary a consistent read point: a reader at any moment sees
only complete spans, and a writer killed mid-record leaves at most one
torn final line, which ``read_trace(strict=False)`` skips and counts.

Rotation is size-based and happens only between emissions, never inside
one: when the active file exceeds ``max_bytes`` it is sealed with a
metrics line (so each segment is a complete, independently readable
trace) and renamed to ``<stem>.NNN<suffix>``; a fresh header opens the
next segment at the original path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.obs.sinks import TRACE_SCHEMA_VERSION
from repro.obs.tracing import Collector, SpanNode


class StreamingTraceSink:
    """Appends completed span trees to a JSONL trace file as they close.

    Parameters
    ----------
    path:
        The active trace file.  Rotated segments land next to it as
        ``<stem>.001<suffix>``, ``<stem>.002<suffix>``, …
    header:
        Extra header fields merged into the ``{"type": "trace"}`` first
        line (e.g. the command name).
    max_bytes:
        Rotate when the active file exceeds this size after an emission;
        ``None`` (default) never rotates.
    metrics_snapshot:
        Zero-argument callable returning a metrics snapshot dict; called
        for the final ``{"type": "metrics"}`` line of each sealed segment
        and of the active file at :meth:`close`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: Optional[Mapping[str, Any]] = None,
        max_bytes: Optional[int] = None,
        metrics_snapshot: Optional[Callable[[], Mapping[str, Any]]] = None,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._header = dict(header) if header else {}
        self.max_bytes = max_bytes
        self._metrics_snapshot = metrics_snapshot
        self.rotations: List[Path] = []
        self.spans_emitted = 0
        self._counter = 0  # span ids, per segment
        self._fh = None
        self._open_segment()

    # -- segment lifecycle -------------------------------------------------

    def _open_segment(self) -> None:
        head: Dict[str, Any] = {"type": "trace",
                                "version": TRACE_SCHEMA_VERSION}
        head.update(self._header)
        self._counter = 0
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write_line(head)

    def _write_line(self, event: Mapping[str, Any]) -> None:
        assert self._fh is not None, "sink is closed"
        self._fh.write(json.dumps(dict(event), sort_keys=True) + "\n")
        self._fh.flush()

    def _seal(self) -> None:
        """Write the final metrics line and close the active handle."""
        metrics: Dict[str, Any] = {"type": "metrics"}
        if self._metrics_snapshot is not None:
            metrics.update(self._metrics_snapshot())
        self._write_line(metrics)
        self._fh.close()
        self._fh = None

    def _rotate(self) -> None:
        self._seal()
        rotated = self.path.with_name(
            f"{self.path.stem}.{len(self.rotations) + 1:03d}{self.path.suffix}"
        )
        self.path.replace(rotated)
        self.rotations.append(rotated)
        self._open_segment()

    # -- emission ----------------------------------------------------------

    def emit(self, root: SpanNode, origin: float = 0.0) -> None:
        """Append ``root``'s whole subtree (depth-first) to the trace.

        ``origin`` is the owning collector's trace origin; offsets are
        recorded relative to it, like the batch writer's.  Rotation, when
        due, happens after the subtree is fully written, so no span is
        ever split across segments.
        """
        stack = [(root, None)]
        while stack:
            node, parent_id = stack.pop()
            span_id = self._counter
            self._counter += 1
            self._write_line({
                "type": "span",
                "id": span_id,
                "parent": parent_id,
                "name": node.name,
                "offset": round(node.start - origin, 9),
                "dur": round(node.duration, 9),
                "attrs": node.attrs,
            })
            self.spans_emitted += 1
            for child in reversed(node.children):
                stack.append((child, span_id))
        if self.max_bytes is not None and self._fh.tell() > self.max_bytes:
            self._rotate()

    def emit_event(self, event: Mapping[str, Any]) -> None:
        """Append one structured event (e.g. a failure) to the trace."""
        self._write_line(event)

    def close(self) -> None:
        """Seal the active segment; the sink cannot emit afterwards."""
        if self._fh is not None:
            self._seal()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` (or a failed open) retired the sink."""
        return self._fh is None

    def __enter__(self) -> "StreamingTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class LiveCollector(Collector):
    """A :class:`~repro.obs.tracing.Collector` that streams to a sink.

    Behaves exactly like its parent while spans are open; once the span
    stack unwinds to empty, every completed root is emitted to the sink
    (subtree-at-a-time) and *dropped* from :attr:`roots`, together with
    any buffered structured events — so a serving process's collector
    stays O(open spans), not O(requests served).  With ``sink=None`` it
    degrades to a plain in-memory collector.
    """

    def __init__(self, sink: Optional[StreamingTraceSink] = None,
                 clock: Optional[Callable[[], float]] = None):
        super().__init__(clock=clock)
        self.sink = sink

    def end_span(self, node: SpanNode) -> None:
        """Close ``node``; stream and drop completed roots when idle."""
        super().end_span(node)
        if self.sink is None or self._stack:
            return
        while self.roots:
            self.sink.emit(self.roots.pop(0), self.origin)
        while self.events:
            self.sink.emit_event(self.events.pop(0))
