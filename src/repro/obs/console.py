"""The library's single console-output seam.

Lint rule OBS001 bans bare ``print`` in library code: everything a module
wants a human to see funnels through here (or through a reporter / the
CLI), so console output stays greppable, testable and redirectable in one
place.  :func:`echo` is deliberately tiny — the value is the choke point,
not the implementation.
"""

from __future__ import annotations

import sys
from typing import IO, Optional


def echo(text: str = "", stream: Optional[IO[str]] = None) -> None:
    """Write one line of human-facing output (stdout by default)."""
    out = stream if stream is not None else sys.stdout
    out.write(str(text) + "\n")
