"""Hierarchical span tracing with an injectable monotonic clock.

The tracing model is a tree of **spans**: named, timed regions with
arbitrary attributes, nested by dynamic scope.  A :class:`Collector` owns
the tree for one run; it is *activated* for the duration of a traced
command (``with collecting() as col:``) and every ``with span(...)`` in
any instrumented module then records into it.  When no collector is
active, :func:`span` yields a shared no-op object and the instrumented
code pays essentially nothing — tracing off is the default and must never
perturb results (spans only read the clock; they never touch RNG state or
numerics).

Worker processes get their own collectors (see
:meth:`Collector.payload` / :meth:`Collector.adopt`): a worker serialises
its span tree and metrics into a plain-JSON payload, ships it back through
the ``ProcessPoolExecutor`` result tuple, and the parent grafts it into
the live trace under the current span.

The clock is injectable (``Collector(clock=...)``) so tests can assert
exact, deterministic durations.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry


class SpanNode:
    """One recorded span: a named, timed region with attributes.

    ``start``/``end`` are clock readings local to the recording process;
    :attr:`duration` is the authoritative quantity (clock origins differ
    across processes, durations do not).
    """

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 start: float = 0.0, end: Optional[float] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.start = start
        self.end = end
        self.children: List["SpanNode"] = []

    @property
    def duration(self) -> float:
        """Wall-clock duration in clock units (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def self_time(self) -> float:
        """Duration minus the children's durations (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def set(self, **attrs: Any) -> "SpanNode":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Recursive plain-JSON form (used by worker payloads and sinks)."""
        return {
            "name": self.name,
            "start": self.start,
            "dur": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanNode":
        """Rebuild a span tree from :meth:`to_dict` output."""
        start = float(data.get("start", 0.0))
        node = cls(
            str(data.get("name", "?")),
            attrs=dict(data.get("attrs", {})),
            start=start,
            end=start + float(data.get("dur", 0.0)),
        )
        node.children = [cls.from_dict(c) for c in data.get("children", [])]
        return node

    def walk(self) -> Iterator["SpanNode"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, dur={self.duration:.6g}, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NoopSpan":
        """Ignore attributes (tracing is off)."""
        return self


#: The singleton no-op span; identity-comparable in tests.
NOOP_SPAN = _NoopSpan()


class Collector:
    """In-memory trace collector: span tree, metrics, structured events.

    Parameters
    ----------
    clock:
        Zero-argument monotonic time source.  Defaults to
        :func:`time.perf_counter`; tests inject a fake clock for
        deterministic durations.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock if clock is not None else time.perf_counter
        self.origin = self.clock()
        self.roots: List[SpanNode] = []
        self._stack: List[SpanNode] = []
        self.metrics = MetricsRegistry()
        self.events: List[Dict[str, Any]] = []

    # -- span lifecycle ---------------------------------------------------

    def start_span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> SpanNode:
        """Open a span nested under the currently open one (if any)."""
        node = SpanNode(name, attrs=attrs, start=self.clock())
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        return node

    def end_span(self, node: SpanNode) -> None:
        """Close ``node`` (and any unclosed spans opened inside it)."""
        now = self.clock()
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = now
            if top is node:
                return
        # ``node`` was not on the stack (already closed); nothing to do.

    def current_span(self) -> Optional[SpanNode]:
        """The innermost open span, or ``None`` at the trace root."""
        return self._stack[-1] if self._stack else None

    # -- cross-process funneling ------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Plain-JSON trace content for shipping to a parent process."""
        return {
            "spans": [root.to_dict() for root in self.roots],
            "metrics": self.metrics.snapshot(),
            "events": list(self.events),
        }

    def adopt(self, payload: Optional[Mapping[str, Any]],
              attrs: Optional[Dict[str, Any]] = None) -> None:
        """Graft a worker's :meth:`payload` into the live trace.

        Span trees attach as children of the currently open span (or as
        roots), tagged with ``attrs`` (e.g. the worker pid); metrics merge
        into this collector's registry; events append.
        """
        if not payload:
            return
        for span_dict in payload.get("spans", []):
            node = SpanNode.from_dict(span_dict)
            if attrs:
                node.attrs.update(attrs)
            parent = self.current_span()
            if parent is not None:
                parent.children.append(node)
            else:
                self.roots.append(node)
        self.metrics.merge(payload.get("metrics", {}))
        self.events.extend(payload.get("events", []))

    # -- structured events ------------------------------------------------

    def record_event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append a structured event (e.g. a stage failure) to the trace."""
        event = {"type": kind, "at": self.clock() - self.origin}
        event.update(fields)
        self.events.append(event)
        return event

    def __repr__(self) -> str:
        return (
            f"Collector(roots={len(self.roots)}, open={len(self._stack)}, "
            f"events={len(self.events)})"
        )


#: Stack of activated collectors (innermost last).  A stack rather than a
#: single slot so nested activations (e.g. a traced CLI command calling a
#: helper that opens its own scope in tests) unwind correctly.
_ACTIVE: List[Collector] = []

#: Recent structured failures, kept even when tracing is off so a crashed
#: exhibit can always report which stage failed.
_RECENT_FAILURES: "deque[Dict[str, Any]]" = deque(maxlen=16)


def activate(collector: Collector) -> Collector:
    """Make ``collector`` the active trace target; returns it."""
    _ACTIVE.append(collector)
    return collector


def deactivate(collector: Optional[Collector] = None) -> None:
    """Pop the active collector (must match ``collector`` when given)."""
    if not _ACTIVE:
        return
    if collector is None or _ACTIVE[-1] is collector:
        _ACTIVE.pop()


def current() -> Optional[Collector]:
    """The active collector, or ``None`` when tracing is off."""
    return _ACTIVE[-1] if _ACTIVE else None


def enabled() -> bool:
    """Whether a collector is currently active."""
    return bool(_ACTIVE)


def monotonic() -> float:
    """One reading of the observability clock.

    Returns the active collector's (injectable) clock when tracing, else
    :func:`time.perf_counter`.  This is the sanctioned wall-clock seam for
    ``repro`` library code (lint rule OBS002 forbids direct
    ``time.time``/``time.monotonic``/``time.perf_counter`` calls outside
    :mod:`repro.obs`): durations measured through it are deterministic
    under a fake clock and expressed in the same units as recorded span
    durations.
    """
    collector = current()
    if collector is not None:
        return collector.clock()
    return time.perf_counter()


@contextmanager
def collecting(clock: Optional[Callable[[], float]] = None) -> Iterator[Collector]:
    """Activate a fresh :class:`Collector` for the ``with`` body."""
    collector = Collector(clock=clock)
    activate(collector)
    try:
        yield collector
    finally:
        deactivate(collector)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Any]:
    """Record a named, timed, attributed region of the active trace.

    Usage::

        with span("fit/aicc_select", centers=k) as sp:
            ...
            sp.set(aicc=value)

    When tracing is off this yields the shared :data:`NOOP_SPAN` and does
    no work.  Exceptions propagate unchanged; the span is closed with an
    ``error`` attribute naming the exception type.
    """
    collector = current()
    if collector is None:
        yield NOOP_SPAN
        return
    node = collector.start_span(name, attrs)
    try:
        yield node
    except BaseException as exc:
        node.attrs.setdefault("error", type(exc).__name__)
        raise
    finally:
        collector.end_span(node)


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span` (span named after the function).

    ::

        @traced("crossval/kfold")
        def kfold_error(...): ...
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__qualname__

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _ACTIVE:
                return fn(*args, **kwargs)
            with span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- module-level metric conveniences (no-ops while tracing is off) --------


def inc(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` on the active collector, if any."""
    collector = current()
    if collector is not None:
        collector.metrics.inc(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active collector, if any."""
    collector = current()
    if collector is not None:
        collector.metrics.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the active collector, if any."""
    collector = current()
    if collector is not None:
        collector.metrics.set_gauge(name, value)


def record_event(kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Append a structured event to the active trace, if any.

    Module-level convenience over :meth:`Collector.record_event` (the
    same channel stage failures and CPI-interval streams use); events are
    persisted by ``obs.write_trace`` alongside spans and metrics.
    Returns the recorded event, or ``None`` while tracing is off.
    """
    collector = current()
    if collector is None:
        return None
    return collector.record_event(kind, **fields)


def record_failure(stage: str, error: BaseException, **fields: Any) -> Dict[str, Any]:
    """Report a structured stage failure.

    Appends a ``failure`` event to the active trace (when tracing), always
    remembers it in :func:`recent_failures`, and annotates the exception
    (once) with the failing stage so the traceback itself says where the
    pipeline died instead of leaving the reader to guess.
    """
    failure = {
        "stage": stage,
        "error": type(error).__name__,
        "message": str(error),
    }
    failure.update(fields)
    _RECENT_FAILURES.append(dict(failure))
    collector = current()
    if collector is not None:
        collector.record_event("failure", **failure)
    if not getattr(error, "_repro_obs_noted", False):
        note = f"[repro.obs] pipeline stage {stage!r} failed"
        if hasattr(error, "add_note"):  # PEP 678, Python >= 3.11
            error.add_note(note)
        try:
            error._repro_obs_noted = True  # type: ignore[attr-defined]
        except AttributeError:
            pass  # exceptions with __slots__: skip the marker
    return failure


def recent_failures() -> List[Dict[str, Any]]:
    """The most recent structured failures (newest last, bounded)."""
    return list(_RECENT_FAILURES)
