"""Trace sinks: JSONL event logs and human-readable summaries.

The JSONL schema (``version`` 1) is one JSON object per line:

* ``{"type": "trace", "version": 1, ...header...}`` — first line; carries
  the command, argv and wall-clock start of the run.
* ``{"type": "span", "id": n, "parent": m|null, "name": ..., "offset":
  seconds-from-trace-origin, "dur": seconds, "attrs": {...}}`` — one per
  recorded span, depth-first, ids in emission order so a parent always
  precedes its children.
* ``{"type": "failure", "stage": ..., "error": ..., "message": ...}`` —
  structured stage-failure events (and any other recorded events).
* ``{"type": "metrics", "counters": ..., "gauges": ..., "histograms":
  ...}`` — final metric totals, last line.

:func:`read_trace` round-trips the file back into span trees;
:func:`render_summary` renders the tree with per-name call counts and
cumulative/self times, which is what ``repro trace summary`` prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.tracing import Collector, SpanNode

#: JSONL schema version stamped into the trace header.
TRACE_SCHEMA_VERSION = 1


class TraceData:
    """A trace read back from a JSONL file.

    ``skipped_lines`` counts unparseable trailing lines dropped by a
    lenient read (a run killed mid-write truncates its final line).
    """

    def __init__(self, header: Dict[str, Any], roots: List[SpanNode],
                 events: List[Dict[str, Any]], metrics: Dict[str, Any],
                 skipped_lines: int = 0):
        self.header = header
        self.roots = roots
        self.events = events
        self.metrics = metrics
        self.skipped_lines = skipped_lines

    @property
    def empty(self) -> bool:
        """Whether the file contained no trace content at all."""
        return not (self.header or self.roots or self.events or self.metrics)

    def __repr__(self) -> str:
        return (
            f"TraceData(roots={len(self.roots)}, events={len(self.events)})"
        )


def _span_events(node: SpanNode, origin: float, parent_id: Optional[int],
                 counter: List[int], out: List[Dict[str, Any]]) -> None:
    """Flatten one span tree into JSONL span events (depth-first)."""
    span_id = counter[0]
    counter[0] += 1
    out.append({
        "type": "span",
        "id": span_id,
        "parent": parent_id,
        "name": node.name,
        "offset": round(node.start - origin, 9),
        "dur": round(node.duration, 9),
        "attrs": node.attrs,
    })
    for child in node.children:
        _span_events(child, origin, span_id, counter, out)


def write_trace(collector: Collector, path: Union[str, Path],
                header: Optional[Mapping[str, Any]] = None) -> Path:
    """Write the collector's content as a JSONL trace file.

    Adopted worker spans carry clock readings from their own process;
    their offsets are relative to the *worker's* trace origin, so only
    durations are comparable across processes (the summary renderer uses
    durations exclusively).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    head: Dict[str, Any] = {"type": "trace", "version": TRACE_SCHEMA_VERSION}
    if header:
        head.update(header)
    events: List[Dict[str, Any]] = [head]
    counter = [0]
    for root in collector.roots:
        _span_events(root, collector.origin, None, counter, events)
    events.extend(dict(e) for e in collector.events)
    metrics: Dict[str, Any] = {"type": "metrics"}
    metrics.update(collector.metrics.snapshot())
    events.append(metrics)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_trace(path: Union[str, Path], strict: bool = True) -> TraceData:
    """Parse a JSONL trace file back into span trees, events and metrics.

    Unknown event types are preserved in :attr:`TraceData.events` so newer
    writers stay readable; malformed lines raise ``ValueError`` with the
    offending line number.  With ``strict=False`` an unparseable *final*
    line — the signature of a run killed mid-write — is skipped and
    counted in :attr:`TraceData.skipped_lines` instead of raising;
    corruption anywhere else still raises.
    """
    header: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    nodes: Dict[int, SpanNode] = {}
    roots: List[SpanNode] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        raw_lines = fh.readlines()
    last_content = max(
        (i for i, raw in enumerate(raw_lines) if raw.strip()), default=-1
    )
    for index, raw in enumerate(raw_lines):
        lineno = index + 1
        line = raw.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if not strict and index == last_content:
                skipped += 1
                continue
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        kind = event.get("type")
        if kind == "trace":
            header = event
        elif kind == "span":
            offset = float(event.get("offset", 0.0))
            node = SpanNode(
                str(event.get("name", "?")),
                attrs=dict(event.get("attrs", {})),
                start=offset,
                end=offset + float(event.get("dur", 0.0)),
            )
            nodes[int(event["id"])] = node
            parent = event.get("parent")
            if parent is None or int(parent) not in nodes:
                roots.append(node)
            else:
                nodes[int(parent)].children.append(node)
        elif kind == "metrics":
            metrics = event
        else:
            events.append(event)
    return TraceData(header=header, roots=roots, events=events,
                     metrics=metrics, skipped_lines=skipped)


# -- summary rendering -----------------------------------------------------


def _aggregate(nodes: List[SpanNode]) -> List[Tuple[str, int, float, float, List[SpanNode]]]:
    """Group sibling spans by name: (name, calls, cum, self, children)."""
    order: List[str] = []
    groups: Dict[str, List[SpanNode]] = {}
    for node in nodes:
        if node.name not in groups:
            order.append(node.name)
            groups[node.name] = []
        groups[node.name].append(node)
    rows = []
    for name in order:
        members = groups[name]
        cum = sum(m.duration for m in members)
        self_time = sum(m.self_time for m in members)
        children: List[SpanNode] = []
        for m in members:
            children.extend(m.children)
        rows.append((name, len(members), cum, self_time, children))
    return rows


def _render_rows(nodes: List[SpanNode], depth: int,
                 lines: List[str]) -> None:
    """Append aggregated tree rows (indented by depth) to ``lines``."""
    for name, calls, cum, self_time, children in _aggregate(nodes):
        label = "  " * depth + name
        lines.append(
            f"{label:<44} {calls:>6} {cum:>12.4f} {self_time:>12.4f}"
        )
        if children:
            _render_rows(children, depth + 1, lines)


def render_summary(trace: TraceData) -> str:
    """Human-readable span tree with call counts and self/cumulative times.

    Sibling spans sharing a name are aggregated into one row (a model
    build runs hundreds of ``simulate`` spans; one row per simulation
    would bury the structure the summary exists to show).
    """
    lines: List[str] = []
    command = trace.header.get("command")
    if command:
        lines.append(f"trace: {command}")
    lines.append(
        f"{'span':<44} {'calls':>6} {'cum_s':>12} {'self_s':>12}"
    )
    lines.append("-" * 76)
    _render_rows(trace.roots, 0, lines)
    failures = [e for e in trace.events if e.get("type") == "failure"]
    for failure in failures:
        lines.append(
            f"FAILURE in {failure.get('stage')}: "
            f"{failure.get('error')}: {failure.get('message')}"
        )
    counters = trace.metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<42} {counters[name]:>14.6g}")
    histograms = trace.metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            row = (
                f"  {name:<42} n={h.get('count', 0):<6.6g} "
                f"sum={h.get('sum', 0.0):.6g} mean={h.get('mean', 0.0):.6g}"
            )
            if "p50" in h:  # older traces have no percentile columns
                row += (
                    f" p50={h['p50']:.6g} p90={h.get('p90', 0.0):.6g} "
                    f"p99={h.get('p99', 0.0):.6g}"
                )
            lines.append(row)
    return "\n".join(lines)
