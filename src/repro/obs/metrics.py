"""Metrics primitives: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a tiny, dependency-free accumulator for the
numbers the pipeline wants to account for — simulations run, cache hits,
AICc iterations, per-point simulate latency.  Registries are cheap enough
to exist always (the :class:`~repro.experiments.runner.SimulationRunner`
keeps one regardless of tracing) and are designed to cross process
boundaries: :meth:`MetricsRegistry.snapshot` produces a plain-JSON dict
that workers return through their ``ProcessPoolExecutor`` result tuples,
and :meth:`MetricsRegistry.merge` folds any number of snapshots back into
a parent registry.

Merge semantics:

* **counters** add;
* **gauges** keep the merged-in value (last writer wins — gauges are
  point-in-time readings, not totals);
* **histograms** combine count/sum/min/max exactly, so merged summaries
  equal the summary of the concatenated observations.  Percentiles
  (p50/p90/p99) come from a bounded, deterministically-decimated sample
  reservoir carried inside the summary: exact until
  :data:`Histogram.SAMPLE_CAP` observations, rank-preserving
  approximations beyond it.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional


class Histogram:
    """Streaming summary of observed values: count, sum, min, max, percentiles.

    Deliberately bucket-free: the pipeline's questions ("how long does one
    simulation take?", "how many AICc evaluations per fit?") are answered
    by totals and extremes, and a bucket-free summary merges exactly
    across processes.  For tail questions ("what does a *slow* simulation
    cost?") a bounded reservoir of raw samples backs
    :meth:`percentile` — exact up to :data:`SAMPLE_CAP` observations,
    then a systematic (every ``stride``-th observation) sample whose
    stride doubles each time the reservoir fills.  Systematic decimation
    keeps every retained value at equal weight, so quantiles stay
    unbiased however the stream is ordered, and it is deterministic, so
    repeated runs and cross-process merges stay bit-reproducible.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "stride")

    #: Reservoir bound; beyond it, percentiles are approximate.
    SAMPLE_CAP = 1024

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self.stride = 1

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (self.count - 1) % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > self.SAMPLE_CAP:
                self._decimate()

    def _decimate(self) -> None:
        """Halve the reservoir by dropping every other (arrival-order) sample.

        The survivors are exactly the observations at multiples of the
        doubled stride, so every retained sample keeps equal weight — the
        property that makes quantiles unbiased even for monotone streams.
        """
        self.samples = self.samples[::2]
        self.stride *= 2

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile of the retained samples.

        Exact while the histogram has seen at most :data:`SAMPLE_CAP`
        observations; a rank-preserving approximation afterwards.  Returns
        0.0 for an empty histogram.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (used in snapshots and JSONL events).

        Includes the sample reservoir so :meth:`merge` can keep percentile
        support across process boundaries.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "samples": list(self.samples),
        }

    def merge(self, other: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`as_dict` summary into this one.

        Count/sum/min/max combine exactly; sample reservoirs concatenate
        (and re-decimate past the cap), so merged percentiles match the
        concatenated observations to reservoir precision.  Summaries from
        older writers without a ``samples`` list still merge; they simply
        contribute nothing to percentiles.
        """
        count = int(other.get("count", 0))
        if count == 0:
            return
        self.total += float(other.get("sum", 0.0))
        o_min, o_max = float(other["min"]), float(other["max"])
        if self.count == 0:
            self.min, self.max = o_min, o_max
        else:
            assert self.min is not None and self.max is not None
            self.min = min(self.min, o_min)
            self.max = max(self.max, o_max)
        self.count += count
        self.samples.extend(float(v) for v in other.get("samples", []))
        while len(self.samples) > self.SAMPLE_CAP:
            self._decimate()

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.total:.6g})"


class MetricsRegistry:
    """Named counters, gauges and histograms with cross-process merge."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a point-in-time reading."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 when never incremented)."""
        return self.counters.get(name, 0.0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name`` (``default`` when never set)."""
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name`` (an empty one when never observed)."""
        return self.histograms.get(name, Histogram())

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON representation, safe to pickle across processes."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this.

        Counters add, gauges take the snapshot's value, histograms combine
        exactly.  Accepts partial snapshots (missing sections are skipped).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(summary)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )
