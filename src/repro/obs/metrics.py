"""Metrics primitives: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a tiny, dependency-free accumulator for the
numbers the pipeline wants to account for — simulations run, cache hits,
AICc iterations, per-point simulate latency.  Registries are cheap enough
to exist always (the :class:`~repro.experiments.runner.SimulationRunner`
keeps one regardless of tracing) and are designed to cross process
boundaries: :meth:`MetricsRegistry.snapshot` produces a plain-JSON dict
that workers return through their ``ProcessPoolExecutor`` result tuples,
and :meth:`MetricsRegistry.merge` folds any number of snapshots back into
a parent registry.

Merge semantics:

* **counters** add;
* **gauges** keep the merged-in value (last writer wins — gauges are
  point-in-time readings, not totals);
* **histograms** combine count/sum/min/max exactly, so merged summaries
  equal the summary of the concatenated observations.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional


class Histogram:
    """Streaming summary of observed values: count, sum, min, max.

    Deliberately bucket-free: the pipeline's questions ("how long does one
    simulation take?", "how many AICc evaluations per fit?") are answered
    by totals and extremes, and a bucket-free summary merges exactly
    across processes.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-serialisable summary (used in snapshots and JSONL events)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def merge(self, other: Mapping[str, float]) -> None:
        """Fold another histogram's :meth:`as_dict` summary into this one."""
        count = int(other.get("count", 0))
        if count == 0:
            return
        self.total += float(other.get("sum", 0.0))
        o_min, o_max = float(other["min"]), float(other["max"])
        if self.count == 0:
            self.min, self.max = o_min, o_max
        else:
            assert self.min is not None and self.max is not None
            self.min = min(self.min, o_min)
            self.max = max(self.max, o_max)
        self.count += count

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.total:.6g})"


class MetricsRegistry:
    """Named counters, gauges and histograms with cross-process merge."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a point-in-time reading."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 when never incremented)."""
        return self.counters.get(name, 0.0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name`` (``default`` when never set)."""
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name`` (an empty one when never observed)."""
        return self.histograms.get(name, Histogram())

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON representation, safe to pickle across processes."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this.

        Counters add, gauges take the snapshot's value, histograms combine
        exactly.  Accepts partial snapshots (missing sections are skipped).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(summary)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )
