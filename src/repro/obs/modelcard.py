"""Model cards: the quality record written next to every registered fit.

A manifest (:mod:`repro.obs.manifest`) answers "what produced this
result?"; a *model card* answers the model-specific follow-ups — which
seed and sample, how the AICc search moved, how well the fit validated
(holdout and cross-validation), what its residuals look like, how big the
model is, and what the fit cost in simulations and wall time.  Every
``repro build`` registers its fitted model together with a card
(:mod:`repro.models.registry`), and ``repro models card`` renders one.

Cards are byte-deterministic given a fixed seed and clock: the creation
timestamp is injectable, all content is plain JSON serialised with sorted
keys, and non-finite floats (the AICc trajectory contains ``inf`` for
rejected oversized subsets) are normalised to ``None`` so the file is
strict JSON.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.manifest import (MANIFEST_SCHEMA_VERSION, git_sha,  # noqa: F401
                                numpy_version, package_version)

#: Model-card schema version.
CARD_SCHEMA_VERSION = 1


def _finite(value: Any) -> Any:
    """``value`` with non-finite floats replaced by ``None``, recursively.

    ``json.dumps`` would emit the non-standard ``Infinity`` token for
    ``inf`` (and many parsers reject it); a rejected-model criterion value
    carries no more information than "not selectable", so ``None`` is the
    honest strict-JSON spelling.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _finite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_finite(v) for v in value]
    return value


def _error_block(report: Any) -> Optional[Dict[str, Any]]:
    """Flatten an :class:`~repro.core.validation.ErrorReport` (or dict)."""
    if report is None:
        return None
    if isinstance(report, Mapping):
        return {k: _finite(v) for k, v in report.items()}
    return {
        "mean_error_pct": _finite(float(report.mean)),
        "max_error_pct": _finite(float(report.max)),
        "std_error_pct": _finite(float(report.std)),
        "count": int(report.count),
    }


def build_card(
    *,
    family: str,
    benchmark: Optional[str],
    sample_size: Optional[int],
    seed: Optional[int],
    diagnostics: Optional[Mapping[str, Any]] = None,
    selection: Optional[Mapping[str, Any]] = None,
    holdout: Any = None,
    cv: Any = None,
    uncertainty: Optional[Mapping[str, Any]] = None,
    cost: Optional[Mapping[str, Any]] = None,
    design_space_hash: Optional[str] = None,
    git: Optional[str] = None,
    created: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one model card as a plain JSON-ready dict.

    Parameters
    ----------
    family, benchmark, sample_size, seed:
        Identity of the fit: model family short name, the simulated
        benchmark, the training sample size and the root seed.
    diagnostics:
        The model's :meth:`~repro.models.base.Model.diagnostics` output
        (embedded verbatim, non-finite floats normalised).
    selection:
        Search summary — criterion name/value, chosen ``p_min``/``alpha``
        and the per-candidate criterion ``trajectory`` from
        :class:`~repro.models.rbf.RBFSearchResult`.
    holdout, cv:
        :class:`~repro.core.validation.ErrorReport` objects (or
        pre-flattened dicts) for the paper's independent test set and the
        cross-validation estimate; either may be ``None``.
    uncertainty:
        The calibration's :meth:`~repro.models.base.Uncertainty.as_dict`
        (residual quantiles, hull, band kind).
    cost:
        Training cost from the metrics registry: ``simulations_run``,
        ``cache_hits``, ``wall_time_s``, ``jobs``.
    design_space_hash, git:
        Provenance keys matching the manifest; ``git`` defaults to the
        working tree's HEAD.
    created:
        ISO-8601 creation timestamp.  Injectable so tests (and the
        registry's byte-determinism contract) can pin the clock;
        ``None`` leaves the field null rather than reading the real clock,
        keeping card content a pure function of its inputs.
    """
    return {
        "schema": CARD_SCHEMA_VERSION,
        "created": created,
        "family": family,
        "benchmark": benchmark,
        "sample_size": sample_size,
        "seed": seed,
        "design_space_hash": design_space_hash,
        "git_sha": git if git is not None else git_sha(),
        "version": package_version(),
        "numpy_version": numpy_version(),
        "python_version": _python_version(),
        "diagnostics": _finite(dict(diagnostics or {})),
        "selection": _finite(dict(selection or {})),
        "errors": {
            "holdout": _error_block(holdout),
            "cv": _error_block(cv),
        },
        "uncertainty": _finite(dict(uncertainty) if uncertainty else None),
        "cost": _finite(dict(cost or {})),
    }


def created_timestamp() -> str:
    """ISO-8601 UTC "now" for card/registry records, pinnable for tests.

    Honours the reproducible-builds ``SOURCE_DATE_EPOCH`` convention: when
    that variable holds an integer epoch, it is rendered instead of the
    real clock, making registration byte-deterministic end to end.
    """
    import os
    from datetime import datetime, timezone

    epoch = os.environ.get("SOURCE_DATE_EPOCH")
    if epoch is not None:
        try:
            moment = datetime.fromtimestamp(int(epoch), tz=timezone.utc)
            return moment.isoformat(timespec="seconds")
        except (ValueError, OverflowError, OSError):
            pass  # malformed pin: fall through to the real clock
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _python_version() -> str:
    """The interpreter version string (mirrors the manifest field)."""
    import platform

    return platform.python_version()


def selection_summary(search: Any) -> Dict[str, Any]:
    """Selection block from an :class:`~repro.models.rbf.RBFSearchResult`.

    Records the winning ``(p_min, alpha)``, the criterion value, and the
    full grid-search trajectory (one entry per candidate, in search
    order) — the "how did AICc move" record the paper's Sec. 2.6 grid
    search otherwise discards.
    """
    info = search.info
    return {
        "criterion": info.criterion_name,
        "criterion_value": info.criterion_value,
        "p_min": info.p_min,
        "alpha": info.alpha,
        "num_centers": info.num_centers,
        "num_candidates": info.num_candidates,
        "tree_depth": info.tree_depth,
        "trajectory": [
            {
                "p_min": t.p_min,
                "alpha": t.alpha,
                "criterion_value": t.criterion_value,
                "num_centers": t.num_centers,
            }
            for t in search.tried
        ],
    }


def card_to_json(card: Mapping[str, Any]) -> str:
    """Canonical serialisation: sorted keys, strict JSON, trailing newline."""
    return json.dumps(_finite(dict(card)), indent=1, sort_keys=True,
                      allow_nan=False) + "\n"


def write_card(card: Mapping[str, Any], path: Union[str, Path]) -> Path:
    """Write a card at ``path`` in canonical form; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(card_to_json(card), encoding="utf-8")
    return path


def read_card(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a card back; raises ``ValueError`` on corrupt files."""
    path = Path(path)
    try:
        card = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"corrupt model card {path}: {exc}") from exc
    if not isinstance(card, dict):
        raise ValueError(f"corrupt model card {path}: not a JSON object")
    return card


def render_card(card: Mapping[str, Any]) -> str:
    """Human-readable rendering of a card (for ``repro models card``)."""
    lines: List[str] = []
    head = (f"model card · {card.get('family')} · "
            f"benchmark={card.get('benchmark')} "
            f"sample_size={card.get('sample_size')} seed={card.get('seed')}")
    lines.append(head)
    lines.append("-" * len(head))
    for key in ("created", "git_sha", "version", "numpy_version",
                "python_version", "design_space_hash"):
        if card.get(key) is not None:
            lines.append(f"{key:18} {card[key]}")
    diag = card.get("diagnostics") or {}
    if diag:
        body = ", ".join(f"{k}={v}" for k, v in sorted(diag.items())
                         if k != "family")
        lines.append(f"{'diagnostics':18} {body}")
    sel = card.get("selection") or {}
    if sel:
        lines.append(
            f"{'selection':18} {sel.get('criterion')}="
            f"{_fmt(sel.get('criterion_value'))} "
            f"p_min={sel.get('p_min')} alpha={sel.get('alpha')} "
            f"centers={sel.get('num_centers')} "
            f"({len(sel.get('trajectory') or [])} candidates tried)"
        )
    errors = card.get("errors") or {}
    for name in ("holdout", "cv"):
        block = errors.get(name)
        if block:
            lines.append(
                f"{'error/' + name:18} mean={_fmt(block.get('mean_error_pct'))}% "
                f"max={_fmt(block.get('max_error_pct'))}% "
                f"(n={block.get('count')})"
            )
    unc = card.get("uncertainty")
    if unc:
        q = unc.get("residual_quantiles") or [None, None, None]
        lines.append(
            f"{'uncertainty':18} kind={unc.get('kind')} "
            f"q10={_fmt(q[0])} q50={_fmt(q[1])} q90={_fmt(q[2])}"
        )
    cost = card.get("cost") or {}
    if cost:
        body = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(cost.items()))
        lines.append(f"{'cost':18} {body}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    """Compact numeric formatting for the text rendering."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
