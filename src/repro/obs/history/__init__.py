"""Cross-run observability: the run-history ledger and its consumers.

One record per pipeline run (:mod:`~repro.obs.history.ledger`), trend and
drift analysis over those records (:mod:`~repro.obs.history.trend`),
span-level attribution of wall-clock regressions between two traces
(:mod:`~repro.obs.history.diff`), and a self-contained HTML report
(:mod:`~repro.obs.history.report`).
"""

from repro.obs.history.diff import (
    DIFF_SCHEMA_VERSION,
    SpanDelta,
    TraceDiff,
    diff_as_dict,
    diff_traces,
    render_diff,
)
from repro.obs.history.ledger import (
    HISTORY_SCHEMA_VERSION,
    append_run,
    default_history_path,
    iter_runs,
    load_runs,
    record_from_manifest,
)
from repro.obs.history.report import render_html, write_html
from repro.obs.history.trend import (
    CHECK_FIELDS,
    TREND_SCHEMA_VERSION,
    check_latest,
    comparable_history,
    latest_gate,
    mad,
    median,
    modified_zscore,
    render_trend,
    series,
    sparkline,
    trend_document,
)

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DIFF_SCHEMA_VERSION",
    "TREND_SCHEMA_VERSION",
    "CHECK_FIELDS",
    "SpanDelta",
    "TraceDiff",
    "append_run",
    "check_latest",
    "comparable_history",
    "default_history_path",
    "diff_as_dict",
    "diff_traces",
    "iter_runs",
    "latest_gate",
    "load_runs",
    "mad",
    "median",
    "modified_zscore",
    "record_from_manifest",
    "render_diff",
    "render_html",
    "render_trend",
    "series",
    "sparkline",
    "trend_document",
    "write_html",
]
