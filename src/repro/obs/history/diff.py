"""Trace diff: attribute a wall-clock delta between two runs to spans.

"The build got 30% slower" is an observation; "``fit.select_centers``
self-time +2.1s (+41%), calls unchanged" is a diagnosis.  This module
produces the second from two recorded traces of the same workflow: both
span trees are folded into per-call-stack aggregates (the same
self-time aggregation the profiler uses, so a stack's self times
partition its trace's total duration exactly), stacks are aligned by
their name path, and the total delta decomposes into per-stack self-time
deltas — by construction the attribution sums to the whole change, so
nothing can hide.  Call-count deltas ride along to separate "the same
work got slower" from "more work ran".

``repro trace diff OLD NEW`` prints the ranked attribution table;
``--json`` emits the pinned-schema machine form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.prof.analyze import aggregate_stacks
from repro.obs.sinks import TraceData

#: Schema version of the ``repro trace diff --json`` document.
DIFF_SCHEMA_VERSION = 1


@dataclass
class SpanDelta:
    """One aligned call stack's contribution to the wall-clock delta."""

    stack: Tuple[str, ...]
    calls_old: int = 0
    calls_new: int = 0
    self_old_s: float = 0.0
    self_new_s: float = 0.0
    cum_old_s: float = 0.0
    cum_new_s: float = 0.0

    @property
    def self_delta_s(self) -> float:
        """Self-time change, the quantity the attribution sums."""
        return self.self_new_s - self.self_old_s

    @property
    def calls_delta(self) -> int:
        """Call-count change (``+`` means the new run ran it more)."""
        return self.calls_new - self.calls_old

    @property
    def status(self) -> str:
        """``"common"``, ``"new"`` (only in NEW) or ``"gone"`` (only OLD)."""
        if self.calls_old == 0:
            return "new"
        if self.calls_new == 0:
            return "gone"
        return "common"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON row (schema-pinned by the CLI tests)."""
        return {
            "stack": list(self.stack),
            "status": self.status,
            "calls_old": self.calls_old,
            "calls_new": self.calls_new,
            "calls_delta": self.calls_delta,
            "self_old_s": self.self_old_s,
            "self_new_s": self.self_new_s,
            "self_delta_s": self.self_delta_s,
            "cum_old_s": self.cum_old_s,
            "cum_new_s": self.cum_new_s,
        }


@dataclass
class TraceDiff:
    """The aligned diff of two traces."""

    total_old_s: float
    total_new_s: float
    rows: List[SpanDelta] = field(default_factory=list)
    old_command: Optional[str] = None
    new_command: Optional[str] = None

    @property
    def total_delta_s(self) -> float:
        """Wall-clock change between the traces' root spans."""
        return self.total_new_s - self.total_old_s

    @property
    def attributed_delta_s(self) -> float:
        """Sum of per-stack self-time deltas.

        Equals :attr:`total_delta_s` up to self-time clamping (an open
        span's children can nominally exceed it), so the attribution
        accounts for ~100% of the change.
        """
        return sum(row.self_delta_s for row in self.rows)

    def ranked(self) -> List[SpanDelta]:
        """Rows ranked by absolute self-time delta, largest first."""
        return sorted(self.rows,
                      key=lambda r: (-abs(r.self_delta_s), r.stack))


def diff_traces(old: TraceData, new: TraceData) -> TraceDiff:
    """Align two traces by call-stack path and attribute the wall delta."""
    old_stats = {s.stack: s for s in aggregate_stacks(old)}
    new_stats = {s.stack: s for s in aggregate_stacks(new)}
    # New-trace order first (the run under scrutiny), then stacks that
    # disappeared, in the old trace's order.
    stacks = [s.stack for s in aggregate_stacks(new)]
    stacks.extend(s.stack for s in aggregate_stacks(old)
                  if s.stack not in new_stats)
    rows: List[SpanDelta] = []
    for stack in stacks:
        o = old_stats.get(stack)
        n = new_stats.get(stack)
        rows.append(SpanDelta(
            stack=stack,
            calls_old=o.calls if o else 0,
            calls_new=n.calls if n else 0,
            self_old_s=o.self_s if o else 0.0,
            self_new_s=n.self_s if n else 0.0,
            cum_old_s=o.cum_s if o else 0.0,
            cum_new_s=n.cum_s if n else 0.0,
        ))
    return TraceDiff(
        total_old_s=sum(root.duration for root in old.roots),
        total_new_s=sum(root.duration for root in new.roots),
        rows=rows,
        old_command=old.header.get("command"),
        new_command=new.header.get("command"),
    )


def _pct(delta: float, base: float) -> str:
    """``(+41%)``-style relative-change suffix (empty for a zero base)."""
    if base == 0:
        return ""
    return f" ({delta / base:+.0%})"


def diff_as_dict(diff: TraceDiff) -> Dict[str, Any]:
    """The ``repro trace diff --json`` document (schema version 1)."""
    return {
        "schema": DIFF_SCHEMA_VERSION,
        "old": {"command": diff.old_command, "total_s": diff.total_old_s},
        "new": {"command": diff.new_command, "total_s": diff.total_new_s},
        "total_delta_s": diff.total_delta_s,
        "attributed_delta_s": diff.attributed_delta_s,
        "spans": [row.as_dict() for row in diff.ranked()],
    }


def render_diff(diff: TraceDiff, top: int = 20) -> str:
    """Ranked human-readable attribution table (``repro trace diff``)."""
    lines = [
        f"trace diff: old={diff.total_old_s:.4f}s "
        f"new={diff.total_new_s:.4f}s "
        f"delta={diff.total_delta_s:+.4f}s"
        f"{_pct(diff.total_delta_s, diff.total_old_s)}",
        f"attributed to spans: {diff.attributed_delta_s:+.4f}s",
        "",
        f"{'self_delta_s':>13} {'self_old_s':>11} {'self_new_s':>11} "
        f"{'calls':>11}  stack",
        "-" * 86,
    ]
    ranked = diff.ranked()
    for row in ranked[: max(0, top)]:
        calls = (f"{row.calls_old}->{row.calls_new}"
                 if row.calls_delta else f"{row.calls_new}")
        marker = {"new": " [new]", "gone": " [gone]"}.get(row.status, "")
        lines.append(
            f"{row.self_delta_s:>+13.4f} {row.self_old_s:>11.4f} "
            f"{row.self_new_s:>11.4f} {calls:>11}  "
            f"{';'.join(row.stack)}{marker}"
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more stack(s)")
    if not ranked:
        lines.append("(no spans in either trace)")
    return "\n".join(lines)
