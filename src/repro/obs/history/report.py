"""Self-contained HTML report over the run-history ledger.

``repro report --html`` renders one file a reviewer can open from a CI
artifact with no server, no network, and no dependencies: inline CSS,
inline SVG charts, zero scripts.  Output is **deterministic** — the same
ledger (and optional trace) produces byte-identical HTML, so the report
itself can be diffed across commits.  Pieces:

* a status strip: the latest perf-gate outcome and the MAD drift check
  (:func:`repro.obs.history.trend.check_latest`), each as icon + label
  (never color alone);
* headline stat tiles (runs recorded, latest accuracy, latest bench wall);
* the paper's own longitudinal chart — mean CPI error vs sample size —
  and the bench wall-time trend per run, as single-series SVG line charts
  with native ``<title>`` tooltips on every point;
* stacked CPI bars for attributed runs (cycle-accounting records carry
  their full component stack in the ledger), with a text breakdown of
  the latest stack;
* the latest recorded span tree with self-time bars;
* the run table (the "table view" that backs every chart).

Colors come from a validated light/dark palette defined once as CSS
custom properties; all text wears ink tokens, marks carry the hue.
"""

from __future__ import annotations

import html as _html
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.history import trend as _trend
from repro.obs.prof.analyze import aggregate_stacks
from repro.obs.sinks import TraceData
from repro.simulator.attribution import COMPONENTS

#: Runs shown in the report's run table (newest first).
TABLE_LIMIT = 50

#: Rows shown in the span-tree section.
TREE_LIMIT = 60

#: Stacked CPI bars shown in the cycle-accounting section (newest first).
STACK_LIMIT = 8

#: Registered models shown in the model-quality table (newest first).
MODEL_LIMIT = 10

#: Serving sessions listed in the serving section (newest first).
SERVE_LIMIT = 10

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e3e2de;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --status-good: #0ca30c;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #3d3d3a;
    --series-1: #3987e5;
    --series-2: #d95926;
  }
}
body {
  margin: 0 auto; padding: 24px; max-width: 960px;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.meta { color: var(--text-secondary); margin: 0 0 16px; }
.status { display: flex; gap: 8px; flex-wrap: wrap; margin: 16px 0; }
.chip {
  padding: 3px 10px; border-radius: 12px; background: var(--surface-2);
  color: var(--text-primary); font-size: 13px;
}
.chip b { font-weight: 600; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile {
  background: var(--surface-2); border-radius: 6px; padding: 10px 14px;
  min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .l { color: var(--text-secondary); font-size: 12px; }
svg text { fill: var(--text-secondary); font: 11px system-ui, sans-serif; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 8px; white-space: nowrap; }
th { color: var(--text-secondary); font-weight: 500;
     border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right;
  font-variant-numeric: tabular-nums; }
tr:nth-child(even) td { background: var(--surface-2); }
.tree td { font-family: ui-monospace, monospace; font-size: 12px; }
.bar { display: inline-block; height: 10px; border-radius: 0 4px 4px 0;
       background: var(--series-1); vertical-align: baseline; }
.note { color: var(--text-secondary); font-style: italic; }
.stackbar { display: flex; height: 18px; border-radius: 4px;
            overflow: hidden; margin: 2px 0 10px; }
.stackbar .seg { height: 100%; }
.legend { display: flex; gap: 10px; flex-wrap: wrap; margin: 8px 0;
          font-size: 12px; color: var(--text-secondary); }
.swatch { display: inline-block; width: 10px; height: 10px;
          border-radius: 2px; vertical-align: -1px; }
"""

#: Mid-tone segment colors, one per CPI-stack component, legible on both
#: the light and dark surfaces (values are always shown as text too, so
#: color is never the only channel).
_STACK_COLORS = {
    "base": "#908f8a",
    "icache": "#9dc3ec",
    "btb_bubble": "#62a6e0",
    "branch_redirect": "#2a78d6",
    "rob": "#7a5cc5",
    "iq": "#a489dd",
    "lsq": "#c9b6ef",
    "fu": "#3f9c6b",
    "dep": "#87c7a2",
    "store_forward": "#c7a22a",
    "dl1": "#eb6834",
    "l2": "#d03b3b",
    "dram": "#8c1f1f",
}

#: Fallback segment color for components this palette does not know.
_STACK_FALLBACK = "#6e6d68"


def _esc(value: Any) -> str:
    """HTML-escape a value's string form."""
    return _html.escape(str(value), quote=True)


def _num(value: Any, fmt: str = "{:.4g}", missing: str = "–") -> str:
    """Format a possibly-missing number for a table cell."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return missing
    return fmt.format(value)


def _chip(kind: str, icon: str, label: str) -> str:
    """One status chip: an icon colored by state plus an always-on label."""
    return (f'<span class="chip"><b style="color: var(--status-{kind})">'
            f'{icon}</b> {_esc(label)}</span>')


def _line_chart(
    points: Sequence[Tuple[float, float, str]],
    x_label: str,
    y_label: str,
    color_var: str,
) -> str:
    """Single-series SVG line chart with ``<title>`` tooltips per point.

    ``points`` is ``(x, y, tooltip)`` in draw order.  One series only, so
    the title names it and no legend box is needed; min/max ticks label
    both axes directly.  All coordinates are rounded for deterministic
    output.
    """
    if len(points) < 2:
        return ('<p class="note">not enough runs recorded to chart '
                f'{_esc(y_label)} yet</p>')
    width, height = 640.0, 190.0
    left, right, top, bottom = 58.0, 14.0, 12.0, 34.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(x: float) -> float:
        return left + (x - x_lo) / x_span * (width - left - right)

    def sy(y: float) -> float:
        return (height - bottom) - (y - y_lo) / y_span * (height - top - bottom)

    coords = [(round(sx(x), 2), round(sy(y), 2)) for x, y, _ in points]
    poly = " ".join(f"{cx},{cy}" for cx, cy in coords)
    dots = "".join(
        f'<circle cx="{cx}" cy="{cy}" r="3" fill="var({color_var})">'
        f"<title>{_esc(tip)}</title></circle>"
        for (cx, cy), (_, _, tip) in zip(coords, points)
    )
    base_y = round(height - bottom, 2)
    return (
        f'<svg viewBox="0 0 {width:g} {height:g}" width="{width:g}" '
        f'height="{height:g}" role="img" aria-label="{_esc(y_label)}">'
        f'<line class="axis" x1="{left:g}" y1="{base_y}" x2="{width - right:g}" '
        f'y2="{base_y}"/>'
        f'<line class="axis" x1="{left:g}" y1="{top:g}" x2="{left:g}" '
        f'y2="{base_y}"/>'
        f'<text x="{left - 6:g}" y="{round(sy(y_hi) + 4, 2)}" '
        f'text-anchor="end">{_num(y_hi)}</text>'
        f'<text x="{left - 6:g}" y="{round(sy(y_lo) + 4, 2)}" '
        f'text-anchor="end">{_num(y_lo)}</text>'
        f'<text x="{left:g}" y="{height - 10:g}">{_num(x_lo)}</text>'
        f'<text x="{width - right:g}" y="{height - 10:g}" '
        f'text-anchor="end">{_num(x_hi)}</text>'
        f'<text x="{(left + width - right) / 2:g}" y="{height - 10:g}" '
        f'text-anchor="middle">{_esc(x_label)}</text>'
        f'<polyline points="{poly}" fill="none" stroke="var({color_var})" '
        f'stroke-width="2" stroke-linejoin="round"/>'
        f"{dots}</svg>"
    )


def _error_points(
    runs: Sequence[Mapping[str, Any]],
) -> List[Tuple[float, float, str]]:
    """Latest ``mean_error_pct`` per sample size, ordered by sample size."""
    latest: Dict[float, Tuple[float, str]] = {}
    for record in runs:
        size = record.get("sample_size")
        err = record.get("mean_error_pct")
        if isinstance(size, (int, float)) and isinstance(err, (int, float)) \
                and not isinstance(size, bool) and not isinstance(err, bool):
            tip = (f"n={size:g}: {err:.4g}% "
                   f"({record.get('benchmark') or record.get('command')})")
            latest[float(size)] = (float(err), tip)
    return [(size, latest[size][0], latest[size][1])
            for size in sorted(latest)]


def _bench_points(
    runs: Sequence[Mapping[str, Any]],
) -> List[Tuple[float, float, str]]:
    """Bench wall time per bench run, in ledger (commit) order."""
    points: List[Tuple[float, float, str]] = []
    for record in runs:
        wall = record.get("bench_wall_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            sha = (record.get("git_sha") or "?")[:8]
            points.append((
                float(len(points)), float(wall),
                f"run {len(points)} @ {sha}: {wall:.4g}s",
            ))
    return points


def _status_strip(runs: Sequence[Mapping[str, Any]],
                  anomalies: Sequence[str]) -> str:
    """The gate + drift status chips."""
    chips: List[str] = []
    gate = _trend.latest_gate(runs)
    if gate is None:
        chips.append(_chip("serious", "○", "no perf-gate run recorded"))
    elif gate.get("passed"):
        chips.append(_chip("good", "●", "perf gate passed"))
    else:
        count = len(gate.get("violations") or [])
        chips.append(_chip("critical", "✕",
                           f"perf gate failed ({count} violation(s))"))
    if anomalies:
        chips.append(_chip("critical", "▲",
                           f"drift check: {len(anomalies)} anomaly(ies)"))
    else:
        chips.append(_chip("good", "●", "drift check clean"))
    items = "".join(chips)
    details = "".join(f"<li>{_esc(a)}</li>" for a in anomalies)
    if details:
        details = f"<ul>{details}</ul>"
    return f'<div class="status">{items}</div>{details}'


def _tiles(runs: Sequence[Mapping[str, Any]]) -> str:
    """Headline stat tiles."""
    def last(field: str) -> Any:
        for record in reversed(runs):
            if record.get(field) is not None:
                return record.get(field)
        return None

    tiles = [
        (str(len(runs)), "runs recorded"),
        (_num(last("mean_error_pct"), "{:.3g}%"), "latest mean CPI error"),
        (_num(last("bench_wall_s"), "{:.3g}s"), "latest bench wall"),
        (_num(last("cache_hit_rate"), "{:.0%}"), "latest cache hit rate"),
    ]
    body = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )
    return f'<div class="tiles">{body}</div>'


def _run_table(runs: Sequence[Mapping[str, Any]]) -> str:
    """The run table (newest first, capped at :data:`TABLE_LIMIT`)."""
    head = (
        "<tr><th>started</th><th>command</th><th>benchmark</th>"
        '<th class="num">sample</th><th class="num">mean err %</th>'
        '<th class="num">wall s</th><th class="num">sims</th>'
        '<th class="num">hit rate</th><th class="num">jobs</th>'
        "<th>git</th></tr>"
    )
    rows: List[str] = []
    for record in list(reversed(runs))[:TABLE_LIMIT]:
        rows.append(
            "<tr>"
            f"<td>{_esc(record.get('started') or '–')}</td>"
            f"<td>{_esc(record.get('command') or '?')}</td>"
            f"<td>{_esc(record.get('benchmark') or '–')}</td>"
            f'<td class="num">{_num(record.get("sample_size"), "{:g}")}</td>'
            f'<td class="num">{_num(record.get("mean_error_pct"))}</td>'
            f'<td class="num">{_num(record.get("wall_time_s"))}</td>'
            f'<td class="num">{_num(record.get("simulations_run"), "{:g}")}</td>'
            f'<td class="num">{_num(record.get("cache_hit_rate"), "{:.0%}")}</td>'
            f'<td class="num">{_num(record.get("jobs"), "{:g}")}</td>'
            f"<td>{_esc((record.get('git_sha') or '–')[:8])}</td>"
            "</tr>"
        )
    omitted = ""
    if len(runs) > TABLE_LIMIT:
        omitted = (f'<p class="note">{len(runs) - TABLE_LIMIT} older '
                   f"run(s) not shown</p>")
    return f"<table>{head}{''.join(rows)}</table>{omitted}"


def _trace_tree(trace: Optional[TraceData]) -> str:
    """The latest trace's span tree with self-time bars."""
    if trace is None:
        return ('<p class="note">no trace recorded yet — run with '
                "<code>--trace</code> to capture one</p>")
    stats = aggregate_stacks(trace)
    if not stats:
        return '<p class="note">the latest trace recorded no spans</p>'
    max_self = max(s.self_s for s in stats) or 1.0
    command = trace.header.get("command")
    caption = (f'<p class="meta">latest trace: {_esc(command)}</p>'
               if command else "")
    head = ('<tr><th>span</th><th class="num">calls</th>'
            '<th class="num">cum s</th><th class="num">self s</th>'
            "<th>self time</th></tr>")
    rows: List[str] = []
    for stat in stats[:TREE_LIMIT]:
        indent = "&nbsp;" * 2 * (len(stat.stack) - 1)
        width = round(stat.self_s / max_self * 100.0, 1)
        rows.append(
            "<tr>"
            f"<td>{indent}{_esc(stat.name)}</td>"
            f'<td class="num">{stat.calls}</td>'
            f'<td class="num">{stat.cum_s:.4f}</td>'
            f'<td class="num">{stat.self_s:.4f}</td>'
            f'<td><span class="bar" style="width: {width:g}%; '
            f'min-width: 2px"></span></td>'
            "</tr>"
        )
    omitted = ""
    if len(stats) > TREE_LIMIT:
        omitted = (f'<p class="note">{len(stats) - TREE_LIMIT} more '
                   f"stack(s) not shown</p>")
    return f'{caption}<table class="tree">{head}{"".join(rows)}</table>{omitted}'


def _stack_runs(
    runs: Sequence[Mapping[str, Any]],
) -> List[Tuple[str, Dict[str, float], float]]:
    """Stack-bearing runs, newest first, capped at :data:`STACK_LIMIT`.

    Returns ``(label, components, total_cycles)`` rows; records whose
    ``stack`` is missing, empty, or sums to zero are skipped.
    """
    rows: List[Tuple[str, Dict[str, float], float]] = []
    for record in reversed(runs):
        stack = record.get("stack")
        if not isinstance(stack, Mapping):
            continue
        components = {
            str(name): float(value) for name, value in stack.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        total = sum(components.values())
        if total <= 0.0:
            continue
        what = record.get("benchmark") or record.get("command") or "?"
        sha = (record.get("git_sha") or "?")[:8]
        rows.append((f"{what} @ {sha}", components, total))
        if len(rows) == STACK_LIMIT:
            break
    return rows


def _stack_order(components: Mapping[str, float]) -> List[str]:
    """Canonical attribution order first, then unknown keys sorted."""
    known = [name for name in COMPONENTS if name in components]
    extra = sorted(name for name in components if name not in set(COMPONENTS))
    return known + extra


def _stack_section(runs: Sequence[Mapping[str, Any]]) -> str:
    """Stacked CPI bars for attributed runs, plus a text breakdown.

    One horizontal stacked bar per stack-bearing ledger record (segment
    widths are cycle shares, each with a ``title`` tooltip naming the
    component), a color legend, and a table of the latest stack so every
    value is available as text, not only as color.
    """
    rows = _stack_runs(runs)
    if not rows:
        return ('<p class="note">no attributed runs recorded yet — run '
                "<code>repro stacks</code> to capture a CPI stack</p>")
    seen: List[str] = []
    for _, components, _ in rows:
        for name in _stack_order(components):
            if name not in seen and components.get(name, 0.0) > 0.0:
                seen.append(name)
    order = [n for n in COMPONENTS if n in seen] + \
        [n for n in seen if n not in set(COMPONENTS)]
    legend = "".join(
        f'<span><span class="swatch" style="background: '
        f'{_STACK_COLORS.get(name, _STACK_FALLBACK)}"></span> {_esc(name)}'
        "</span>"
        for name in order
    )
    bars: List[str] = []
    for label, components, total in rows:
        segs = "".join(
            f'<span class="seg" style="width: '
            f"{round(components[name] / total * 100.0, 2):g}%; background: "
            f'{_STACK_COLORS.get(name, _STACK_FALLBACK)}" '
            f'title="{_esc(name)}: {components[name]:g} cycles '
            f'({components[name] / total * 100.0:.1f}%)"></span>'
            for name in _stack_order(components)
            if components[name] > 0.0
        )
        bars.append(f'<p class="meta">{_esc(label)} — {total:g} cycles</p>'
                    f'<div class="stackbar">{segs}</div>')
    latest_label, latest, latest_total = rows[0]
    head = ('<tr><th>component</th><th class="num">cycles</th>'
            '<th class="num">share</th></tr>')
    cells = "".join(
        "<tr>"
        f"<td>{_esc(name)}</td>"
        f'<td class="num">{latest[name]:g}</td>'
        f'<td class="num">{latest[name] / latest_total * 100.0:.1f}%</td>'
        "</tr>"
        for name in _stack_order(latest)
        if latest[name] > 0.0
    )
    table = (f'<p class="meta">latest stack: {_esc(latest_label)}</p>'
             f"<table>{head}{cells}</table>")
    return f'<div class="legend">{legend}</div>{"".join(bars)}{table}'


def _model_points(
    runs: Sequence[Mapping[str, Any]],
) -> List[Tuple[float, float, str]]:
    """Mean fit error per registered-model run, in ledger (refit) order."""
    points: List[Tuple[float, float, str]] = []
    for record in runs:
        if not record.get("model_sha"):
            continue
        err = record.get("mean_error_pct")
        if not isinstance(err, (int, float)) or isinstance(err, bool):
            continue
        label = record.get("benchmark") or record.get("command") or "?"
        points.append((
            float(len(points)), float(err),
            f"{label} v{record.get('model_version') or '?'} "
            f"@ {str(record.get('model_sha'))[:8]}: {err:.4g}%",
        ))
    return points


def _model_section(runs: Sequence[Mapping[str, Any]]) -> str:
    """Model-quality trend: fit error per registration, plus the registry
    references (sha, lineage version, family) of the latest fits.

    Only ledger records carrying a ``model_sha`` participate — these are
    the ``repro build`` runs that registered their fit, so the series is
    the longitudinal "is the fit getting worse?" record that ``repro
    models check`` gates point-wise.
    """
    chart = _line_chart(
        _model_points(runs), "registration (ledger order)",
        "mean fit error (%)", "--series-1")
    model_runs = [r for r in reversed(runs) if r.get("model_sha")]
    if not model_runs:
        return ('<p class="note">no registered models recorded yet — '
                "<code>repro build</code> registers its fit automatically"
                "</p>")
    head = ("<tr><th>started</th><th>benchmark</th><th>family</th>"
            '<th class="num">sample</th><th class="num">version</th>'
            '<th class="num">mean err %</th><th>model sha</th></tr>')
    rows: List[str] = []
    for record in model_runs[:MODEL_LIMIT]:
        rows.append(
            "<tr>"
            f"<td>{_esc(record.get('started') or '–')}</td>"
            f"<td>{_esc(record.get('benchmark') or '–')}</td>"
            f"<td>{_esc(record.get('model_family') or '–')}</td>"
            f'<td class="num">{_num(record.get("sample_size"), "{:g}")}</td>'
            f'<td class="num">{_num(record.get("model_version"), "{:g}")}</td>'
            f'<td class="num">{_num(record.get("mean_error_pct"))}</td>'
            f"<td>{_esc(str(record.get('model_sha'))[:16])}</td>"
            "</tr>"
        )
    omitted = ""
    if len(model_runs) > MODEL_LIMIT:
        omitted = (f'<p class="note">{len(model_runs) - MODEL_LIMIT} older '
                   f"registration(s) not shown</p>")
    return f"{chart}<table>{head}{''.join(rows)}</table>{omitted}"


def _serve_points(
    runs: Sequence[Mapping[str, Any]],
) -> List[Tuple[float, float, str]]:
    """p99 latency per serving session, in ledger (session) order."""
    points: List[Tuple[float, float, str]] = []
    for record in runs:
        if record.get("command") != "serve":
            continue
        p99 = record.get("latency_p99_ms")
        if not isinstance(p99, (int, float)) or isinstance(p99, bool):
            continue
        points.append((
            float(len(points)), float(p99),
            f"{record.get('started') or '?'}: p99 {p99:.4g} ms over "
            f"{record.get('requests_served') or 0} request(s)",
        ))
    return points


def _serve_section(runs: Sequence[Mapping[str, Any]]) -> str:
    """Serving sessions: request volume, errors and latency quantiles.

    Each ``repro serve`` session appends one ledger record at shutdown
    (requests served, error count, p50/p90/p99 latency), so the serving
    tail is trendable exactly like batch runs — this section charts the
    p99 series and tabulates the recent sessions.
    """
    serve_runs = [r for r in reversed(runs) if r.get("command") == "serve"]
    if not serve_runs:
        return ('<p class="note">no serving sessions recorded yet — '
                "<code>repro serve</code> appends one record per session"
                "</p>")
    chart = _line_chart(
        _serve_points(runs), "serving session (ledger order)",
        "p99 latency (ms)", "--series-2")
    head = ("<tr><th>started</th><th class=\"num\">requests</th>"
            '<th class="num">errors</th><th class="num">p50 ms</th>'
            '<th class="num">p90 ms</th><th class="num">p99 ms</th>'
            "<th>trace</th></tr>")
    rows: List[str] = []
    for record in serve_runs[:SERVE_LIMIT]:
        rows.append(
            "<tr>"
            f"<td>{_esc(record.get('started') or '–')}</td>"
            f'<td class="num">{_num(record.get("requests_served"), "{:g}")}'
            "</td>"
            f'<td class="num">{_num(record.get("request_errors"), "{:g}")}'
            "</td>"
            f'<td class="num">{_num(record.get("latency_p50_ms"))}</td>'
            f'<td class="num">{_num(record.get("latency_p90_ms"))}</td>'
            f'<td class="num">{_num(record.get("latency_p99_ms"))}</td>'
            f"<td>{_esc(record.get('trace_path') or '–')}</td>"
            "</tr>"
        )
    omitted = ""
    if len(serve_runs) > SERVE_LIMIT:
        omitted = (f'<p class="note">{len(serve_runs) - SERVE_LIMIT} older '
                   f"session(s) not shown</p>")
    return f"{chart}<table>{head}{''.join(rows)}</table>{omitted}"


def render_html(
    runs: Sequence[Mapping[str, Any]],
    trace: Optional[TraceData] = None,
    title: str = "repro — run history report",
) -> str:
    """Render the full report; deterministic for a fixed ledger + trace."""
    runs = list(runs)
    latest = runs[-1] if runs else {}
    anomalies = _trend.check_latest(runs)
    meta_bits = [f"{len(runs)} run(s)"]
    if latest.get("started"):
        meta_bits.append(f"latest {latest['started']}")
    if latest.get("git_sha"):
        meta_bits.append(f"git {latest['git_sha'][:8]}")
    if latest.get("version"):
        meta_bits.append(f"repro {latest['version']}")
    error_chart = _line_chart(
        _error_points(runs), "sample size", "mean CPI error (%)", "--series-1")
    bench_chart = _line_chart(
        _bench_points(runs), "bench run (ledger order)",
        "bench wall time (s)", "--series-2")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f'<p class="meta">{_esc(" · ".join(meta_bits))}</p>'
        f"{_status_strip(runs, anomalies)}"
        f"{_tiles(runs)}"
        "<h2>Mean CPI error vs sample size</h2>"
        f"{error_chart}"
        "<h2>Bench wall time per run</h2>"
        f"{bench_chart}"
        "<h2>Model quality (registered fits)</h2>"
        f"{_model_section(runs)}"
        "<h2>CPI stacks (cycle accounting)</h2>"
        f"{_stack_section(runs)}"
        "<h2>Serving sessions</h2>"
        f"{_serve_section(runs)}"
        "<h2>Latest trace</h2>"
        f"{_trace_tree(trace)}"
        "<h2>Run history</h2>"
        f"{_run_table(runs)}"
        "</body></html>\n"
    )


def write_html(path: Union[str, Path], html_text: str) -> Path:
    """Write the rendered report at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(html_text, encoding="utf-8")
    return path
