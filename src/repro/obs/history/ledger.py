"""The run-history ledger: one JSONL record per pipeline run.

Manifests (:mod:`repro.obs.manifest`) answer "what produced *this*
result?"; the ledger answers the longitudinal question — "how has the
pipeline behaved across *every* run on this machine?".  Each
``repro build`` / ``simulate`` / ``bench`` / ``report`` invocation and
every rendered exhibit appends exactly one schema-versioned record to
``results/history/runs.jsonl``: the manifest's provenance and cost
fields, the run's headline accuracy numbers, metric totals, the perf-gate
outcome when one ran, and the path of the recorded trace (when tracing).

Appends use the same discipline as the simulation disk cache: an advisory
``flock`` on a sidecar lock file around a read → rewrite → atomic
``os.replace`` cycle, so concurrent runners never clobber or interleave
each other's records (and a torn trailing line from a killed writer is
healed on the next append).  Reads are lenient by default — an
unparseable line is counted and skipped, never fatal — because a ledger
that refuses to load after one bad shutdown defeats its purpose.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

#: Ledger record schema version.
HISTORY_SCHEMA_VERSION = 1

_RESULTS_ENV = "REPRO_RESULTS_DIR"

#: Manifest fields copied verbatim into a history record when non-``None``.
#: ``python_version``/``numpy_version`` arrived with the model registry;
#: older manifests simply lack them and the copy stays lenient.
MANIFEST_FIELDS = (
    "command", "started", "git_sha", "version", "python", "python_version",
    "numpy_version", "hostname", "pid",
    "seed", "design_space_hash", "wall_time_s", "cpu_time_s", "jobs",
    "cache_hit_rate",
)

#: Command-specific headline fields lifted from manifest extras when present.
#: ``stack_mem_frac`` / ``stack_frontend_frac`` are the headline CPI-stack
#: components recorded by attributed runs (``repro stacks`` and the stacks
#: exhibit): fraction of cycles attributed to the memory system and to
#: front-end bubbles — trendable like any flat numeric field.
#: ``model_sha``/``model_version``/``model_card``/``model_family`` point at
#: the registered artifact a ``repro build`` produced, so the ledger links
#: every run to its model card and headline fit error.
#: ``requests_served``/``request_errors``/``latency_p*_ms`` are the
#: serving-session headline: volume, error count, and latency quantiles
#: from one ``repro serve`` session, so ``repro history trend
#: latency_p99_ms`` covers serving exactly like batch runs.
HEADLINE_FIELDS = (
    "benchmark", "sample_size", "trace_length", "configurations", "cpi",
    "p_min", "alpha", "num_centers", "mean_error_pct", "max_error_pct",
    "bench_wall_s", "artifact", "stack_mem_frac", "stack_frontend_frac",
    "stack", "model_sha", "model_version", "model_card", "model_family",
    "requests_served", "request_errors", "latency_p50_ms",
    "latency_p90_ms", "latency_p99_ms",
)

#: Metric counters summarised into flat record fields.
COUNTER_FIELDS = ("simulations_run", "cache_hits")


def default_history_path() -> Path:
    """``results/history/runs.jsonl``, honouring ``$REPRO_RESULTS_DIR``.

    Mirrors :func:`repro.experiments.report.results_dir` without importing
    it — the obs layer stays free of the experiment stack.
    """
    return (Path(os.environ.get(_RESULTS_ENV, "results"))
            / "history" / "runs.jsonl")


@contextmanager
def _file_lock(path: Path) -> Iterator[None]:
    """Advisory exclusive lock on ``path`` (best-effort without fcntl).

    The same discipline as the simulation cache's flush lock: on platforms
    without ``fcntl`` the atomic replace alone still guarantees the file is
    never corrupted, merely that a concurrent append may need retrying.
    """
    try:
        import fcntl
    except ImportError:  # non-POSIX fallback
        yield
        return
    with open(path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def record_from_manifest(
    manifest: Mapping[str, Any],
    trace_path: Optional[Union[str, Path]] = None,
    gate: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one ledger record from a run manifest.

    Copies the provenance/cost fields (:data:`MANIFEST_FIELDS`) and the
    headline accuracy/size numbers (:data:`HEADLINE_FIELDS`) that happen to
    be present, flattens the ``simulations_run``/``cache_hits`` counters
    out of the metrics snapshot, and lifts ``sample_size``-style knobs out
    of the manifest's ``overrides``.  ``trace_path`` records where the
    run's span trace landed; ``gate`` carries a perf-gate summary (see
    :func:`repro.obs.prof.gate.gate_summary`); ``extra`` merges last.
    """
    record: Dict[str, Any] = {"schema": HISTORY_SCHEMA_VERSION}
    overrides = manifest.get("overrides") or {}
    for source in (manifest, overrides):
        for key in MANIFEST_FIELDS + HEADLINE_FIELDS:
            if key in record:
                continue
            value = source.get(key)
            if value is not None:
                record[key] = value
    counters = (manifest.get("metrics") or {}).get("counters") or {}
    for name in COUNTER_FIELDS:
        if name in counters:
            record[name] = counters[name]
    if trace_path is not None:
        record["trace_path"] = str(trace_path)
    if gate is not None:
        record["gate"] = dict(gate)
    if extra:
        record.update(extra)
    return record


def append_run(record: Mapping[str, Any],
               path: Optional[Union[str, Path]] = None) -> Path:
    """Append one record to the ledger; returns the ledger path.

    Safe under concurrent writers: the whole read → append → atomic-replace
    cycle runs under an advisory lock on a sidecar ``.lock`` file, so two
    processes appending simultaneously both land in the file.  A torn
    trailing line left by a previously killed writer is completed with a
    newline rather than corrupting the next record.
    """
    path = Path(path) if path is not None else default_history_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(dict(record), sort_keys=True)
    lock_path = path.with_name(path.name + ".lock")
    with _file_lock(lock_path):
        existing = path.read_text(encoding="utf-8") if path.exists() else ""
        if existing and not existing.endswith("\n"):
            existing += "\n"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(existing + line + "\n", encoding="utf-8")
        os.replace(tmp, path)
    return path


def load_runs(
    path: Optional[Union[str, Path]] = None,
) -> Tuple[List[Dict[str, Any]], int]:
    """``(records, skipped_lines)`` from the ledger, in append order.

    Raises :class:`FileNotFoundError` when the ledger does not exist (the
    CLI turns that into a one-line error); unparseable or non-object lines
    are skipped and counted, matching the lenient trace-read convention.
    """
    path = Path(path) if path is not None else default_history_path()
    runs: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict):
                runs.append(record)
            else:
                skipped += 1
    return runs, skipped


def iter_runs(
    path: Optional[Union[str, Path]] = None,
    command: Optional[str] = None,
    benchmark: Optional[str] = None,
    git_sha: Optional[str] = None,
    since: Optional[str] = None,
) -> Iterator[Dict[str, Any]]:
    """Iterate ledger records, optionally filtered.

    ``command`` and ``benchmark`` match exactly; ``git_sha`` matches any
    prefix of the recorded SHA (so short SHAs work); ``since`` is an
    ISO-8601 timestamp compared lexically against each record's
    ``started`` (ISO UTC strings sort chronologically).
    """
    runs, _ = load_runs(path)
    for record in runs:
        if command is not None and record.get("command") != command:
            continue
        if benchmark is not None and record.get("benchmark") != benchmark:
            continue
        if git_sha is not None:
            sha = record.get("git_sha") or ""
            if not sha.startswith(git_sha):
                continue
        if since is not None and (record.get("started") or "") < since:
            continue
        yield record
