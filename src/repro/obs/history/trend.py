"""Trends and drift detection over the run-history ledger.

The paper's procedure is longitudinal by construction — grow the sample,
refit, watch the error fall — and so is the repo's performance story:
bench wall times per commit, build cost per sample size.  This module
turns the ledger into those series (:func:`series`), renders them as
compact tables with a sparkline (:func:`render_trend`), and gates drift:
:func:`check_latest` compares the newest run against its comparable
predecessors with a MAD-based modified z-score — the robust outlier test
that a handful of noisy CI runs cannot skew the way a mean/σ test can —
and reports which headline numbers regressed.  ``repro history check``
exits non-zero when it returns anything, mirroring the bench gate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Fields ``check_latest`` examines when the latest run carries them.
CHECK_FIELDS = ("wall_time_s", "mean_error_pct", "bench_wall_s")

#: Modified z-score above which a run counts as anomalous (the classic
#: Iglewicz–Hoaglin cutoff).
DEFAULT_THRESHOLD = 3.5

#: Comparable prior runs required before the check can fire at all.
MIN_HISTORY = 4

#: Consistency constant making the MAD estimate σ for normal data.
_MAD_SCALE = 0.6745

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (mean of middle pair when even)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation around the median."""
    med = median(values)
    return median([abs(float(v) - med) for v in values])


def modified_zscore(value: float, history: Sequence[float]) -> float:
    """Iglewicz–Hoaglin modified z-score of ``value`` against ``history``.

    ``0.6745 * (value - median) / MAD``.  When the history has zero MAD
    (identical readings), any deviation is infinitely surprising: returns
    ``0.0`` for an exact match and ``inf``-signed otherwise.
    """
    med = median(history)
    spread = mad(history)
    if spread == 0:
        if value == med:
            return 0.0
        return float("inf") if value > med else float("-inf")
    return _MAD_SCALE * (float(value) - med) / spread


def series(
    runs: Sequence[Mapping[str, Any]],
    field: str,
    x_field: Optional[str] = None,
) -> List[Tuple[Any, float]]:
    """``(x, value)`` pairs for every run carrying ``field``.

    ``x`` is the run's ``x_field`` value when given (runs missing it are
    dropped), else the run's ledger index — the natural x-axis for
    wall-time-vs-commit style trends.
    """
    points: List[Tuple[Any, float]] = []
    for index, record in enumerate(runs):
        value = record.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if x_field is None:
            points.append((index, float(value)))
            continue
        x = record.get(x_field)
        if x is None:
            continue
        points.append((x, float(value)))
    return points


def comparable_history(
    runs: Sequence[Mapping[str, Any]],
    latest: Mapping[str, Any],
) -> List[Mapping[str, Any]]:
    """Prior runs comparable to ``latest``: same command, same benchmark."""
    prior = [r for r in runs if r is not latest]
    prior = [r for r in prior if r.get("command") == latest.get("command")]
    if latest.get("benchmark") is not None:
        prior = [r for r in prior
                 if r.get("benchmark") == latest.get("benchmark")]
    return prior


def check_latest(
    runs: Sequence[Mapping[str, Any]],
    fields: Sequence[str] = CHECK_FIELDS,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = MIN_HISTORY,
) -> List[str]:
    """Anomaly descriptions for the newest run (empty list = healthy).

    For each field the latest run carries, its value is scored against the
    same field across comparable prior runs (same command and benchmark).
    Only *regressions* flag — a run that got faster or more accurate is
    never anomalous — and only once ``min_history`` comparable readings
    exist, so a young ledger passes trivially instead of crying wolf.
    """
    if not runs:
        return []
    latest = runs[-1]
    prior = comparable_history(runs, latest)
    anomalies: List[str] = []
    for field in fields:
        value = latest.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        history = [r[field] for r in prior
                   if isinstance(r.get(field), (int, float))
                   and not isinstance(r.get(field), bool)]
        if len(history) < min_history:
            continue
        med = median(history)
        if value <= med:
            continue  # better-or-equal than typical: never a regression
        score = modified_zscore(float(value), history)
        if score > threshold:
            anomalies.append(
                f"{field}: {value:.6g} vs median {med:.6g} over "
                f"{len(history)} comparable run(s) "
                f"(modified z-score {score:.2f} > {threshold:g})"
            )
    return anomalies


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character sparkline of ``values``."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _SPARK_CHARS[0] * len(values)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[round((float(v) - lo) / (hi - lo) * top)] for v in values
    )


def render_trend(
    points: Sequence[Tuple[Any, float]],
    field: str,
    x_field: Optional[str] = None,
) -> str:
    """Human-readable trend: sparkline, min/median/max, and the points."""
    values = [v for _, v in points]
    lines = [
        f"trend: {field}" + (f" vs {x_field}" if x_field else " by run"),
        f"  {sparkline(values)}  "
        f"n={len(values)} min={min(values):.6g} "
        f"median={median(values):.6g} max={max(values):.6g}",
        "",
        f"{x_field or 'run':>16} {field:>16}",
        "-" * 34,
    ]
    for x, value in points:
        lines.append(f"{str(x):>16} {value:>16.6g}")
    return "\n".join(lines)


#: Schema version of the machine-readable trend document.
TREND_SCHEMA_VERSION = 1


def trend_document(
    points: Sequence[Tuple[Any, float]],
    field: str,
    x_field: Optional[str] = None,
) -> Dict[str, Any]:
    """Machine-readable trend for ``repro history trend --json``.

    Schema-versioned and stable under ``json.dumps(..., sort_keys=True)``
    so scripts can consume model-error trends the way they consume
    ``trace summary --json``.  Summary statistics are omitted (``None``)
    rather than invented when the series is empty.
    """
    values = [v for _, v in points]
    return {
        "schema": TREND_SCHEMA_VERSION,
        "field": field,
        "x_field": x_field,
        "count": len(values),
        "min": min(values) if values else None,
        "median": median(values) if values else None,
        "max": max(values) if values else None,
        "points": [{"x": x, "value": v} for x, v in points],
    }


def latest_gate(runs: Sequence[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """The most recent recorded perf-gate outcome, or ``None``."""
    for record in reversed(runs):
        gate = record.get("gate")
        if isinstance(gate, dict) and gate.get("checked"):
            return dict(gate)
    return None
