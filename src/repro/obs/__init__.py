"""repro.obs — observability for the simulate→sample→fit→validate pipeline.

A dependency-free layer of five pieces:

* **span tracing** (:mod:`repro.obs.tracing`) — ``with span("fit", k=8):``
  context manager and ``@traced`` decorator recording a tree of named,
  timed, attributed regions against an injectable monotonic clock;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  histograms with exact cross-process merge;
* **sinks** (:mod:`repro.obs.sinks`) — an in-memory :class:`Collector`,
  a JSONL event log, and the tree/table summary behind
  ``repro trace summary``;
* **run manifests** (:mod:`repro.obs.manifest`) — the provenance record
  (seed, design-space hash, git SHA, version, cost, metric totals)
  written next to every result, snapshottable mid-process via
  :func:`snapshot_manifest`;
* **live telemetry** (:mod:`repro.obs.live`) — the continuous half for
  processes that never exit: a streaming trace sink with rotation, a
  memory-bounded :class:`~repro.obs.live.LiveCollector`, windowed
  metrics snapshots and a JSONL access log, serving ``repro serve``.

Tracing is off by default and costs nothing measurable: ``span`` yields a
shared no-op when no :class:`Collector` is active, and instrumentation
never touches RNG state or numerics — traced and untraced runs are
bitwise-identical.  Activate with ``with collecting() as col:`` or the
CLI's ``--trace`` / ``REPRO_TRACE``.
"""

from repro.obs.console import echo
from repro.obs.manifest import (
    build_manifest,
    cache_hit_rate,
    design_space_hash,
    git_sha,
    package_version,
    read_manifest,
    snapshot_manifest,
    write_manifest,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.sinks import TraceData, read_trace, render_summary, write_trace
from repro.obs.tracing import (
    NOOP_SPAN,
    Collector,
    SpanNode,
    activate,
    collecting,
    current,
    deactivate,
    enabled,
    inc,
    monotonic,
    observe,
    recent_failures,
    record_event,
    record_failure,
    set_gauge,
    span,
    traced,
)

__all__ = [
    "Collector",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SpanNode",
    "TraceData",
    "activate",
    "build_manifest",
    "cache_hit_rate",
    "collecting",
    "current",
    "deactivate",
    "design_space_hash",
    "echo",
    "enabled",
    "git_sha",
    "inc",
    "monotonic",
    "observe",
    "package_version",
    "read_manifest",
    "read_trace",
    "recent_failures",
    "record_event",
    "record_failure",
    "render_summary",
    "set_gauge",
    "snapshot_manifest",
    "span",
    "traced",
    "write_manifest",
    "write_trace",
]
