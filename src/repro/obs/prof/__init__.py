"""repro.obs.prof — profiling and continuous benchmarking.

Three pieces layered on the :mod:`repro.obs` trace machinery:

* **profile analysis** (:mod:`repro.obs.prof.analyze`) — turn any JSONL
  trace into per-stack *self-time* aggregates: top-N hot-span tables
  (``repro trace profile``), flamegraph-compatible folded-stack exports
  (``--folded``), and the machine-readable span summary behind
  ``repro trace summary --json``;
* **benchmark harness** (:mod:`repro.obs.prof.bench`) — a decorator
  registry of seeded hot-path benchmarks run best-of-k with warmup, an
  injectable clock, and ``tracemalloc`` peak capture.  Each benchmark
  returns deterministic *work metadata* (counts and content hashes), so
  repeated runs are comparable: only wall/CPU/memory may vary;
* **regression gate** (:mod:`repro.obs.prof.gate`) — ``repro bench``
  writes schema-versioned ``results/BENCH_<run>.json`` (machine and git
  provenance folded in from :mod:`repro.obs.manifest`);
  ``repro bench --check`` compares a run against the committed
  ``benchmarks/perf/baseline.json`` with per-benchmark noise tolerances
  and exits non-zero on regression.

The benchmark *targets* (:mod:`repro.obs.prof.targets`) import the
simulator and modeling layers, so they are loaded lazily by
:func:`~repro.obs.prof.bench.run_benchmarks` — importing this package
stays cheap and cycle-free.
"""

from repro.obs.prof.analyze import (
    SpanStat,
    aggregate_stacks,
    hot_spans,
    parse_folded,
    render_profile,
    summarize_trace,
    to_folded,
)
from repro.obs.prof.bench import (
    BenchContext,
    BenchError,
    BenchResult,
    BenchSpec,
    benchmark,
    registered_benchmarks,
    run_benchmarks,
)
from repro.obs.prof.gate import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_BASELINE_PATH,
    check_results,
    gate_summary,
    load_baseline,
    make_baseline,
    render_bench_table,
    results_document,
    write_baseline,
    write_results,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchContext",
    "BenchError",
    "BenchResult",
    "BenchSpec",
    "DEFAULT_BASELINE_PATH",
    "SpanStat",
    "aggregate_stacks",
    "benchmark",
    "check_results",
    "gate_summary",
    "hot_spans",
    "load_baseline",
    "make_baseline",
    "parse_folded",
    "registered_benchmarks",
    "render_bench_table",
    "render_profile",
    "results_document",
    "run_benchmarks",
    "summarize_trace",
    "to_folded",
    "write_baseline",
    "write_results",
]
