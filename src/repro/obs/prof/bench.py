"""Deterministic benchmark harness: registry, timing loop, memory capture.

A benchmark is a function registered with :func:`benchmark` that receives
a :class:`BenchContext` (telling it whether the run is the quick preset),
performs its *untimed* setup — building seeded traces, samples, configs —
and returns a zero-argument ``work()`` callable.  The harness times
``work()`` best-of-k with warmup against an injectable clock and captures
peak memory with :mod:`tracemalloc` in a separate untimed pass.

``work()`` returns the benchmark's **work metadata**: a small dict of
counts and content hashes describing what was computed.  Because inputs
are seeded, metadata must be byte-identical across repeats and runs —
the harness verifies this on every run (:class:`BenchError` otherwise) —
so two ``BENCH_*.json`` files are comparable whenever their work entries
match: only wall/CPU/memory may differ.

Timing protocol per benchmark: ``warmup`` untimed calls, one untimed
``tracemalloc`` pass, then ``repeats`` timed calls; the reported
``wall_s`` is the *minimum* (best-of-k — the standard estimator for the
noise-free cost), with the full list kept for variance inspection.
"""

from __future__ import annotations

import hashlib
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro import obs

#: Registered benchmarks, in registration order ({name: BenchSpec}).
_REGISTRY: Dict[str, "BenchSpec"] = {}

#: Guard so the target module is imported exactly once.
_TARGETS_LOADED = False


class BenchError(RuntimeError):
    """A benchmark violated the harness contract (e.g. unstable metadata)."""


@dataclass
class BenchContext:
    """What a benchmark setup function is told about the run."""

    quick: bool = False

    def scale(self, full: int, quick: int) -> int:
        """Pick a problem size: ``full`` normally, ``quick`` under ``--quick``."""
        return quick if self.quick else full


@dataclass
class BenchSpec:
    """One registered benchmark: identity, knobs, and its setup function."""

    name: str
    group: str
    setup: Callable[[BenchContext], Callable[[], Mapping[str, Any]]]
    repeats: int = 5
    quick_repeats: int = 3
    warmup: int = 1
    tolerance: float = 5.0  # noise multiplier allowed over the baseline


@dataclass
class BenchResult:
    """Measured outcome of one benchmark."""

    name: str
    group: str
    repeats: int
    warmup: int
    wall_s: float  # best-of-k wall time
    wall_all: List[float] = field(default_factory=list)
    cpu_s: float = 0.0  # CPU time of the best repeat
    mem_peak_kb: float = 0.0  # tracemalloc peak of the untimed pass
    work: Dict[str, Any] = field(default_factory=dict)
    tolerance: float = 5.0

    @property
    def wall_mean_s(self) -> float:
        """Mean wall time over the timed repeats."""
        return sum(self.wall_all) / len(self.wall_all) if self.wall_all else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (one entry of ``BENCH_<run>.json``)."""
        return {
            "name": self.name,
            "group": self.group,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "wall_s": self.wall_s,
            "wall_mean_s": self.wall_mean_s,
            "wall_all": list(self.wall_all),
            "cpu_s": self.cpu_s,
            "mem_peak_kb": self.mem_peak_kb,
            "work": dict(self.work),
            "tolerance": self.tolerance,
        }


def benchmark(
    name: str,
    group: str = "misc",
    repeats: int = 5,
    quick_repeats: int = 3,
    warmup: int = 1,
    tolerance: float = 5.0,
) -> Callable:
    """Register a benchmark setup function under ``name``.

    ::

        @benchmark("model/tree_build", group="models", tolerance=4.0)
        def bench_tree(ctx):
            points, responses = _seeded_sample(ctx.scale(256, 64))
            def work():
                tree = RegressionTree(points, responses, p_min=1)
                return {"nodes": len(tree.nodes_breadth_first())}
            return work

    ``tolerance`` is the per-benchmark noise multiplier the regression
    gate allows over the committed baseline (micro-benchmarks on shared
    CI runners are noisy; 5x is a deliberately forgiving default).
    """

    def decorate(fn: Callable[[BenchContext], Callable[[], Mapping[str, Any]]]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = BenchSpec(
            name=name, group=group, setup=fn, repeats=repeats,
            quick_repeats=quick_repeats, warmup=warmup, tolerance=tolerance,
        )
        return fn

    return decorate


def _load_targets() -> None:
    """Import the bundled hot-path benchmarks (idempotent, lazy).

    Deferred so importing :mod:`repro.obs.prof` never drags in the
    simulator/modeling layers (or risks an import cycle through
    :mod:`repro.obs`).
    """
    global _TARGETS_LOADED
    if not _TARGETS_LOADED:
        import repro.obs.prof.targets  # noqa: F401  (registers on import)

        _TARGETS_LOADED = True


def registered_benchmarks() -> List[BenchSpec]:
    """Every registered benchmark, in registration order."""
    _load_targets()
    return list(_REGISTRY.values())


def stable_hash(values: Any) -> str:
    """12-hex content hash of nested numbers/strings (work-metadata helper).

    Floats are repr()-ed, which is exact: two runs hash equal iff they
    computed bit-identical values.
    """
    digest = hashlib.sha256()

    def feed(value: Any) -> None:
        if isinstance(value, (list, tuple)):
            digest.update(b"[")
            for item in value:
                feed(item)
            digest.update(b"]")
        elif isinstance(value, float):
            digest.update(repr(value).encode())
        else:
            digest.update(str(value).encode())
        digest.update(b";")

    feed(values)
    return digest.hexdigest()[:12]


def _run_one(
    spec: BenchSpec,
    quick: bool,
    clock: Callable[[], float],
    measure_memory: bool,
) -> BenchResult:
    """Execute one benchmark under the timing protocol."""
    ctx = BenchContext(quick=quick)
    with obs.span(f"bench/{spec.name}", group=spec.group, quick=quick) as sp:
        work = spec.setup(ctx)
        metas: List[Dict[str, Any]] = []
        for _ in range(spec.warmup):
            metas.append(dict(work()))
        mem_peak_kb = 0.0
        if measure_memory:
            tracemalloc.start()
            try:
                metas.append(dict(work()))
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            mem_peak_kb = peak / 1024.0
        repeats = spec.quick_repeats if quick else spec.repeats
        walls: List[float] = []
        cpus: List[float] = []
        for _ in range(repeats):
            cpu0 = time.process_time()
            t0 = clock()
            metas.append(dict(work()))
            walls.append(clock() - t0)
            cpus.append(time.process_time() - cpu0)
        first = metas[0]
        for meta in metas[1:]:
            if meta != first:
                raise BenchError(
                    f"benchmark {spec.name!r}: work metadata changed between "
                    f"runs ({first!r} vs {meta!r}); inputs must be seeded"
                )
        best = min(range(len(walls)), key=walls.__getitem__)
        result = BenchResult(
            name=spec.name,
            group=spec.group,
            repeats=repeats,
            warmup=spec.warmup,
            wall_s=walls[best],
            wall_all=walls,
            cpu_s=cpus[best],
            mem_peak_kb=mem_peak_kb,
            work=first,
            tolerance=spec.tolerance,
        )
        sp.set(wall_s=result.wall_s, repeats=repeats)
        obs.observe(f"bench/{spec.name}/wall_s", result.wall_s)
    return result


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    clock: Optional[Callable[[], float]] = None,
    measure_memory: bool = True,
) -> List[BenchResult]:
    """Run registered benchmarks and return their results in order.

    Parameters
    ----------
    names:
        Benchmark names to run (``None`` = all registered); unknown names
        raise :class:`KeyError` listing the valid ones.
    quick:
        Use each benchmark's quick problem sizes and repeat counts — the
        CI smoke preset.
    clock:
        Injectable monotonic time source (tests pass a fake clock for
        deterministic wall times); defaults to ``time.perf_counter``.
    measure_memory:
        Capture ``tracemalloc`` peak in an extra untimed pass (disable
        for the fastest possible smoke run).
    """
    _load_targets()
    if names:
        unknown = [n for n in names if n not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown benchmark(s) {unknown}; "
                f"registered: {sorted(_REGISTRY)}"
            )
        specs = [_REGISTRY[n] for n in names]
    else:
        specs = list(_REGISTRY.values())
    tick = clock if clock is not None else time.perf_counter
    results = []
    for spec in specs:
        results.append(_run_one(spec, quick, tick, measure_memory))
        obs.inc("bench/benchmarks_run")
    return results
