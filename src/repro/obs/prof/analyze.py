"""Profile analysis over recorded traces: self-time, hot spans, flamegraphs.

The span summary (``repro trace summary``) shows the trace's *structure*;
this module answers the profiling question — *where did the time actually
go?* — by aggregating spans by **call stack** (the path of span names from
the root) and computing per-stack *self time*: cumulative duration minus
the duration of child spans.  Self time is the quantity a flamegraph
plots, and the one that ranks optimisation targets correctly (a parent
that merely waits on its children has a large cumulative time but no self
time to reclaim).

Exports:

* :func:`aggregate_stacks` — fold a :class:`~repro.obs.sinks.TraceData`
  into per-stack :class:`SpanStat` rows;
* :func:`hot_spans` / :func:`render_profile` — the top-N table behind
  ``repro trace profile``;
* :func:`to_folded` / :func:`parse_folded` — flamegraph-compatible
  folded-stack text (``a;b;c <integer>``, one line per stack, value =
  self time in microseconds), consumable by ``flamegraph.pl`` or
  speedscope;
* :func:`summarize_trace` — the machine-readable aggregate behind
  ``repro trace summary --json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.obs.sinks import TraceData

#: Separator used in folded-stack output; span names containing it are
#: sanitised so the folded format stays parseable.
FOLD_SEP = ";"


@dataclass
class SpanStat:
    """Aggregate over every span sharing one call stack."""

    stack: Tuple[str, ...]  # span names from root to this span
    calls: int = 0
    cum_s: float = 0.0  # summed durations
    self_s: float = 0.0  # summed durations minus children's durations
    attrs_sample: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        """The leaf span name of this stack."""
        return self.stack[-1] if self.stack else ""

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON row (used by ``trace summary --json``)."""
        return {
            "stack": list(self.stack),
            "name": self.name,
            "calls": self.calls,
            "cum_s": self.cum_s,
            "self_s": self.self_s,
        }


def aggregate_stacks(trace: TraceData) -> List[SpanStat]:
    """Fold a trace into one :class:`SpanStat` per distinct call stack.

    Stacks are identified by the path of span *names* from the root, so
    the hundreds of ``simulate`` spans inside one batch collapse into a
    single row with ``calls=len(spans)`` — the aggregation that makes a
    profile readable.  Rows come back in first-seen (depth-first) order.
    """
    order: List[Tuple[str, ...]] = []
    stats: Dict[Tuple[str, ...], SpanStat] = {}

    def visit(node, prefix: Tuple[str, ...]) -> None:
        stack = prefix + (node.name,)
        stat = stats.get(stack)
        if stat is None:
            stat = stats[stack] = SpanStat(stack=stack)
            stat.attrs_sample = dict(node.attrs)
            order.append(stack)
        stat.calls += 1
        stat.cum_s += node.duration
        stat.self_s += node.self_time
        for child in node.children:
            visit(child, stack)

    for root in trace.roots:
        visit(root, ())
    return [stats[stack] for stack in order]


def hot_spans(trace: TraceData, top: int = 20) -> List[SpanStat]:
    """The ``top`` stacks ranked by self time (descending)."""
    rows = aggregate_stacks(trace)
    rows.sort(key=lambda s: (-s.self_s, s.stack))
    return rows[: max(0, top)]


def render_profile(trace: TraceData, top: int = 20) -> str:
    """Human-readable hot-span table: self/cumulative time per stack.

    ``self%`` is each stack's share of the total self time (which equals
    the total traced wall time, since self times partition it).
    """
    rows = hot_spans(trace, top=top)
    total_self = sum(s.self_s for s in aggregate_stacks(trace))
    lines: List[str] = []
    command = trace.header.get("command")
    if command:
        lines.append(f"profile: {command}")
    lines.append(
        f"{'self_s':>10} {'self%':>6} {'cum_s':>10} {'calls':>7}  stack"
    )
    lines.append("-" * 78)
    for stat in rows:
        share = 100.0 * stat.self_s / total_self if total_self > 0 else 0.0
        lines.append(
            f"{stat.self_s:>10.4f} {share:>5.1f}% {stat.cum_s:>10.4f} "
            f"{stat.calls:>7}  {FOLD_SEP.join(stat.stack)}"
        )
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def _fold_name(name: str) -> str:
    """Sanitise one span name for the folded format (no separators/spaces)."""
    return name.replace(FOLD_SEP, ":").replace(" ", "_")


def to_folded(trace: TraceData) -> str:
    """Flamegraph-compatible folded stacks: ``a;b;c <self-µs>`` per line.

    Values are self times in integer microseconds (the folded format
    wants integer "sample counts"); stacks whose self time rounds to zero
    are dropped.  Feed the output straight to ``flamegraph.pl`` or paste
    it into speedscope.
    """
    lines: List[str] = []
    for stat in aggregate_stacks(trace):
        micros = round(stat.self_s * 1e6)
        if micros <= 0:
            continue
        stack = FOLD_SEP.join(_fold_name(name) for name in stat.stack)
        lines.append(f"{stack} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse folded-stack text back into ``{stack: microseconds}``.

    The inverse of :func:`to_folded` (also accepts any ``flamegraph.pl``
    collapsed input).  Repeated stacks accumulate; malformed lines raise
    ``ValueError`` with the offending line number.
    """
    out: Dict[Tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_text, sep, value_text = line.rpartition(" ")
        if not sep or not stack_text:
            raise ValueError(f"folded line {lineno}: missing value: {line!r}")
        try:
            value = int(value_text)
        except ValueError:
            raise ValueError(
                f"folded line {lineno}: value {value_text!r} is not an integer"
            ) from None
        stack = tuple(stack_text.split(FOLD_SEP))
        out[stack] = out.get(stack, 0) + value
    return out


def summarize_trace(trace: TraceData) -> Dict[str, Any]:
    """Machine-readable aggregate of a trace (``trace summary --json``).

    One JSON-able dict: the header, per-stack span aggregates, failure
    events, and the final metric totals — everything the text renderers
    show, without the table formatting.
    """
    return {
        "command": trace.header.get("command"),
        "version": trace.header.get("version"),
        "spans": [stat.as_dict() for stat in aggregate_stacks(trace)],
        "failures": [e for e in trace.events if e.get("type") == "failure"],
        "counters": dict(trace.metrics.get("counters", {})),
        "gauges": dict(trace.metrics.get("gauges", {})),
        "histograms": {
            name: dict(summary)
            for name, summary in trace.metrics.get("histograms", {}).items()
        },
    }
