"""Benchmark persistence and the perf regression gate.

``repro bench`` turns a list of
:class:`~repro.obs.prof.bench.BenchResult` into a schema-versioned
``results/BENCH_<run>.json`` document with machine and git provenance
folded in from :mod:`repro.obs.manifest` — the repo's performance
trajectory, one file per run.  ``repro bench --check`` compares a run
against the committed ``benchmarks/perf/baseline.json``:

* a benchmark missing from the baseline is a violation (the baseline
  must grow with the registry — run ``--update-baseline``);
* mismatched *work metadata* is a violation (the benchmark no longer
  computes the same thing, so its timing is incomparable);
* ``wall_s > baseline wall_s × tolerance`` is a regression (tolerances
  are per-benchmark; micro-benchmarks on shared CI runners need
  generous ones).

``--update-baseline`` rewrites the baseline from the current run while
preserving any hand-tuned per-benchmark tolerances.

Baselines are sectioned by preset (``quick`` vs ``full``): the presets
size their problems differently, so their timings and work metadata are
only comparable within a preset.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs import manifest as obs_manifest
from repro.obs.prof.bench import BenchResult

#: Schema version stamped into BENCH_<run>.json and baseline.json.
BENCH_SCHEMA_VERSION = 1

#: The committed perf baseline the gate checks against.
DEFAULT_BASELINE_PATH = Path("benchmarks") / "perf" / "baseline.json"


def bench_run_id(now: Optional[datetime] = None) -> str:
    """Filesystem-safe run identifier (UTC timestamp)."""
    stamp = now if now is not None else datetime.now(timezone.utc)
    return stamp.strftime("%Y%m%dT%H%M%SZ")


def results_document(
    results: Sequence[BenchResult],
    preset: str = "full",
    run_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the ``BENCH_<run>.json`` document for one bench run.

    Machine/git provenance (git SHA, package version, Python, platform,
    hostname) comes from the same :func:`~repro.obs.manifest.build_manifest`
    that stamps run manifests, so perf numbers are always attributable to
    a commit and a machine.
    """
    prov = obs_manifest.build_manifest("bench")
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "run": run_id if run_id is not None else bench_run_id(),
        "preset": preset,
        "started": prov["started"],
        "git_sha": prov["git_sha"],
        "version": prov["version"],
        "python": prov["python"],
        "platform": prov["platform"],
        "hostname": prov["hostname"],
        "results": [r.as_dict() for r in results],
    }


def write_results(doc: Mapping[str, Any],
                  directory: Union[str, Path]) -> Path:
    """Write a results document as ``<directory>/BENCH_<run>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{doc['run']}.json"
    path.write_text(json.dumps(dict(doc), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


# -- baseline ---------------------------------------------------------------


def make_baseline(
    results: Sequence[BenchResult],
    preset: str = "full",
    previous: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Baseline document from a run (tolerances survive from ``previous``).

    Baselines are keyed by **preset** — quick and full runs size their
    problems differently, so their wall times and work metadata live in
    separate sections and never cross-contaminate.  Updating one preset
    leaves the other's entries (and any hand-tuned tolerances) intact.
    """
    presets: Dict[str, Any] = dict((previous or {}).get("presets", {}))
    prev_entries: Mapping[str, Any] = presets.get(preset, {}).get(
        "benchmarks", {})
    entries: Dict[str, Any] = {}
    for result in results:
        prev = prev_entries.get(result.name, {})
        entries[result.name] = {
            "wall_s": result.wall_s,
            "tolerance": float(prev.get("tolerance", result.tolerance)),
            "work": dict(result.work),
        }
    presets[preset] = {"benchmarks": entries}
    return {"schema": BENCH_SCHEMA_VERSION, "presets": presets}


def write_baseline(baseline: Mapping[str, Any],
                   path: Union[str, Path]) -> Path:
    """Write a baseline document (pretty-printed, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dict(baseline), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a baseline document; raises ``ValueError`` on schema mismatch."""
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    schema = baseline.get("schema")
    if schema != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema {schema!r} != {BENCH_SCHEMA_VERSION}"
        )
    return baseline


def check_results(results: Sequence[BenchResult],
                  baseline: Mapping[str, Any],
                  preset: str = "full") -> List[str]:
    """Gate a run against a baseline; returns human-readable violations.

    Empty list = pass.  Violations cover a missing preset section,
    missing baseline entries, work mismatches, and wall-time regressions
    beyond each benchmark's tolerance.  Benchmarks *faster* than baseline
    always pass (refresh with ``--update-baseline`` to ratchet the
    baseline down).
    """
    section = baseline.get("presets", {}).get(preset)
    if section is None:
        return [
            f"baseline has no {preset!r} preset section "
            f"(run `repro bench{' --quick' if preset == 'quick' else ''} "
            f"--update-baseline`)"
        ]
    entries: Mapping[str, Any] = section.get("benchmarks", {})
    violations: List[str] = []
    for result in results:
        entry = entries.get(result.name)
        if entry is None:
            violations.append(
                f"{result.name}: no baseline entry "
                f"(run `repro bench --update-baseline`)"
            )
            continue
        base_work = entry.get("work", {})
        if dict(base_work) != dict(result.work):
            changed = sorted(
                k for k in set(base_work) | set(result.work)
                if base_work.get(k) != result.work.get(k)
            )
            violations.append(
                f"{result.name}: work metadata diverged from baseline "
                f"(keys: {', '.join(changed)}); timings are incomparable"
            )
            continue
        limit = float(entry["wall_s"]) * float(entry.get("tolerance", 1.0))
        if result.wall_s > limit:
            violations.append(
                f"{result.name}: regression: {result.wall_s:.4f}s > "
                f"{float(entry['wall_s']):.4f}s x {float(entry.get('tolerance', 1.0)):g} "
                f"= {limit:.4f}s"
            )
    return violations


def gate_summary(
    violations: Sequence[str],
    baseline_path: Optional[Union[str, Path]] = None,
    checked: bool = True,
) -> Dict[str, Any]:
    """Ledger-ready summary of one gate outcome.

    The run-history ledger stores this next to each bench run so
    ``repro history`` and the HTML report can show the gate verdict
    without re-reading ``BENCH_<run>.json``.  ``checked=False`` records
    that the run skipped the gate (``passed`` is then ``None``, and
    :func:`repro.obs.history.trend.latest_gate` ignores the record).
    """
    return {
        "checked": bool(checked),
        "passed": (not violations) if checked else None,
        "violations": list(violations),
        "baseline": str(baseline_path) if baseline_path is not None else None,
    }


# -- rendering --------------------------------------------------------------


def render_bench_table(results: Sequence[BenchResult]) -> str:
    """Human-readable results table (what ``repro bench`` prints)."""
    lines = [
        f"{'benchmark':<26} {'group':<10} {'best_ms':>10} {'mean_ms':>10} "
        f"{'cpu_ms':>9} {'peak_kb':>9}  work",
        "-" * 100,
    ]
    for r in results:
        work = ", ".join(f"{k}={v}" for k, v in sorted(r.work.items()))
        lines.append(
            f"{r.name:<26} {r.group:<10} {r.wall_s * 1e3:>10.3f} "
            f"{r.wall_mean_s * 1e3:>10.3f} {r.cpu_s * 1e3:>9.3f} "
            f"{r.mem_peak_kb:>9.1f}  {work}"
        )
    return "\n".join(lines)
