"""The registered hot-path benchmarks (imported lazily by the harness).

One benchmark per pipeline hot path the profile analyzer keeps showing:
synthetic-trace generation, end-to-end detailed simulation, the
cache-hierarchy access loop inside it, regression-tree construction, AICc
center selection, centered-L2 discrepancy scoring, the observability
layer's own cross-process metrics merge, and the serving layer's batched
provenance prediction.  Every input is seeded, so each
benchmark's work metadata — counts and content hashes of what was
computed — is identical run to run; only the wall/CPU/memory measurements
vary.  That invariant is what makes ``BENCH_*.json`` files comparable
across commits and lets the regression gate flag *work* drift (a config
or algorithm change) separately from *speed* drift.

This module imports the simulator and modeling layers, which is why the
harness loads it lazily instead of at :mod:`repro.obs.prof` import time.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.prof.bench import benchmark, stable_hash

#: Root seed for every benchmark input; part of the work metadata.
BENCH_SEED = 20060101


@benchmark("trace/synthesize", group="workloads", tolerance=5.0)
def bench_trace_synthesis(ctx):
    """Synthetic-trace generation for one SPEC profile (statsim hot path)."""
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec2000 import get_profile

    length = ctx.scale(16384, 4096)
    profile = get_profile("mcf")

    def work():
        trace = generate_trace(profile, length, seed=BENCH_SEED)
        return {
            "benchmark": "mcf",
            "instructions": int(len(trace.op)),
            "op_hash": stable_hash(trace.op.tolist()),
            "addr_hash": stable_hash(trace.addr.tolist()),
        }

    return work


@benchmark("sim/end_to_end", group="simulator", repeats=3, tolerance=5.0)
def bench_simulator_cpi(ctx):
    """End-to-end OoO-core simulation: the pipeline's dominant cost."""
    from repro.simulator.config import ProcessorConfig
    from repro.simulator.simulator import Simulator
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec2000 import get_profile

    length = ctx.scale(8192, 2048)
    trace = generate_trace(get_profile("mcf"), length, seed=BENCH_SEED)
    config = ProcessorConfig()

    def work():
        result = Simulator(config).run(trace)
        return {
            "instructions": int(result.instructions),
            "cpi_hash": stable_hash(result.cpi),
        }

    return work


@benchmark("sim/attribution", group="simulator", repeats=3, tolerance=5.0)
def bench_attribution(ctx):
    """Attributed simulation: cycle accounting on top of the OoO core.

    Same workload as ``sim/end_to_end`` but with
    ``collect_attribution=True``, so the delta between the two targets
    bounds the overhead of per-instruction stall attribution.  The work
    metadata hashes both the CPI and the folded stack, pinning the
    attribution output itself, not just the timing result.
    """
    from repro.simulator.config import ProcessorConfig
    from repro.simulator.simulator import Simulator
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec2000 import get_profile

    length = ctx.scale(8192, 2048)
    trace = generate_trace(get_profile("mcf"), length, seed=BENCH_SEED)
    config = ProcessorConfig()

    def work():
        sim = Simulator(config)
        result = sim.run(trace, collect_attribution=True)
        stack = sim.last_core.attribution.stack()
        return {
            "instructions": int(result.instructions),
            "cpi_hash": stable_hash(result.cpi),
            "stack_hash": stable_hash(
                sorted(stack.components.items())),
        }

    return work


@benchmark("sim/cache_hierarchy", group="simulator", tolerance=5.0)
def bench_cache_hierarchy(ctx):
    """Raw load-path traversal of the two-level cache hierarchy."""
    from repro.simulator.config import ProcessorConfig
    from repro.simulator.hierarchy import MemoryHierarchy

    accesses = ctx.scale(8000, 2000)
    rng = np.random.default_rng(BENCH_SEED)
    # A mix of a hot working set and a cold streaming tail, so the loop
    # exercises hits, misses and fills rather than a single steady state.
    hot = rng.integers(0, 1 << 16, size=accesses) << 6
    cold = (rng.integers(0, 1 << 24, size=accesses) << 6) | (1 << 33)
    pick_cold = rng.random(accesses) < 0.2
    addrs = np.where(pick_cold, cold, hot)
    times = np.arange(accesses, dtype=float)

    def work():
        hierarchy = MemoryHierarchy(ProcessorConfig())
        # Batched load path; the left-to-right Python sum reproduces the
        # old scalar accumulation bitwise, so latency_hash is unchanged.
        latencies = hierarchy.load_batch(addrs, times)
        total = sum(latencies.tolist())
        return {
            "accesses": int(accesses),
            "latency_hash": stable_hash(total),
        }

    return work


@benchmark("model/tree_build", group="models", tolerance=5.0)
def bench_tree_construction(ctx):
    """Regression-tree construction over a seeded design-space sample."""
    from repro.models.tree import RegressionTree

    p = ctx.scale(320, 96)
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.random((p, 9))
    responses = np.sin(points @ np.arange(1.0, 10.0)) + 0.1 * rng.random(p)

    def work():
        tree = RegressionTree(points, responses, p_min=1)
        nodes = tree.nodes_breadth_first()
        return {
            "points": int(p),
            "nodes": len(nodes),
            "leaves": sum(1 for n in nodes if n.is_leaf),
            "depth": int(tree.depth),
        }

    return work


@benchmark("model/aicc_select", group="models", repeats=3, tolerance=5.0)
def bench_aicc_selection(ctx):
    """AICc subset selection of RBF centers from one regression tree."""
    from repro.models.rbf import build_rbf_from_tree

    p = ctx.scale(160, 64)
    rng = np.random.default_rng(BENCH_SEED)
    points = rng.random((p, 9))
    responses = np.cos(points @ np.arange(1.0, 10.0)) + 0.05 * rng.random(p)

    def work():
        _, info = build_rbf_from_tree(points, responses, p_min=2, alpha=6.0)
        return {
            "points": int(p),
            "candidates": int(info.num_candidates),
            "centers": int(info.num_centers),
            "criterion_hash": stable_hash(round(info.criterion_value, 6)),
        }

    return work


@benchmark("sampling/centered_l2", group="sampling", tolerance=5.0)
def bench_centered_l2(ctx):
    """Centered-L2 discrepancy of an LHS sample (the sample-search inner loop)."""
    from repro.core.design_space import paper_design_space
    from repro.sampling.discrepancy import centered_l2_discrepancy
    from repro.sampling.lhs import latin_hypercube

    p = ctx.scale(256, 64)
    rng = np.random.default_rng(BENCH_SEED)
    space = paper_design_space()
    sample = latin_hypercube(space, p, rng)

    def work():
        value = centered_l2_discrepancy(sample)
        return {
            "points": int(sample.shape[0]),
            "dims": int(sample.shape[1]),
            "value_hash": stable_hash(round(value, 12)),
        }

    return work


@benchmark("serve/predict_batch", group="serve", repeats=3, tolerance=5.0)
def bench_serve_predict_batch(ctx):
    """Batched provenance prediction: the ``/predict`` endpoint hot path.

    One fitted, calibrated RBF answering a large batch through
    ``predict_with_provenance`` — a single design-matrix pass plus the
    uncertainty band and hull flags per point.  The value hash pins the
    vectorised path's bitwise contract (identical to sequential
    single-point ``predict`` calls); a regression here is exactly a
    serving-latency regression.
    """
    from repro.models.rbf import build_rbf_from_tree

    n_batch = ctx.scale(10000, 2000)
    rng = np.random.default_rng(BENCH_SEED)
    x = rng.random((96, 9))
    y = np.sin(x @ np.arange(1.0, 10.0)) + 0.05 * rng.random(96)
    model, _ = build_rbf_from_tree(x, y, p_min=2, alpha=6.0)
    model.calibrate(x, y)
    batch = rng.random((n_batch, 9))

    def work():
        prov = model.predict_with_provenance(batch)
        return {
            "points": int(n_batch),
            "centers": int(model.num_centers),
            "values_hash": stable_hash(prov.values.tolist()),
            "extrapolated": int(prov.extrapolated.sum()),
        }

    return work


@benchmark("obs/metrics_merge", group="obs", tolerance=5.0)
def bench_metrics_merge(ctx):
    """Cross-process metrics-snapshot merge (the worker-funnel hot loop)."""
    snapshots_count = ctx.scale(400, 100)
    rng = np.random.default_rng(BENCH_SEED)
    snapshots = []
    for i in range(snapshots_count):
        reg = MetricsRegistry()
        reg.inc("sims", int(i % 7))
        reg.set_gauge("depth", float(i % 5))
        for v in rng.random(8):
            reg.observe("lat", float(v))
        snapshots.append(reg.snapshot())

    def work():
        parent = MetricsRegistry()
        for snap in snapshots:
            parent.merge(snap)
        lat = parent.histogram("lat")
        return {
            "snapshots": int(snapshots_count),
            "observations": int(lat.count),
            "sum_hash": stable_hash(round(lat.total, 9)),
        }

    return work
