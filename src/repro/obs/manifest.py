"""Run manifests: the provenance record written next to every result.

A manifest answers "which seed, which design space, which code, at what
cost produced this result?" — the questions the paper's
simulation-vs-accuracy tradeoff turns on, and the ones an ad-hoc results
directory cannot answer six months later.  ``repro build``,
``repro simulate`` and every rendered exhibit write one.

Contents (schema version 1): the command and argv, wall-clock start time,
seed, a stable hash of the design space actually sampled, the overrides
in effect, the git commit of the working tree (when available), the
installed package version, Python/numpy/platform identification
(``python_version`` and ``numpy_version`` — numeric artifacts are only
bitwise-comparable within one numpy/BLAS stack), wall and CPU time, and
the run's metric totals.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

#: Manifest schema version.
MANIFEST_SCHEMA_VERSION = 1


def package_version() -> str:
    """The installed ``repro`` version from package metadata.

    Falls back to ``repro.__version__`` (the same string ``pyproject.toml``
    declares) when the package is run from a source tree without being
    installed.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # Python < 3.8; not supported, but fail soft
        from repro import __version__
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        from repro import __version__
        return __version__


def numpy_version() -> Optional[str]:
    """The installed numpy version, or ``None`` when numpy is absent.

    Model artifacts are numeric: a bitwise-reproducibility claim is only
    meaningful together with the numpy/BLAS stack that produced the
    numbers, so manifests record it explicitly.
    """
    try:
        import numpy
    except ImportError:  # the library degrades, the manifest records it
        return None
    return numpy.__version__


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def design_space_hash(space: Any) -> Optional[str]:
    """Short stable hash of a design space's parameter definitions.

    Works on anything exposing ``parameters`` with the
    :class:`repro.core.design_space.Parameter` fields; two spaces hash
    equal iff they sample the same parameters over the same ranges with
    the same transforms.  Returns ``None`` for unrecognised objects.
    """
    parameters = getattr(space, "parameters", None)
    if parameters is None:
        return None
    digest = sha256()
    digest.update(str(getattr(space, "name", "")).encode())
    for p in parameters:
        fields = (
            getattr(p, "name", ""), getattr(p, "low", ""),
            getattr(p, "high", ""), getattr(p, "levels", ""),
            getattr(p, "transform", ""), getattr(p, "integer", ""),
            getattr(p, "fraction_of", ""),
        )
        digest.update(repr(fields).encode())
    return digest.hexdigest()[:16]


def cache_hit_rate(metrics: Optional[Mapping[str, Any]]) -> Optional[float]:
    """Cache hit fraction from a metrics snapshot, or ``None``.

    ``cache_hits / (cache_hits + simulations_run)`` over the snapshot's
    counters — the number that lets a history trend separate "the code got
    slower" from "this run paid for more simulations".  Returns ``None``
    when the snapshot records no lookups at all.
    """
    counters = dict(metrics or {}).get("counters") or {}
    hits = float(counters.get("cache_hits", 0.0))
    sims = float(counters.get("simulations_run", 0.0))
    lookups = hits + sims
    if lookups <= 0:
        return None
    return round(hits / lookups, 6)


def build_manifest(
    command: str,
    seed: Optional[int] = None,
    design_space: Any = None,
    overrides: Optional[Mapping[str, Any]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    wall_time_s: Optional[float] = None,
    cpu_time_s: Optional[float] = None,
    jobs: Optional[int] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict for one run.

    Parameters
    ----------
    command:
        What ran, e.g. ``"build"`` or ``"exhibit:fig4_error_vs_sample_size"``.
    seed:
        The run's root seed (``None`` when not applicable).
    design_space:
        The sampled design space; hashed via :func:`design_space_hash`.
    overrides:
        Parameter overrides / run knobs in effect.
    metrics:
        A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the run's
        metric totals.  Also feeds the derived ``cache_hit_rate`` field.
    wall_time_s, cpu_time_s:
        Measured run cost.  ``cpu_time_s`` defaults to the process's
        cumulative CPU time (:func:`time.process_time`).
    jobs:
        Worker-process count in effect for the run (``None`` when not
        applicable), so cross-run comparisons can normalise for fan-out.
    extra:
        Additional command-specific fields, merged at the top level.
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "argv": list(sys.argv),
        "started": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "seed": seed,
        "design_space_hash": design_space_hash(design_space),
        "overrides": dict(overrides) if overrides else {},
        "git_sha": git_sha(),
        "version": package_version(),
        "python": platform.python_version(),
        "python_version": platform.python_version(),
        "numpy_version": numpy_version(),
        "platform": platform.platform(),
        "hostname": platform.node(),
        "pid": os.getpid(),
        "wall_time_s": wall_time_s,
        "cpu_time_s": cpu_time_s if cpu_time_s is not None else time.process_time(),
        "jobs": jobs,
        "cache_hit_rate": cache_hit_rate(metrics),
        "metrics": dict(metrics) if metrics else {},
    }
    if extra:
        manifest.update(extra)
    return manifest


def snapshot_manifest(
    base: Mapping[str, Any],
    metrics: Optional[Mapping[str, Any]] = None,
    wall_time_s: Optional[float] = None,
    cpu_time_s: Optional[float] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Refresh a manifest's cost and metric fields mid-process.

    :func:`build_manifest` assumes a run that ends: wall/CPU time and
    metric totals are measured once, at exit.  A serving process never
    exits, so its manifest must be *snapshottable*: this returns a new
    manifest with the same identity fields (command, argv, start time,
    seed, git SHA, versions, …) as ``base`` but current cost and metric
    totals.  The operation is idempotent and monotone — snapshotting a
    snapshot yields the same schema and key set, and ``wall_time_s`` /
    ``cpu_time_s`` never decrease (``cpu_time_s`` defaults to the
    process's cumulative CPU time, which only grows; a ``None`` or
    smaller ``wall_time_s`` keeps the previous reading).

    ``base`` is never mutated; ledger records built from successive
    snapshots of one session stay schema-identical.
    """
    manifest: Dict[str, Any] = dict(base)
    if cpu_time_s is None:
        cpu_time_s = time.process_time()
    previous_cpu = manifest.get("cpu_time_s")
    if previous_cpu is not None:
        cpu_time_s = max(float(previous_cpu), float(cpu_time_s))
    manifest["cpu_time_s"] = cpu_time_s
    previous_wall = manifest.get("wall_time_s")
    if wall_time_s is not None:
        if previous_wall is not None:
            wall_time_s = max(float(previous_wall), float(wall_time_s))
        manifest["wall_time_s"] = wall_time_s
    if metrics is not None:
        manifest["metrics"] = dict(metrics)
        manifest["cache_hit_rate"] = cache_hit_rate(metrics)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Union[str, Path], manifest: Mapping[str, Any]) -> Path:
    """Write ``manifest`` as pretty-printed JSON at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest back (convenience for tests and tooling)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
