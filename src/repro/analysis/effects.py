"""Parameter-significance estimation from a fitted model.

One of the paper's motivations for cheap surrogate models is recovering
insights — "the significance of individual parameters and their
interactions" — without further simulation.  This module estimates main
effects by averaging the model over the design space (a grid-sampled
functional ANOVA-style decomposition) and ranks parameters by the response
range their variation induces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.design_space import DesignSpace
from repro.models.base import Model
from repro.util.rng import make_rng


@dataclass(frozen=True)
class MainEffect:
    """Averaged response of one parameter across the design space."""

    parameter: str
    levels: List[float]  # unit-cube settings evaluated
    response: List[float]  # mean model response at each setting
    magnitude: float  # max - min of the averaged response

    def physical_levels(self, space: DesignSpace) -> List[float]:
        param = space[self.parameter]
        return [float(param.from_unit(u)) for u in self.levels]


def main_effects(
    model: Model,
    space: DesignSpace,
    num_levels: int = 7,
    background: int = 256,
    seed: int = 0,
) -> Dict[str, MainEffect]:
    """Main effect of every parameter, marginalised over the others.

    For each parameter, the model is evaluated on ``background`` random
    points with that parameter pinned at each of ``num_levels`` settings;
    the mean response per setting is the main-effect curve.
    """
    if num_levels < 2:
        raise ValueError("need at least 2 levels")
    rng = make_rng(seed, "main-effects", space.name)
    base = rng.random((background, space.dimension))
    settings = np.linspace(0.0, 1.0, num_levels)
    effects: Dict[str, MainEffect] = {}
    for k, param in enumerate(space.parameters):
        means = []
        for u in settings:
            pts = base.copy()
            pts[:, k] = u
            means.append(float(model.predict(pts).mean()))
        effects[param.name] = MainEffect(
            parameter=param.name,
            levels=list(settings),
            response=means,
            magnitude=float(max(means) - min(means)),
        )
    return effects


def rank_parameters(
    model: Model,
    space: DesignSpace,
    num_levels: int = 7,
    background: int = 256,
    seed: int = 0,
    effects: Optional[Dict[str, MainEffect]] = None,
) -> List[MainEffect]:
    """Parameters sorted by main-effect magnitude, largest first."""
    if effects is None:
        effects = main_effects(model, space, num_levels, background, seed)
    return sorted(effects.values(), key=lambda e: -e.magnitude)
