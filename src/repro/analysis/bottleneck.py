"""CPI-stack (bottleneck) analysis by counterfactual simulation.

One of the drawbacks the paper attributes to ad-hoc design-space
exploration is the *"lack of insights on issues such as the nature of
performance bottlenecks"*.  This module derives a CPI breakdown directly
from the simulator by differencing against idealised machines:

* **branch** component: CPI minus the CPI with an oracle front end
  (``perfect_branch_prediction``);
* **data memory** component: CPI minus the CPI with a perfect D-cache;
* **instruction memory** component: CPI minus the CPI with a perfect L1I;
* **base** component: the CPI of the machine with all three idealised —
  issue width, dependences and functional units only.

Because stall sources overlap in an out-of-order machine, the components
do not sum exactly to the total; the residual is reported as *overlap*
(positive when mechanisms hide each other's latency), which is itself an
interesting diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator
from repro.simulator.trace import Trace


@dataclass(frozen=True)
class CPIStack:
    """CPI decomposition for one (configuration, trace) pair."""

    total: float
    base: float  # ideal-machine CPI (width/ILP/FU limits only)
    branch: float  # removed by oracle branch prediction
    data_memory: float  # removed by a perfect D-cache
    instruction_memory: float  # removed by a perfect L1I

    @property
    def overlap(self) -> float:
        """total - (base + components): negative when stalls overlap."""
        return self.total - (
            self.base + self.branch + self.data_memory + self.instruction_memory
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": self.total,
            "base": self.base,
            "branch": self.branch,
            "data_memory": self.data_memory,
            "instruction_memory": self.instruction_memory,
            "overlap": self.overlap,
        }

    def dominant_component(self) -> str:
        """The largest stall component (excluding base)."""
        parts = {
            "branch": self.branch,
            "data_memory": self.data_memory,
            "instruction_memory": self.instruction_memory,
        }
        return max(parts, key=parts.get)


def cpi_stack(config: ProcessorConfig, trace: Trace) -> CPIStack:
    """Compute a CPI stack via four counterfactual simulations.

    The idealisation switches on :class:`ProcessorConfig` must all be off
    in ``config`` (they are overridden here).
    """
    if (config.perfect_branch_prediction or config.perfect_dcache
            or config.perfect_icache):
        raise ValueError("pass the real configuration; idealisation is internal")

    def cpi(**flags) -> float:
        return Simulator(replace(config, **flags)).run(trace).cpi

    total = cpi()
    branch = total - cpi(perfect_branch_prediction=True)
    data = total - cpi(perfect_dcache=True)
    instr = total - cpi(perfect_icache=True)
    base = cpi(
        perfect_branch_prediction=True,
        perfect_dcache=True,
        perfect_icache=True,
    )
    return CPIStack(
        total=total,
        base=base,
        branch=max(0.0, branch),
        data_memory=max(0.0, data),
        instruction_memory=max(0.0, instr),
    )


def render_stack(stack: CPIStack) -> str:
    """One-line-per-component text rendering with proportional bars."""
    lines = [f"total CPI {stack.total:.3f}"]
    for name, value in (
        ("base", stack.base),
        ("branch", stack.branch),
        ("data memory", stack.data_memory),
        ("instr memory", stack.instruction_memory),
        ("overlap", stack.overlap),
    ):
        width = int(round(abs(value) / stack.total * 50)) if stack.total else 0
        sign = "-" if value < 0 else ""
        lines.append(f"  {name:13s} {value:+7.3f} {sign}{'#' * width}")
    return "\n".join(lines)
