"""Regression-tree split analysis (paper Table 5 and Figure 5).

The order in which the regression tree bifurcates the design space exposes
which parameters drive a program's performance: *"the parameters which
cause the most output variation tend to be split earliest and most
often"*.  Table 5 reports the earliest splits for mcf and vortex; Figure 5
histograms the parameter values at which mcf's tree splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.design_space import DesignSpace
from repro.models.tree import RegressionTree


@dataclass(frozen=True)
class SignificantSplit:
    """One reported tree split, in physical units."""

    rank: int  # 1-based position in breadth-first (earliest-first) order
    parameter: str
    value: float  # physical split boundary
    depth: int
    is_fraction: bool  # True for the IQ/LSQ fraction-of-ROB parameters

    def value_label(self) -> str:
        """Table 5 style rendering (fractions shown as ``0.34*``)."""
        if self.is_fraction:
            return f"{self.value:.2f}*"
        if self.value >= 1024 and not self.is_fraction:
            return f"{self.value / 1024:.2f}MB"
        return f"{self.value:.1f}"


def _split_value_physical(space: DesignSpace, dimension: int, unit_value: float) -> float:
    """Decode a unit-cube split boundary to physical units (no snapping).

    Split boundaries fall between parameter levels, so they must not be
    snapped onto the level grid (the paper reports e.g. ``370KB`` and
    ``11.5`` — off-grid values).
    """
    param = space.parameters[dimension]
    return float(param._t_inv(
        param._t(param.low) + unit_value * (param._t(param.high) - param._t(param.low))
    ))


def significant_splits(
    tree: RegressionTree, space: DesignSpace, count: int = 8
) -> List[SignificantSplit]:
    """The earliest ``count`` splits of ``tree``, in physical units."""
    out = []
    for rank, split in enumerate(tree.splits()[:count], start=1):
        param = space.parameters[split.dimension]
        out.append(
            SignificantSplit(
                rank=rank,
                parameter=param.name,
                value=_split_value_physical(space, split.dimension, split.value),
                depth=split.depth,
                is_fraction=param.fraction_of is not None,
            )
        )
    return out


def split_value_distribution(
    tree: RegressionTree, space: DesignSpace
) -> Dict[str, List[float]]:
    """All split boundary values per parameter, in physical units (Fig. 5).

    Parameters that never split are present with empty lists, so the
    distribution also shows which parameters the tree considers
    insignificant.
    """
    values: Dict[str, List[float]] = {p.name: [] for p in space.parameters}
    for split in tree.splits():
        param = space.parameters[split.dimension]
        values[param.name].append(
            _split_value_physical(space, split.dimension, split.value)
        )
    return values
