"""Variance-based sensitivity analysis (Sobol indices) on fitted models.

The paper argues that interactions between microarchitectural parameters
are significant (contra Plackett-Burman screening, which assumes they are
negligible).  This module quantifies that claim from a fitted model: the
first-order Sobol index of a parameter measures the output variance its
main effect explains, the total index adds every interaction it takes part
in, and the gap between the two *is* the interaction strength.

Estimation uses the Saltelli (2002) pick-and-freeze scheme on model
evaluations only — thousands of evaluations cost nothing once the model
exists, which is exactly the paper's economy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.design_space import DesignSpace
from repro.models.base import Model
from repro.util.rng import make_rng


@dataclass(frozen=True)
class SobolIndices:
    """First-order and total sensitivity of one parameter."""

    parameter: str
    first_order: float
    total: float

    @property
    def interaction(self) -> float:
        """Variance share from interactions involving this parameter."""
        return max(0.0, self.total - self.first_order)


def sobol_indices(
    model: Model,
    space: DesignSpace,
    samples: int = 2048,
    seed: int = 0,
) -> Dict[str, SobolIndices]:
    """Estimate Sobol indices of every parameter via pick-and-freeze.

    Uses the Saltelli estimators: with base matrices ``A`` and ``B`` and
    hybrids ``AB_k`` (``A`` with column ``k`` from ``B``),

    .. math::

        S_k = \\frac{\\mathrm{mean}(f(B) (f(AB_k) - f(A)))}{V},
        \\qquad
        ST_k = \\frac{\\tfrac12 \\mathrm{mean}((f(A) - f(AB_k))^2)}{V}

    Estimates are clipped into [0, 1] (sampling noise can push raw values
    slightly outside).
    """
    if samples < 16:
        raise ValueError("samples must be >= 16")
    rng = make_rng(seed, "sobol", space.name, samples)
    n = space.dimension
    a = rng.random((samples, n))
    b = rng.random((samples, n))
    f_a = model.predict(a)
    f_b = model.predict(b)
    all_f = np.concatenate([f_a, f_b])
    variance = float(all_f.var())
    if variance <= 0:
        raise ValueError("model is constant over the space; indices undefined")

    out: Dict[str, SobolIndices] = {}
    for k, param in enumerate(space.parameters):
        ab = a.copy()
        ab[:, k] = b[:, k]
        f_ab = model.predict(ab)
        first = float(np.mean(f_b * (f_ab - f_a)) / variance)
        total = float(0.5 * np.mean((f_a - f_ab) ** 2) / variance)
        out[param.name] = SobolIndices(
            parameter=param.name,
            first_order=float(np.clip(first, 0.0, 1.0)),
            total=float(np.clip(total, 0.0, 1.0)),
        )
    return out


def interaction_share(indices: Dict[str, SobolIndices]) -> float:
    """Overall interaction strength: ``1 - sum of first-order indices``.

    Zero for a purely additive response; the paper's argument against
    screening designs is that this is substantially positive for processor
    performance.
    """
    return max(0.0, 1.0 - sum(ix.first_order for ix in indices.values()))


def rank_by_total(indices: Dict[str, SobolIndices]) -> List[SobolIndices]:
    """Parameters sorted by total sensitivity, largest first."""
    return sorted(indices.values(), key=lambda ix: -ix.total)
