"""Model-based analyses: trends, tree splits, parameter effects, search."""

from repro.analysis.anova import interaction_share, rank_by_total, sobol_indices
from repro.analysis.effects import main_effects, rank_parameters
from repro.analysis.optimize import optimize_design
from repro.analysis.splits import significant_splits, split_value_distribution
from repro.analysis.trends import interaction_grid, trend_comparison

__all__ = [
    "interaction_share",
    "rank_by_total",
    "sobol_indices",
    "main_effects",
    "rank_parameters",
    "optimize_design",
    "significant_splits",
    "split_value_distribution",
    "interaction_grid",
    "trend_comparison",
]
