"""Multi-metric Pareto analysis over fitted models.

The paper's conclusion points at multi-metric modeling ("other metrics
such as power consumption"); once a CPI model and a power model exist,
the interesting design questions are trade-offs.  These utilities compute
non-dominated fronts and simple scalarisations (energy-delay style
products) over model-scored candidate populations — thousands of
evaluations, zero simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.design_space import DesignSpace
from repro.models.base import Model
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design point with its metric values."""

    point: Dict[str, float]  # physical parameter values
    metrics: Dict[str, float]


def pareto_front(values: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of ``values`` (all minimised).

    O(n^2) dominance check — fine for the few thousand candidates model
    scoring produces.  Rows are returned sorted by the first metric.
    """
    values = np.atleast_2d(np.asarray(values, dtype=float))
    n = len(values)
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        dominated = np.all(values <= values[i], axis=1) & np.any(
            values < values[i], axis=1
        )
        if dominated.any():
            keep[i] = False
    idx = np.nonzero(keep)[0]
    return idx[np.argsort(values[idx, 0])]


def model_pareto(
    models: Dict[str, Model],
    space: DesignSpace,
    candidates: int = 2048,
    seed: int = 0,
) -> List[ParetoPoint]:
    """Non-dominated front of model-predicted metrics (all minimised).

    ``models`` maps metric names to fitted models sharing the space's
    unit-cube encoding.
    """
    if not models:
        raise ValueError("need at least one model")
    rng = make_rng(seed, "pareto", space.name, candidates)
    unit = space.random_unit_points(candidates, rng)
    names = list(models)
    columns = np.column_stack([models[name].predict(unit) for name in names])
    front = pareto_front(columns)
    out = []
    for idx in front:
        phys = space.decode(unit[idx][None, :])[0]
        out.append(
            ParetoPoint(
                point=space.as_dict(phys),
                metrics={name: float(columns[idx, k]) for k, name in enumerate(names)},
            )
        )
    return out


def scalarize(
    front: Sequence[ParetoPoint], weights: Dict[str, float]
) -> ParetoPoint:
    """Pick the front point minimising a weighted product of metrics.

    With ``weights = {"cpi": 2, "power": 1}`` this is the energy-delay-
    squared style figure of merit (metrics raised to their weights and
    multiplied).
    """
    if not front:
        raise ValueError("empty front")

    def merit(p: ParetoPoint) -> float:
        value = 1.0
        for name, w in weights.items():
            value *= p.metrics[name] ** w
        return value

    return min(front, key=merit)
