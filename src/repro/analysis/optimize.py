"""Model-guided design-space search.

The paper's closing claim is that the models are *"accurate enough to be
potentially used by processor architects to systematically explore the
design space for optimal design points"*.  This module does exactly that:
score a large number of candidate configurations with the (cheap) model,
locally refine the best ones, and return the winners — thousands of model
evaluations for the cost of zero additional simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.design_space import DesignSpace
from repro.models.base import Model
from repro.util.rng import make_rng

#: Optional feasibility predicate over physical design-point dictionaries
#: (e.g. a power or area budget).
Constraint = Callable[[Dict[str, float]], bool]


@dataclass(frozen=True)
class Candidate:
    """One scored design point."""

    point: Dict[str, float]  # physical values
    predicted: float


def optimize_design(
    model: Model,
    space: DesignSpace,
    minimize: bool = True,
    candidates: int = 4096,
    refine_top: int = 16,
    refine_steps: int = 64,
    seed: int = 0,
    constraint: Optional[Constraint] = None,
) -> List[Candidate]:
    """Search the space for extreme model responses.

    A random global scan is followed by coordinate-jitter refinement of the
    ``refine_top`` best candidates.  Returns the refined candidates sorted
    best-first (ascending predicted response when minimising).

    Note the result optimises the *model*; the intended workflow is to
    verify the few winners with detailed simulation, which is still orders
    of magnitude cheaper than simulating the whole space.
    """
    if candidates < 1:
        raise ValueError("need at least one candidate")
    rng = make_rng(seed, "optimize", space.name)
    sign = 1.0 if minimize else -1.0

    def feasible_mask(unit_pts: np.ndarray) -> np.ndarray:
        if constraint is None:
            return np.ones(len(unit_pts), dtype=bool)
        phys = space.decode(unit_pts)
        return np.array(
            [constraint(space.as_dict(row)) for row in phys], dtype=bool
        )

    unit = space.random_unit_points(candidates, rng)
    mask = feasible_mask(unit)
    if not mask.any():
        raise ValueError("constraint rejected every candidate")
    unit = unit[mask]
    scores = sign * model.predict(unit)
    order = np.argsort(scores)
    top = unit[order[:refine_top]].copy()

    # Coordinate-jitter refinement with a shrinking neighbourhood.
    for step in range(refine_steps):
        radius = 0.25 * (1.0 - step / refine_steps) + 0.01
        jitter = rng.normal(scale=radius, size=top.shape)
        trial = np.clip(top + jitter, 0.0, 1.0)
        t_mask = feasible_mask(trial)
        old = sign * model.predict(top)
        new = sign * model.predict(trial)
        better = (new < old) & t_mask
        top[better] = trial[better]

    final_scores = sign * model.predict(top)
    order = np.argsort(final_scores)
    results = []
    for idx in order:
        phys = space.decode(top[idx][None, :])[0]
        results.append(
            Candidate(
                point=space.as_dict(phys),
                predicted=float(model.predict(top[idx][None, :])[0]),
            )
        )
    return results
