"""Two-factor interaction trends: model predictions vs detailed simulation.

The paper's Sec. 4.1 checks that the RBF models capture *trends*, not just
point predictions: for a chosen pair of parameters it sweeps a grid (all
other parameters fixed), simulates the true CPI, and overlays the model's
prediction (Figure 6: instruction-cache size x L2 latency for vortex).
Figure 1 uses the same grid machinery with the simulator alone to motivate
non-linear modeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.design_space import DesignSpace
from repro.models.base import Model


@dataclass
class TrendGrid:
    """CPI over a 2-parameter grid, simulated and (optionally) predicted."""

    param_x: str
    param_y: str
    x_values: List[float]
    y_values: List[float]
    simulated: np.ndarray  # (len(y), len(x))
    predicted: Optional[np.ndarray] = None

    def max_trend_error(self) -> float:
        """Largest |predicted - simulated| / simulated over the grid (%)."""
        if self.predicted is None:
            raise ValueError("grid has no predictions")
        return float(
            (np.abs(self.predicted - self.simulated) / self.simulated).max() * 100.0
        )

    def monotonic_agreement(self) -> float:
        """Fraction of grid steps where prediction moves like simulation.

        Steps along both axes are counted; near-flat simulated steps
        (< 0.5% relative change) count as agreement.
        """
        if self.predicted is None:
            raise ValueError("grid has no predictions")
        agree = 0
        total = 0
        for axis in (0, 1):
            ds = np.diff(self.simulated, axis=axis)
            dp = np.diff(self.predicted, axis=axis)
            base = np.minimum(
                self.simulated.take(range(ds.shape[axis]), axis=axis), 1e9
            )
            flat = np.abs(ds) < 0.005 * base
            agree += int(np.sum((np.sign(ds) == np.sign(dp)) | flat))
            total += ds.size
        return agree / total if total else 1.0

    def rows(self):
        """Iterate (y_value, x_value, simulated, predicted) rows for tables."""
        for iy, yv in enumerate(self.y_values):
            for ix, xv in enumerate(self.x_values):
                pred = self.predicted[iy, ix] if self.predicted is not None else None
                yield (yv, xv, float(self.simulated[iy, ix]), pred)


def interaction_grid(
    space: DesignSpace,
    response_fn: Callable[[np.ndarray], np.ndarray],
    base_point: Dict[str, float],
    param_x: str,
    x_values: Sequence[float],
    param_y: str,
    y_values: Sequence[float],
    model: Optional[Model] = None,
) -> TrendGrid:
    """Simulate (and optionally predict) CPI over a 2-parameter grid.

    ``response_fn`` maps physical ``(m, n)`` points to CPIs (typically
    :meth:`repro.experiments.runner.SimulationRunner.cpi`); all parameters
    other than ``param_x`` / ``param_y`` are held at ``base_point``.
    """
    points = []
    for yv in y_values:
        for xv in x_values:
            point = dict(base_point)
            point[param_x] = xv
            point[param_y] = yv
            points.append([point[name] for name in space.names])
    phys = np.array(points, dtype=float)
    simulated = np.asarray(response_fn(phys), dtype=float).reshape(
        len(y_values), len(x_values)
    )
    predicted = None
    if model is not None:
        predicted = model.predict(space.encode(phys)).reshape(
            len(y_values), len(x_values)
        )
    return TrendGrid(
        param_x=param_x,
        param_y=param_y,
        x_values=list(x_values),
        y_values=list(y_values),
        simulated=simulated,
        predicted=predicted,
    )


def trend_comparison(grid: TrendGrid) -> str:
    """Plain-text rendering of simulated vs predicted series (Fig. 6 style)."""
    lines = [
        f"CPI vs {grid.param_x} for each {grid.param_y} "
        "(sim = simulated, prd = model prediction)"
    ]
    header = f"{grid.param_y:>12} | " + " ".join(f"{v:>12.5g}" for v in grid.x_values)
    lines.append(header)
    for iy, yv in enumerate(grid.y_values):
        sim = " ".join(f"{v:>12.3f}" for v in grid.simulated[iy])
        lines.append(f"{yv:>8.5g} sim | {sim}")
        if grid.predicted is not None:
            prd = " ".join(f"{v:>12.3f}" for v in grid.predicted[iy])
            lines.append(f"{'':>8} prd | {prd}")
    return "\n".join(lines)
