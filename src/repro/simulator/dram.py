"""DRAM device timing: banks, row buffers and bank busy time.

Models the memory device behind the L2: a fixed number of banks, each with
an open-row buffer.  A request to a bank whose row buffer holds the target
row completes in the row-hit latency; otherwise it pays the full
activate+access latency.  A bank can serve one request at a time, so
back-to-back requests to the same bank queue behind each other — this is
what makes memory-bound configurations feel pressure beyond raw latency.
"""

from __future__ import annotations

#: Bytes covered by one DRAM row (per bank).
ROW_SIZE = 4096


class DRAM:
    """Banked DRAM device with open-row policy.

    Parameters
    ----------
    num_banks:
        Number of independent banks (power of two preferred).
    access_lat:
        Row-miss (activate + column access) latency in CPU cycles.
    row_hit_lat:
        Row-hit (column access only) latency in CPU cycles.
    """

    __slots__ = ("num_banks", "access_lat", "row_hit_lat", "_bank_free", "_open_row",
                 "accesses", "row_hits")

    def __init__(self, num_banks: int = 8, access_lat: int = 120, row_hit_lat: int = 60):
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if row_hit_lat > access_lat:
            raise ValueError("row-hit latency cannot exceed row-miss latency")
        self.num_banks = num_banks
        self.access_lat = access_lat
        self.row_hit_lat = row_hit_lat
        self._bank_free = [0.0] * num_banks
        self._open_row = [-1] * num_banks
        self.accesses = 0
        self.row_hits = 0

    def access(self, addr: int, time: float) -> float:
        """Issue a request at ``time``; returns its completion time."""
        row = addr // ROW_SIZE
        bank = row % self.num_banks
        start = max(time, self._bank_free[bank])
        if self._open_row[bank] == row:
            lat = self.row_hit_lat
            self.row_hits += 1
        else:
            lat = self.access_lat
            self._open_row[bank] = row
        done = start + lat
        self._bank_free[bank] = done
        self.accesses += 1
        return done

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return f"DRAM({self.num_banks} banks, {self.access_lat}/{self.row_hit_lat} cyc)"
