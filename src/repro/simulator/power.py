"""Activity-based energy/power proxy (the paper's future-work extension).

The paper's conclusion notes that *"similar models can be developed for
other metrics such as power consumption"*.  To exercise that extension, the
simulator reports an energy metric built the standard activity-count way
(Wattch-style at a coarse grain): each microarchitectural event carries a
fixed energy cost, structure-dependent costs scale with structure size
(wider ROBs and larger caches cost more per access), and static leakage
accrues per cycle in proportion to total structure capacity.

The absolute numbers are arbitrary units; what matters for the modeling
study is that the power response varies smoothly and non-linearly over the
design space, with different trade-offs than CPI (bigger caches *reduce*
CPI but *increase* leakage).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.simulator.config import ProcessorConfig

# Per-event energy costs (arbitrary units).
_E_DECODE = 1.0  # per instruction through the front end
_E_WINDOW = 0.5  # per instruction window insertion/wakeup, scaled by sizes
_E_CACHE_ACCESS = 1.0  # scaled by log2(size)
_E_MEMORY = 40.0  # per off-chip request
_E_BRANCH = 0.4  # per predicted branch
_LEAKAGE = 0.02  # per KB-equivalent of structure capacity per cycle


def structure_capacity_kb(config: ProcessorConfig) -> float:
    """Total capacity of the sized structures, in KB-equivalents."""
    queue_kb = (config.rob_size + config.iq_size + config.lsq_size) * 16 / 1024.0
    return (
        config.il1_size_kb
        + config.dl1_size_kb
        + config.l2_size_kb / 8.0  # L2 is denser and clocked slower
        + queue_kb * 8.0  # CAM-heavy queues burn disproportionate leakage
    )


def estimate_energy(
    config: ProcessorConfig,
    instructions: int,
    cycles: float,
    hierarchy_stats: Dict[str, float],
    branches: int,
) -> float:
    """Total energy (arbitrary units) for one simulation run."""
    if instructions == 0:
        return 0.0
    window_scale = math.log2(max(config.rob_size, 2)) / 4.0
    dynamic = instructions * (
        _E_DECODE * (1.0 + config.pipe_depth / 24.0) + _E_WINDOW * window_scale
    )
    dynamic += hierarchy_stats["il1_accesses"] * _E_CACHE_ACCESS * math.log2(
        max(config.il1_size_kb, 2)
    ) / 4.0
    dynamic += hierarchy_stats["dl1_accesses"] * _E_CACHE_ACCESS * math.log2(
        max(config.dl1_size_kb, 2)
    ) / 4.0
    dynamic += hierarchy_stats["l2_accesses"] * _E_CACHE_ACCESS * math.log2(
        max(config.l2_size_kb, 2)
    ) / 2.0
    dynamic += hierarchy_stats["memory_requests"] * _E_MEMORY
    dynamic += branches * _E_BRANCH
    leakage = _LEAKAGE * structure_capacity_kb(config) * cycles
    return dynamic + leakage
