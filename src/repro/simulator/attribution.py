"""Cycle accounting: CPI stacks from per-instruction stall attribution.

The out-of-order core (:mod:`repro.simulator.ooo_core`) computes exact
per-instruction commit times; this module turns the *gaps* between
consecutive commits into a canonical CPI stack.  During an attributed run
the core tags every committed instruction with the **binding constraint**
on its commit-to-commit gap — the single machine resource or latency that
determined when the instruction could commit, found by descending the
same max-of-candidates chain the timing loop itself evaluates (commit
width → completion → functional units → operands → dispatch structures →
front end).  Folding the tagged gaps gives one cycle total per component.

Because every timestamp in the simulator is an integer-valued float (all
latencies are configuration integers and every pipeline step adds 1.0),
the per-component sums are exact integer arithmetic below 2**53: the
stack components **sum bitwise-exactly to the measured cycle count**.
The final ``+1.0`` pipeline-drain cycle of the measured region is
attributed to ``base``.

Components, in canonical order:

``base``
    Useful work: commit-width-limited flow, pipeline drain, and gaps
    fully hidden by earlier instructions.
``icache``
    Fetch stalled on an L1I miss.
``btb_bubble`` / ``branch_redirect``
    Front-end refill after a BTB miss bubble or a mispredicted branch
    (the redirect tag also covers the I-cache refill it triggers).
``rob`` / ``iq`` / ``lsq``
    Dispatch blocked on a full reorder buffer, issue queue or
    load/store queue.
``fu``
    Issue delayed by functional-unit contention.
``dep``
    Operand dependence on a non-load producer (execution-chain
    latency, including multi-cycle arithmetic).
``store_forward`` / ``dl1`` / ``l2`` / ``dram``
    Load latency at the level that serviced the load — either the
    load's own service time or a dependent's wait on it.

Interval streams slice the same tagged gaps into windows of K committed
instructions, exposing phase behaviour over a trace; interval cycles sum
exactly to the run total, window by window.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# -- component taxonomy ------------------------------------------------------

#: Tag codes, densely numbered; index into :data:`COMPONENTS`.
TAG_BASE = 0
TAG_ICACHE = 1
TAG_BTB = 2
TAG_REDIRECT = 3
TAG_ROB = 4
TAG_IQ = 5
TAG_LSQ = 6
TAG_FU = 7
TAG_DEP = 8
TAG_STORE_FORWARD = 9
TAG_DL1 = 10
TAG_L2 = 11
TAG_DRAM = 12

#: Canonical component order for tables, stacks and serialised records.
COMPONENTS: Tuple[str, ...] = (
    "base",
    "icache",
    "btb_bubble",
    "branch_redirect",
    "rob",
    "iq",
    "lsq",
    "fu",
    "dep",
    "store_forward",
    "dl1",
    "l2",
    "dram",
)

#: Components counted as memory stalls by :meth:`CPIStack.memory_fraction`.
MEMORY_COMPONENTS: Tuple[str, ...] = ("icache", "store_forward", "dl1", "l2", "dram")

#: Components counted as front-end stalls (fetch-side bubbles).
FRONTEND_COMPONENTS: Tuple[str, ...] = ("icache", "btb_bubble", "branch_redirect")


@dataclass(frozen=True)
class CPIStack:
    """A folded CPI stack: cycles per component over one measured region.

    ``components`` maps every name in :data:`COMPONENTS` (canonical
    order preserved) to its cycle total; the invariant
    ``sum(components.values()) == cycles`` holds bitwise (integer-valued
    floats throughout).
    """

    components: Dict[str, float]
    cycles: float
    instructions: int

    @property
    def cpi(self) -> float:
        """Overall cycles per instruction for the measured region."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def cpi_components(self) -> Dict[str, float]:
        """The stack in CPI units (cycles per component / instructions)."""
        if not self.instructions:
            return {name: 0.0 for name in self.components}
        return {k: v / self.instructions for k, v in self.components.items()}

    def fractions(self) -> Dict[str, float]:
        """The stack normalised to fractions of total cycles."""
        if not self.cycles:
            return {name: 0.0 for name in self.components}
        return {k: v / self.cycles for k, v in self.components.items()}

    def memory_fraction(self) -> float:
        """Fraction of cycles attributed to the memory system."""
        if not self.cycles:
            return 0.0
        return sum(self.components[name] for name in MEMORY_COMPONENTS) / self.cycles

    def frontend_fraction(self) -> float:
        """Fraction of cycles attributed to front-end bubbles."""
        if not self.cycles:
            return 0.0
        return sum(self.components[name] for name in FRONTEND_COMPONENTS) / self.cycles

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON-ready form (component order preserved)."""
        return dict(self.components)


@dataclass(frozen=True)
class IntervalRecord:
    """One K-instruction window of an attributed run."""

    index: int
    first: int  # trace index of the window's first instruction
    instructions: int
    cycles: float
    components: Dict[str, float]

    @property
    def cpi(self) -> float:
        """Window cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form used by the JSONL interval stream."""
        return {
            "index": self.index,
            "first": self.first,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "cpi": self.cpi,
            "components": dict(self.components),
        }


@dataclass
class Attribution:
    """Raw attribution output of one core run: tags plus commit times.

    Holds references to the core's per-instruction arrays (no copies) so
    stacks and interval streams at any window size can be folded after
    the run without re-simulating.
    """

    tags: List[int]
    commit: Sequence[float]
    warmup: int
    warm_commit: float
    _stack: Optional[CPIStack] = field(default=None, repr=False)

    def stack(self) -> CPIStack:
        """The full-region CPI stack (folded once, then cached)."""
        if self._stack is None:
            self._stack = fold_stack(
                self.tags, self.commit, self.warmup, self.warm_commit
            )
        return self._stack

    def intervals(self, k: int) -> List[IntervalRecord]:
        """Windowed stacks over the measured region, K instructions each."""
        return build_intervals(
            self.tags, self.commit, self.warmup, self.warm_commit, k
        )


# -- folding -----------------------------------------------------------------


def fold_stack(
    tags: Sequence[int],
    commit: Sequence[float],
    warmup: int,
    warm_commit: float,
) -> CPIStack:
    """Fold tagged commit gaps into a :class:`CPIStack`.

    The measured region is ``[warmup, n)``; the gap of instruction ``i``
    is ``commit[i] - commit[i-1]`` (telescoping to the region's cycle
    count), and the trailing ``+1.0`` drain cycle lands in ``base``.
    """
    n = len(commit)
    if len(tags) != n:
        raise ValueError("tags and commit must have equal length")
    if not 0 <= warmup < n:
        raise ValueError("warmup must leave at least one measured instruction")
    totals = [0.0] * len(COMPONENTS)
    prev = warm_commit
    for i in range(warmup, n):
        c = commit[i]
        gap = c - prev
        if gap:
            totals[tags[i]] += gap
        prev = c
    totals[TAG_BASE] += 1.0  # pipeline drain of the last instruction
    cycles = commit[-1] + 1.0 - warm_commit
    return CPIStack(
        components=dict(zip(COMPONENTS, totals)),
        cycles=cycles,
        instructions=n - warmup,
    )


def build_intervals(
    tags: Sequence[int],
    commit: Sequence[float],
    warmup: int,
    warm_commit: float,
    k: int,
) -> List[IntervalRecord]:
    """Slice the measured region into windows of ``k`` instructions.

    Window cycles sum exactly to the run's measured cycles: each window
    spans the commit times of its instructions, and the final window
    carries the ``+1.0`` drain cycle (in ``base``), mirroring
    :func:`fold_stack`.
    """
    n = len(commit)
    if len(tags) != n:
        raise ValueError("tags and commit must have equal length")
    if not 0 <= warmup < n:
        raise ValueError("warmup must leave at least one measured instruction")
    if k < 1:
        raise ValueError("interval size must be >= 1")
    records: List[IntervalRecord] = []
    prev = warm_commit
    for start in range(warmup, n, k):
        end = min(start + k, n)
        totals = [0.0] * len(COMPONENTS)
        window_start = prev
        for i in range(start, end):
            c = commit[i]
            gap = c - prev
            if gap:
                totals[tags[i]] += gap
            prev = c
        cycles = prev - window_start
        if end == n:
            totals[TAG_BASE] += 1.0
            cycles += 1.0
        records.append(
            IntervalRecord(
                index=len(records),
                first=start,
                instructions=end - start,
                cycles=cycles,
                components=dict(zip(COMPONENTS, totals)),
            )
        )
    return records


# -- serialisation -----------------------------------------------------------

#: Schema version of the JSONL interval stream.
INTERVAL_SCHEMA = 1


def write_intervals_jsonl(
    path: "Path | str",
    intervals: Iterable[IntervalRecord],
    **meta: Any,
) -> int:
    """Write an interval stream as JSONL: one header line, one per window.

    ``meta`` (benchmark, design point, window size, ...) lands in the
    header.  Keys are sorted for byte-determinism, matching the ``obs``
    trace sink discipline.  Returns the number of interval lines written.
    """
    path = Path(path)
    header = {"kind": "cpi_intervals", "schema": INTERVAL_SCHEMA}
    header.update(meta)
    count = 0
    with open(path, "w") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in intervals:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_intervals_jsonl(path: "Path | str") -> Tuple[Dict[str, Any], List[IntervalRecord]]:
    """Read a stream written by :func:`write_intervals_jsonl`."""
    path = Path(path)
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("kind") != "cpi_intervals":
        raise ValueError(f"{path} is not a cpi_intervals stream")
    header = lines[0]
    records = [
        IntervalRecord(
            index=int(row["index"]),
            first=int(row["first"]),
            instructions=int(row["instructions"]),
            cycles=float(row["cycles"]),
            components={k: float(v) for k, v in row["components"].items()},
        )
        for row in lines[1:]
    ]
    return header, records


def emit_interval_events(
    intervals: Iterable[IntervalRecord],
    **meta: Any,
) -> int:
    """Record the interval stream as structured ``obs`` events.

    Each window becomes one ``cpi_interval`` event on the active
    collector (persisted by ``obs.write_trace`` alongside spans and
    metrics); a no-op while tracing is off.  Returns the number of
    events recorded.
    """
    from repro import obs

    if not obs.enabled():
        return 0
    count = 0
    for record in intervals:
        obs.record_event("cpi_interval", **record.as_dict(), **meta)
        count += 1
    return count


# -- rendering ---------------------------------------------------------------


def render_stack_table(
    stacks: Mapping[str, CPIStack],
    normalize: bool = False,
    bar_width: int = 32,
) -> str:
    """Plain-text CPI-stack table with per-component bars.

    One row per component, one column per labelled stack; each cell
    shows CPI contribution (or fraction with ``normalize=True``).  The
    bar column visualises the first stack's breakdown.
    """
    labels = list(stacks)
    if not labels:
        return "(no stacks)"
    rows: List[List[str]] = []
    first = stacks[labels[0]]
    first_fracs = first.fractions()
    for name in COMPONENTS:
        cells = []
        for label in labels:
            stack = stacks[label]
            value = (
                stack.fractions()[name] if normalize else stack.cpi_components()[name]
            )
            cells.append(f"{value:.4f}")
        bar = "#" * int(round(first_fracs[name] * bar_width))
        rows.append([name] + cells + [bar])
    header = ["component"] + labels + [f"share[{labels[0]}]"]
    totals = ["total"] + [
        f"{(1.0 if normalize else stacks[label].cpi):.4f}" for label in labels
    ] + [""]
    widths = [
        max(len(str(row[col])) for row in [header] + rows + [totals])
        for col in range(len(header))
    ]

    def fmt(row: List[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    lines.append(fmt(["-" * w for w in widths]))
    lines.append(fmt(totals))
    return "\n".join(lines)
