"""Memory controller: request queuing and memory-bus contention.

All L2 misses pass through the controller.  Two effects are modeled, both
called out in the paper's simulator description ("queuing at the memory
controller, and contention for the memory bus"):

* a finite request queue — when it is full, new requests stall until an
  older request's bus transfer begins;
* a shared bus on which every cache-line transfer occupies a fixed number
  of cycles, serialising transfers.
"""

from __future__ import annotations

from collections import deque

from repro.simulator.dram import DRAM


class MemoryController:
    """FIFO memory controller in front of a :class:`DRAM` device.

    Parameters
    ----------
    dram:
        The DRAM device serving requests.
    bus_cycles:
        Bus occupancy (cycles) per cache-line transfer.
    queue_depth:
        Maximum in-flight requests; extra requests see queuing delay.
    """

    __slots__ = ("dram", "bus_cycles", "queue_depth", "_bus_free", "_inflight",
                 "requests", "total_queue_delay")

    def __init__(self, dram: DRAM, bus_cycles: int = 8, queue_depth: int = 16):
        if bus_cycles < 1:
            raise ValueError("bus_cycles must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.dram = dram
        self.bus_cycles = bus_cycles
        self.queue_depth = queue_depth
        self._bus_free = 0.0
        self._inflight = deque()  # completion times of queued requests
        self.requests = 0
        self.total_queue_delay = 0.0

    def access(self, addr: int, time: float) -> float:
        """Issue a memory request at ``time``; returns data-return time."""
        self.requests += 1
        # Queue admission: wait for a slot if the queue is full.
        inflight = self._inflight
        while inflight and inflight[0] <= time:
            inflight.popleft()
        start = time
        if len(inflight) >= self.queue_depth:
            start = inflight[len(inflight) - self.queue_depth]
        self.total_queue_delay += start - time

        data_ready = self.dram.access(addr, start)
        # The line then crosses the shared bus; transfers serialise.
        bus_start = max(data_ready, self._bus_free)
        done = bus_start + self.bus_cycles
        self._bus_free = done
        inflight.append(done)
        return done

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_delay / self.requests if self.requests else 0.0

    def __repr__(self) -> str:
        return f"MemoryController(bus={self.bus_cycles} cyc, queue={self.queue_depth})"
