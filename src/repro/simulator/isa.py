"""Instruction classes and execution latencies.

The trace format is ISA-neutral: instructions carry an operation class, up
to two register dependences (as backward distances in the instruction
stream), an optional memory address, and branch metadata.  Latencies and
initiation intervals follow typical early-2000s superscalar designs
(Alpha 21264 / POWER4-era), matching the paper's simulation era.
"""

from __future__ import annotations

from typing import Dict, Tuple

# Operation class codes (kept as small ints: traces store them in int8 arrays).
IALU = 0
IMULT = 1
IDIV = 2
FPALU = 3
FPMULT = 4
FPDIV = 5
LOAD = 6
STORE = 7
BRANCH = 8  # conditional branch
JUMP = 9  # unconditional direct jump/call

NUM_OP_CLASSES = 10

OP_NAMES = {
    IALU: "ialu",
    IMULT: "imult",
    IDIV: "idiv",
    FPALU: "fpalu",
    FPMULT: "fpmult",
    FPDIV: "fpdiv",
    LOAD: "load",
    STORE: "store",
    BRANCH: "branch",
    JUMP: "jump",
}

#: (execution latency, initiation interval) per op class, in cycles.  Loads
#: and stores list only the address-generation part; memory access timing
#: comes from the cache hierarchy.
OP_TIMING: Dict[int, Tuple[int, int]] = {
    IALU: (1, 1),
    IMULT: (7, 1),
    IDIV: (20, 19),  # unpipelined divider
    FPALU: (4, 1),
    FPMULT: (4, 1),
    FPDIV: (16, 15),  # unpipelined divider
    LOAD: (1, 1),
    STORE: (1, 1),
    BRANCH: (1, 1),
    JUMP: (1, 1),
}

#: Functional-unit class for each op class (see ``resources.FU_POOLS``).
FU_CLASS = {
    IALU: "ialu",
    IMULT: "imult",
    IDIV: "imult",
    FPALU: "fp",
    FPMULT: "fp",
    FPDIV: "fp",
    LOAD: "mem",
    STORE: "mem",
    BRANCH: "ialu",
    JUMP: "ialu",
}

MEMORY_OPS = (LOAD, STORE)
CONTROL_OPS = (BRANCH, JUMP)


def is_memory(op: int) -> bool:
    """Whether ``op`` is a load or store."""
    return op == LOAD or op == STORE


def is_control(op: int) -> bool:
    """Whether ``op`` is a branch or jump."""
    return op == BRANCH or op == JUMP


def op_name(op: int) -> str:
    """Human-readable name of an op class; raises ValueError if unknown."""
    try:
        return OP_NAMES[op]
    except KeyError:
        raise ValueError(f"unknown op class {op}")
