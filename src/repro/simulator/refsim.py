"""An independent reference timing model (the paper's *alphasim* role).

The paper validated its simulator by comparing *trends in the summary
statistics against another similarly configured verified simulator* at
several design points.  This module plays that role: a second, independently
written CPI model that shares no timing code with the detailed engine.

It is a first-order bottleneck model in the spirit of Karkhanis & Smith
(ISCA 2004): run the caches and branch predictor *functionally* over the
trace to measure event rates, then compose CPI from a base (width- and
window-limited) term plus miss-event penalty terms.  Being analytically
different from the detailed engine, agreement on trend *direction* between
the two is meaningful validation evidence.
"""

from __future__ import annotations

import math

from repro.simulator import isa
from repro.simulator.branch import PREDICT_MISPREDICT, BranchUnit
from repro.simulator.cache import Cache
from repro.simulator.config import ProcessorConfig
from repro.simulator.metrics import SimResult
from repro.simulator.trace import Trace


class ReferenceSimulator:
    """First-order CPI model with functional cache/predictor simulation."""

    def __init__(self, config: ProcessorConfig):
        self.config = config

    def run(self, trace: Trace) -> SimResult:
        n = len(trace)
        if n == 0:
            return SimResult(cpi=0.0, cycles=0.0, instructions=0)
        cfg = self.config
        il1 = Cache(cfg.il1_size_kb, cfg.il1_line, cfg.il1_assoc, "il1")
        dl1 = Cache(cfg.dl1_size_kb, cfg.dl1_line, cfg.dl1_assoc, "dl1")
        l2 = Cache(cfg.l2_size_kb, cfg.l2_line, cfg.l2_assoc, "l2")
        bru = BranchUnit(cfg)

        mispredicts = 0
        il1_misses = 0
        dl1_misses = 0
        l2_misses = 0
        dep_sum = 0
        dep_count = 0
        last_line = -1
        line_bits = il1.line_bits

        for op, s1, s2, addr, pc, taken in trace.rows():
            line = pc >> line_bits
            if line != last_line:
                last_line = line
                if not il1.access(pc):
                    il1_misses += 1
                    if not l2.access(pc):
                        l2_misses += 1
            if op == isa.LOAD or op == isa.STORE:
                if not dl1.access(addr):
                    dl1_misses += 1
                    if not l2.access(addr):
                        l2_misses += 1
            if op == isa.BRANCH or op == isa.JUMP:
                if bru.predict(pc, taken, op == isa.BRANCH) == PREDICT_MISPREDICT:
                    mispredicts += 1
                    last_line = -1
            if s1:
                dep_sum += s1
                dep_count += 1
            if s2:
                dep_sum += s2
                dep_count += 1

        # Base CPI: issue width bounds throughput; the instruction window
        # bounds extractable ILP following a sqrt law (Riseman/Foster-style
        # scaling), with the mean dependence distance setting the ceiling.
        mean_dep = dep_sum / dep_count if dep_count else 8.0
        window_ilp = math.sqrt(cfg.rob_size * min(cfg.iq_size, cfg.lsq_size) / 2.0) / 2.0
        achievable_ipc = min(cfg.fetch_width, window_ilp, 1.0 + mean_dep / 2.0)
        base_cpi = 1.0 / achievable_ipc

        # Miss-event penalty terms (per instruction).
        memory_lat = cfg.dram_lat + cfg.bus_cycles
        # A larger window hides more of the L2/memory latency.
        overlap = min(0.75, cfg.rob_size / 256.0)
        cpi = base_cpi
        cpi += (il1_misses / n) * cfg.l2_lat
        cpi += (dl1_misses / n) * cfg.l2_lat * (1.0 - overlap / 2.0)
        cpi += (l2_misses / n) * memory_lat * (1.0 - overlap)
        cpi += (mispredicts / n) * (cfg.front_depth + 1.0)
        cpi += (dl1_misses / n) * (cfg.dl1_lat - 1.0) * 0.5

        cycles = cpi * n
        return SimResult(
            cpi=cpi,
            cycles=cycles,
            instructions=n,
            il1_miss_rate=il1.miss_rate,
            dl1_miss_rate=dl1.miss_rate,
            l2_miss_rate=l2.miss_rate,
            branch_mispredict_rate=bru.mispredict_rate,
        )
