"""Instruction-trace representation.

A :class:`Trace` is a struct-of-arrays record of a dynamic instruction
stream: operation class, up to two register dependences (encoded as backward
distances in the stream, the natural form for trace-driven timing), memory
address for loads/stores, PC, and resolved direction for control ops.

The paper drove its simulator with traces of PowerPC SPEC CPU2000
executions; here traces come from the synthetic generators in
:mod:`repro.workloads` (see DESIGN.md for the substitution rationale), but
the simulator is agnostic to their origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.simulator import isa


@dataclass
class Trace:
    """A dynamic instruction trace (struct of arrays).

    Attributes
    ----------
    op:
        ``(n,)`` int8 operation classes (:mod:`repro.simulator.isa` codes).
    src1, src2:
        ``(n,)`` int32 backward dependence distances; 0 means "no operand".
        A value ``d > 0`` at position ``i`` means instruction ``i`` reads
        the result of instruction ``i - d``.
    addr:
        ``(n,)`` int64 effective addresses (0 for non-memory ops).
    pc:
        ``(n,)`` int64 instruction addresses.
    taken:
        ``(n,)`` bool resolved directions (False for non-control ops).
    name:
        Label (benchmark name) used in reports and cache keys.
    """

    op: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    addr: np.ndarray
    pc: np.ndarray
    taken: np.ndarray
    name: str = "trace"
    # Per-trace invariant caches (see :meth:`prepare`).  A trace is
    # simulated at every point of a design sweep, so the Python-level
    # decode of its arrays is memoised on the instance; the arrays must
    # be treated as immutable once any cache is populated.
    _columns: Optional[Tuple[list, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pc_lines: Dict[int, List[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = len(self.op)
        for field_name in ("src1", "src2", "addr", "pc", "taken"):
            arr = getattr(self, field_name)
            if len(arr) != n:
                raise ValueError(f"{field_name} length {len(arr)} != op length {n}")

    def __len__(self) -> int:
        return len(self.op)

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        n = len(self)
        idx = np.arange(n)
        for name_, arr in (("src1", self.src1), ("src2", self.src2)):
            if np.any(arr < 0):
                raise ValueError(f"{name_} distances must be non-negative")
            bad = arr > idx
            if np.any(bad):
                raise ValueError(
                    f"{name_} reaches before the start of the trace at "
                    f"positions {np.nonzero(bad)[0][:5]}"
                )
        mem_mask = (self.op == isa.LOAD) | (self.op == isa.STORE)
        if np.any(self.addr[mem_mask] <= 0):
            raise ValueError("memory ops must carry positive addresses")
        ctl_mask = (self.op == isa.BRANCH) | (self.op == isa.JUMP)
        if np.any(self.taken[~ctl_mask]):
            raise ValueError("only control ops may be taken")
        if np.any(self.op == isa.JUMP) and not np.all(self.taken[self.op == isa.JUMP]):
            raise ValueError("unconditional jumps must be taken")

    def mix(self) -> dict:
        """Fraction of each op class present in the trace."""
        n = len(self) or 1
        counts = np.bincount(self.op, minlength=isa.NUM_OP_CLASSES)
        return {isa.op_name(code): counts[code] / n for code in range(isa.NUM_OP_CLASSES)}

    def slice(self, start: int, stop: int) -> "Trace":
        """A structural sub-trace; dependence distances are clipped to fit."""
        sl = slice(start, stop)
        src1 = self.src1[sl].copy()
        src2 = self.src2[sl].copy()
        idx = np.arange(stop - start)
        src1[src1 > idx] = 0
        src2[src2 > idx] = 0
        return Trace(
            op=self.op[sl].copy(),
            src1=src1,
            src2=src2,
            addr=self.addr[sl].copy(),
            pc=self.pc[sl].copy(),
            taken=self.taken[sl].copy(),
            name=f"{self.name}[{start}:{stop}]",
        )

    def columns(self) -> Tuple[list, ...]:
        """Decoded per-instruction columns as plain Python lists, memoised.

        Decoding ``(op, src1, src2, addr, pc, taken)`` once per trace —
        instead of once per simulated design point — is a measurable win
        for sweeps, and the values are exactly ``ndarray.tolist()`` of the
        stored arrays, so consumers behave bitwise-identically.
        """
        if self._columns is None:
            self._columns = (
                self.op.tolist(),
                self.src1.tolist(),
                self.src2.tolist(),
                self.addr.tolist(),
                self.pc.tolist(),
                self.taken.tolist(),
            )
        return self._columns

    def pc_lines(self, line_bits: int) -> List[int]:
        """Cache-line ids (``pc >> line_bits``) per instruction, memoised.

        One entry per distinct ``line_bits`` (L1I line size) seen across
        a sweep.
        """
        lines = self._pc_lines.get(line_bits)
        if lines is None:
            lines = (self.pc >> line_bits).tolist()
            self._pc_lines[line_bits] = lines
        return lines

    def prepare(self, line_bits: Optional[int] = None) -> "Trace":
        """Precompute the per-trace invariants used by the core; returns self."""
        self.columns()
        if line_bits is not None:
            self.pc_lines(line_bits)
        return self

    def rows(self) -> Iterator[Tuple[int, int, int, int, int, bool]]:
        """Iterate (op, src1, src2, addr, pc, taken) tuples."""
        return zip(*self.columns())


def empty_trace(name: str = "empty") -> Trace:
    """A zero-length trace (useful in tests)."""
    return Trace(
        op=np.zeros(0, dtype=np.int8),
        src1=np.zeros(0, dtype=np.int32),
        src2=np.zeros(0, dtype=np.int32),
        addr=np.zeros(0, dtype=np.int64),
        pc=np.zeros(0, dtype=np.int64),
        taken=np.zeros(0, dtype=bool),
        name=name,
    )
