"""Exact batched LRU membership resolution for caches and TLBs.

The scalar simulator replays one address at a time against per-set LRU
lists (:class:`repro.simulator.cache.Cache`,
:class:`repro.simulator.tlb.TLB`).  That is the right oracle but a poor
hot path: every reference costs a Python call, a ``list.index`` scan and
a pop/append.  This module resolves a whole address stream against the
same LRU state in NumPy, with *bitwise-identical* outcomes: the same
accesses hit, the same victims are evicted, and the final LRU order of
every set equals what the scalar loop would have produced.

The algorithm exploits one structural fact about LRU: **set membership
only changes at misses** (hits merely reorder recency).  So membership
can be resolved in frozen-state rounds:

1. Match every unresolved access against the current tag matrix.
2. Per set, find the position of the earliest unresolved miss.  Every
   *hit* that precedes it saw exactly the current membership, so it is
   confirmed (its way's recency stamp advances to the access position).
3. The earliest miss per set is resolved for real: it inserts its tag,
   evicting the least-recent way (smallest stamp) when the set is full.
4. Repeat with the remaining accesses.

Each round confirms every access up to (and including) the first miss of
each active set, so the number of rounds is bounded by the per-set miss
count — typically a handful for cache-friendly streams.  Recency stamps
are unique (pre-existing ways get negative stamps in LRU order; accesses
use their stream position), so victim selection and the final write-back
ordering are exact, not approximate.

A round cap guards pathological streams (e.g. every access missing the
same set): past it, the matrix state is written back and the remainder
is replayed with plain list operations — the scalar oracle semantics,
just without the per-call attribute lookups.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Accesses resolved per matrix pass.  Each frozen-state round scans the
#: chunk's unresolved tail, and a chunk needs roughly one round per miss
#: in its busiest set — so smaller chunks bound the round-loop cost on
#: miss-heavy streams, while hit-heavy streams finish in a round or two
#: regardless of chunk size.
_CHUNK = 2048

#: Frozen-state rounds per chunk before bailing to the scalar replay.
_ROUND_CAP = 256


def resolve_lru_batch(
    ways: List[List[int]],
    assoc: int,
    keys: np.ndarray,
    set_idx: np.ndarray,
) -> np.ndarray:
    """Replay an access stream against per-set LRU lists, vectorised.

    Parameters
    ----------
    ways:
        One LRU-ordered list per set (index ``-1`` is most recent) — the
        live state of a :class:`Cache` or :class:`TLB`.  Mutated to the
        exact post-stream state.
    assoc:
        Maximum ways per set.
    keys:
        Non-negative int64 tags (line ids, page numbers), one per access,
        in stream order.
    set_idx:
        int64 set index of each access.

    Returns
    -------
    numpy.ndarray
        Boolean hit mask, one entry per access, identical to what
        repeated scalar accesses would have returned.
    """
    num_sets = len(ways)
    n = len(keys)
    hit = np.zeros(n, dtype=bool)
    if n == 0:
        return hit

    # Matrix state: tags per way (-1 = empty), unique recency stamps
    # (existing ways stamped ``-k .. -1`` oldest-to-newest, batch accesses
    # stamped by stream position >= 0), and current occupancy.
    tags = np.full((num_sets, assoc), -1, dtype=np.int64)
    last = np.zeros((num_sets, assoc), dtype=np.int64)
    counts = np.zeros(num_sets, dtype=np.int64)
    for s, lst in enumerate(ways):
        k = len(lst)
        if k:
            counts[s] = k
            tags[s, :k] = lst
            last[s, :k] = np.arange(-k, 0)

    touched = np.zeros(num_sets, dtype=bool)
    touched[set_idx] = True

    positions = np.arange(n, dtype=np.int64)
    for lo in range(0, n, _CHUNK):
        remaining = positions[lo : min(n, lo + _CHUNK)]
        rounds = 0
        while remaining.size:
            rounds += 1
            if rounds > _ROUND_CAP:
                # Pathological stream: fall back to the oracle semantics
                # for everything not yet resolved.
                _write_back(ways, tags, last, counts, touched)
                pending = np.concatenate([remaining, positions[lo + _CHUNK :]])
                _scalar_replay(ways, assoc, keys, set_idx, pending, hit)
                return hit
            k = keys[remaining]
            s = set_idx[remaining]
            match = tags[s] == k[:, None]
            is_hit = match.any(axis=1)
            way = np.argmax(match, axis=1)
            miss = ~is_hit
            if not miss.any():
                hit[remaining] = True
                np.maximum.at(last, (s, way), remaining)
                break
            # Earliest unresolved miss per set; hits before it are final.
            first_miss = np.full(num_sets, n, dtype=np.int64)
            np.minimum.at(first_miss, s[miss], remaining[miss])
            confirm = is_hit & (remaining < first_miss[s])
            cidx = remaining[confirm]
            hit[cidx] = True
            np.maximum.at(last, (s[confirm], way[confirm]), cidx)
            # Resolve exactly the first miss of each active set: fill an
            # empty way, or evict the least-recently-stamped one.
            take = miss & (remaining == first_miss[s])
            ms = s[take]
            grow = counts[ms] < assoc
            victim = np.argmin(last[ms], axis=1)
            slot = np.where(grow, counts[ms], victim)
            tags[ms, slot] = k[take]
            last[ms, slot] = remaining[take]
            counts[ms] += grow
            remaining = remaining[~(confirm | take)]
    _write_back(ways, tags, last, counts, touched)
    return hit


def _write_back(
    ways: List[List[int]],
    tags: np.ndarray,
    last: np.ndarray,
    counts: np.ndarray,
    touched: np.ndarray,
) -> None:
    """Restore per-set LRU lists (oldest first) from the matrix state."""
    for s in np.flatnonzero(touched).tolist():
        k = counts[s]
        order = np.argsort(last[s, :k], kind="stable")
        ways[s] = tags[s, order].tolist()


def _scalar_replay(
    ways: List[List[int]],
    assoc: int,
    keys: np.ndarray,
    set_idx: np.ndarray,
    pending: np.ndarray,
    hit: np.ndarray,
) -> None:
    """Finish unresolved accesses with plain list ops (oracle semantics)."""
    key_list = keys[pending].tolist()
    set_list = set_idx[pending].tolist()
    for i, key, s in zip(pending.tolist(), key_list, set_list):
        lst = ways[s]
        try:
            lst.remove(key)
        except ValueError:
            if len(lst) >= assoc:
                lst.pop(0)
        else:
            hit[i] = True
        lst.append(key)
