"""From-scratch trace-driven superscalar processor timing simulator.

This package is the substrate the paper obtained its responses from: a
detailed, validated superscalar simulator.  It models — with explicit
mechanisms, not analytical shortcuts — the pipeline (parameterised depth),
reorder buffer / issue queue / load-store queue occupancy, functional-unit
contention, branch direction prediction (gshare) with a BTB, split L1
instruction/data caches, a unified L2, DRAM device timing with banks and row
buffers, queuing at the memory controller, and contention for the memory
bus.

The timing engine is *instruction-indexed* rather than cycle-looped: for
every instruction it computes fetch, dispatch, issue, completion and commit
timestamps under all resource constraints.  This is exactly as deterministic
as a cycle loop but runs an order of magnitude faster in CPython, which is
what makes the paper's ~4000-simulation experiment grid tractable.
"""

from repro.simulator.attribution import (
    COMPONENTS,
    Attribution,
    CPIStack,
    IntervalRecord,
)
from repro.simulator.config import ProcessorConfig
from repro.simulator.metrics import SimResult
from repro.simulator.simulator import Simulator, simulate
from repro.simulator.refsim import ReferenceSimulator

__all__ = [
    "Attribution",
    "COMPONENTS",
    "CPIStack",
    "IntervalRecord",
    "ProcessorConfig",
    "ReferenceSimulator",
    "SimResult",
    "Simulator",
    "simulate",
]
