"""Cross-simulator trend validation (paper Sec. 3 methodology).

The paper verified its simulator by validating *trends in the summary
statistics* against an independently implemented simulator (alphasim) at
several points in the design space.  :func:`validate_trends` automates the
same check between the detailed engine and the reference model: sweep one
parameter at a time, and verify that when the detailed simulator's CPI
moves, the reference model's CPI moves in the same direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.design_space import DesignSpace
from repro.simulator.config import ProcessorConfig
from repro.simulator.refsim import ReferenceSimulator
from repro.simulator.simulator import Simulator
from repro.simulator.trace import Trace


@dataclass
class TrendReport:
    """Agreement between two simulators along one parameter sweep."""

    parameter: str
    values: List[float]
    detailed_cpi: List[float]
    reference_cpi: List[float]

    @property
    def agreement(self) -> float:
        """Fraction of sweep steps where both CPIs move the same way.

        Steps where the detailed CPI barely moves (< 0.5% relative) are
        counted as agreeing — a flat response carries no directional
        information.
        """
        d = np.diff(self.detailed_cpi)
        r = np.diff(self.reference_cpi)
        if len(d) == 0:
            return 1.0
        base = np.asarray(self.detailed_cpi[:-1])
        flat = np.abs(d) < 0.005 * base
        same = np.sign(d) == np.sign(r)
        return float(np.mean(same | flat))


def sweep_parameter(
    space: DesignSpace,
    base_point: Dict[str, float],
    parameter: str,
    values: Sequence[float],
    trace: Trace,
) -> TrendReport:
    """Sweep one parameter, simulating with both engines at each value."""
    detailed: List[float] = []
    reference: List[float] = []
    for value in values:
        point = dict(base_point)
        point[parameter] = value
        resolved = space.resolve(point)
        config = ProcessorConfig.from_design_point(resolved)
        detailed.append(Simulator(config).run(trace).cpi)
        reference.append(ReferenceSimulator(config).run(trace).cpi)
    return TrendReport(
        parameter=parameter,
        values=list(values),
        detailed_cpi=detailed,
        reference_cpi=reference,
    )


def validate_trends(
    space: DesignSpace,
    base_point: Dict[str, float],
    trace: Trace,
    sweeps: Dict[str, Sequence[float]],
) -> List[TrendReport]:
    """Run all requested sweeps; see :class:`TrendReport` for scoring."""
    return [
        sweep_parameter(space, base_point, parameter, values, trace)
        for parameter, values in sweeps.items()
    ]
