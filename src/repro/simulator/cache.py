"""Set-associative cache model with true LRU replacement.

Used for the L1 instruction cache, L1 data cache and unified L2.  The model
tracks tag state only (no data), which is all timing simulation needs, and
counts accesses/misses for the simulation report.  Lookups are O(assoc) with
small per-set lists, keeping the per-access cost low enough for the
experiment grid.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.simulator.batchmem import resolve_lru_batch


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class Cache:
    """One level of set-associative cache.

    Parameters
    ----------
    size_kb:
        Total capacity in KB.  Rounded *down* to the nearest power of two
        internally (set counts must be powers of two); the paper's level
        grids are powers of two already.
    line_size:
        Line size in bytes (power of two).
    assoc:
        Associativity (ways per set).
    name:
        Label used in statistics.
    """

    __slots__ = ("name", "line_bits", "num_sets", "assoc", "_sets", "accesses",
                 "misses", "track_dirty", "_dirty", "writebacks", "last_writeback",
                 "policy", "_victim_state")

    #: Supported replacement policies.
    POLICIES = ("lru", "fifo", "random")

    def __init__(
        self,
        size_kb: int,
        line_size: int,
        assoc: int,
        name: str = "cache",
        track_dirty: bool = False,
        policy: str = "lru",
    ):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {self.POLICIES}")
        if size_kb < 1:
            raise ValueError("size_kb must be >= 1")
        if not _is_pow2(line_size):
            raise ValueError("line_size must be a power of two")
        if assoc < 1:
            raise ValueError("assoc must be >= 1")
        size_bytes = size_kb * 1024
        num_lines = size_bytes // line_size
        if num_lines < assoc:
            raise ValueError("cache too small for its associativity")
        num_sets = num_lines // assoc
        # Round down to a power of two of sets.
        while not _is_pow2(num_sets):
            num_sets -= num_sets & (-num_sets)  # clear lowest set bit
        if num_sets < 1:
            num_sets = 1
        self.name = name
        self.line_bits = line_size.bit_length() - 1
        self.num_sets = num_sets
        self.assoc = assoc
        # Each set is an LRU-ordered list of tags; index -1 = most recent.
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        self.accesses = 0
        self.misses = 0
        # Dirty-line (writeback) tracking — used only when the hierarchy's
        # writeback modeling is enabled; off by default for speed.
        self.track_dirty = track_dirty
        self._dirty = [set() for _ in range(num_sets)] if track_dirty else None
        self.writebacks = 0
        self.policy = policy
        # Deterministic xorshift state for the "random" policy (seeded by
        # geometry so two identical caches behave identically).
        self._victim_state = (num_sets * 2654435761 + assoc) & 0xFFFFFFFF or 1
        #: Line-aligned address of the dirty line evicted by the most
        #: recent miss, or -1 (valid only with ``track_dirty``).
        self.last_writeback = -1

    @property
    def line_size(self) -> int:
        return 1 << self.line_bits

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_size

    def line_of(self, addr: int) -> int:
        """The line-aligned address (used for MSHR-style merging)."""
        return addr >> self.line_bits

    def access(self, addr: int, write: bool = False) -> bool:
        """Access ``addr``; returns True on hit.  Misses allocate the line.

        With ``track_dirty``, a write marks the line dirty; evicting a
        dirty line counts a writeback and records its address in
        :attr:`last_writeback` (line-aligned), which the hierarchy turns
        into downstream write traffic.
        """
        line = addr >> self.line_bits
        set_idx = line & (self.num_sets - 1)
        tag = line >> 0  # full line id doubles as tag (set bits are redundant)
        ways = self._sets[set_idx]
        self.accesses += 1
        dirty = self._dirty[set_idx] if self.track_dirty else None
        try:
            idx = ways.index(tag)
        except ValueError:
            self.misses += 1
            if self.track_dirty:
                self.last_writeback = -1
            if len(ways) >= self.assoc:
                victim = ways.pop(self._victim_index(len(ways)))
                if dirty is not None and victim in dirty:
                    dirty.discard(victim)
                    self.writebacks += 1
                    self.last_writeback = victim << self.line_bits
            ways.append(tag)
            if dirty is not None and write:
                dirty.add(tag)
            return False
        if self.policy == "lru":
            ways.pop(idx)
            ways.append(tag)  # move to MRU (FIFO/random leave order alone)
        if dirty is not None and write:
            dirty.add(tag)
        return True

    def access_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Read-access a whole address stream; returns the boolean hit mask.

        Bitwise-identical to calling :meth:`access` once per address in
        order — same hits, same victims, same final LRU state, same
        counters.  The vectorised resolver only covers plain LRU without
        dirty-line tracking; other configurations take the scalar oracle
        path element by element.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        n = len(addrs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.policy != "lru" or self.track_dirty:
            hits = np.empty(n, dtype=bool)
            for i, addr in enumerate(addrs.tolist()):
                hits[i] = self.access(addr)
            return hits
        lines = addrs >> self.line_bits
        set_idx = lines & (self.num_sets - 1)
        hits = resolve_lru_batch(self._sets, self.assoc, lines, set_idx)
        self.accesses += n
        self.misses += int(n - hits.sum())
        return hits

    def _victim_index(self, occupancy: int) -> int:
        """Index of the way to evict under the configured policy."""
        if self.policy == "random":
            # Deterministic xorshift32 stream.
            x = self._victim_state
            x ^= (x << 13) & 0xFFFFFFFF
            x ^= x >> 17
            x ^= (x << 5) & 0xFFFFFFFF
            self._victim_state = x
            return x % occupancy
        return 0  # LRU order or FIFO insertion order: oldest is first

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or statistics."""
        line = addr >> self.line_bits
        ways = self._sets[line & (self.num_sets - 1)]
        return line in ways

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}: {self.size_bytes // 1024}KB, "
            f"{self.num_sets}x{self.assoc} ways, {self.line_size}B lines)"
        )
