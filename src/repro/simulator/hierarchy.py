"""The full memory hierarchy: split L1s, unified L2, memory controller.

Composes :class:`~repro.simulator.cache.Cache`,
:class:`~repro.simulator.memctrl.MemoryController` and
:class:`~repro.simulator.dram.DRAM` into the three access paths the core
needs: instruction fetch, data load and data store.  In-flight L2 line fills
are tracked MSHR-style so that a second miss to a line already being fetched
merges with the outstanding fill instead of issuing a duplicate memory
request.

Substrate extensions (all disabled in the paper-reproduction machine, see
:class:`~repro.simulator.config.ProcessorConfig`):

* a next-line instruction prefetcher and a PC-indexed data stride
  prefetcher, whose prefetches run the real L2/memory path (consuming
  bandwidth and potentially polluting the L2);
* instruction and data TLBs, adding page-walk latency on misses;
* dirty-line writeback traffic from the D-L1 and L2.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.simulator.cache import Cache
from repro.simulator.config import ProcessorConfig
from repro.simulator.dram import DRAM
from repro.simulator.memctrl import MemoryController
from repro.simulator.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.simulator.tlb import TLB

#: In-flight fill table is pruned when it grows past this many lines.
_INFLIGHT_LIMIT = 256


class MemoryHierarchy:
    """L1I + L1D + unified L2 + memory controller + DRAM."""

    def __init__(self, config: ProcessorConfig):
        self.config = config
        track_dirty = config.writeback
        self.il1 = Cache(config.il1_size_kb, config.il1_line, config.il1_assoc, "il1")
        self.dl1 = Cache(config.dl1_size_kb, config.dl1_line, config.dl1_assoc,
                         "dl1", track_dirty=track_dirty)
        effective_l2_kb = max(8, config.l2_size_kb // config.l2_capacity_scale)
        self.l2 = Cache(effective_l2_kb, config.l2_line, config.l2_assoc, "l2",
                        track_dirty=track_dirty)
        self.dram = DRAM(config.dram_banks, config.dram_lat, config.dram_row_hit_lat)
        self.memctrl = MemoryController(self.dram, config.bus_cycles, config.mc_queue_depth)
        self._inflight: Dict[int, float] = {}
        # Min-heap of (completion, line) mirroring ``_inflight`` inserts,
        # so pruning pops only completed entries instead of rebuilding the
        # whole table (which is quadratic when the bus saturates and no
        # entry is actually prunable).
        self._inflight_heap: List[Tuple[float, int]] = []

        self.nextline: Optional[NextLinePrefetcher] = (
            NextLinePrefetcher(config.il1_line)
            if config.enable_nextline_prefetch else None
        )
        self.stride: Optional[StridePrefetcher] = (
            StridePrefetcher(degree=config.prefetch_degree, line_size=config.dl1_line)
            if config.enable_stride_prefetch else None
        )
        self.itlb: Optional[TLB] = (
            TLB(config.tlb_entries, walk_latency=config.tlb_walk_lat)
            if config.enable_tlb else None
        )
        self.dtlb: Optional[TLB] = (
            TLB(config.tlb_entries, walk_latency=config.tlb_walk_lat)
            if config.enable_tlb else None
        )
        self.prefetch_fills = 0
        #: Level that serviced the most recent access routed through the
        #: L1D/L2 path ("dl1", "l2" or "dram").  Cycle attribution reads
        #: it immediately after :meth:`load`; it is only meaningful there.
        self.last_level = "dl1"

    # -- internals ---------------------------------------------------------

    def _l2_fill(self, addr: int, time: float) -> float:
        """Access memory for an L2 miss, merging with in-flight fills."""
        line = self.l2.line_of(addr)
        inflight = self._inflight
        ready = inflight.get(line)
        if ready is not None and ready > time:
            return ready
        done = self.memctrl.access(addr, time)
        inflight[line] = done
        heapq.heappush(self._inflight_heap, (done, line))
        if len(inflight) > _INFLIGHT_LIMIT:
            # Drop every completed fill (ready <= now), exactly as the
            # old full-table rebuild did, but in O(log n) per removal:
            # each table entry has a heap record carrying its completion
            # time, so popping the heap up to ``time`` visits precisely
            # the prunable entries.  Records superseded by a re-fill of
            # the same line are skipped via the value check.
            heap = self._inflight_heap
            while heap and heap[0][0] <= time:
                ready, stale_line = heapq.heappop(heap)
                if inflight.get(stale_line) == ready:
                    del inflight[stale_line]
        return done

    def _l2_access(self, addr: int, time: float, write: bool = False) -> float:
        """L2 lookup at ``time``; returns data-ready time."""
        if self.l2.access(addr, write=write):
            self.last_level = "l2"
            return time + self.config.l2_lat
        self._drain_writeback(self.l2, time)
        self.last_level = "dram"
        return self._l2_fill(addr, time + self.config.l2_lat)

    def _drain_writeback(self, cache: Cache, time: float) -> None:
        """Push a just-evicted dirty line down the hierarchy (bandwidth only)."""
        if not cache.track_dirty or cache.last_writeback < 0:
            return
        victim = cache.last_writeback
        cache.last_writeback = -1
        if cache is self.dl1:
            # D-L1 victim is written into the L2.
            if not self.l2.access(victim, write=True):
                self._drain_writeback(self.l2, time)
                self._l2_fill(victim, time)
        else:
            # L2 victim goes to memory; commit-path traffic, non-blocking.
            self.memctrl.access(victim, time)

    def _prefetch_into_l2(self, lines, time: float) -> None:
        """Issue prefetch requests down the L2 path (bandwidth-consuming)."""
        for line_addr in lines:
            if not self.l2.access(line_addr):
                self._drain_writeback(self.l2, time)
                self._l2_fill(line_addr, time)
                self.prefetch_fills += 1

    # -- access paths ---------------------------------------------------------

    def fetch(self, pc: int, time: float) -> float:
        """Instruction-line fetch issued at ``time``; returns line-ready time.

        An L1I hit costs nothing beyond the pipelined fetch stage itself.
        """
        if self.itlb is not None:
            time += self.itlb.access(pc)
        if self.il1.access(pc):
            return time
        if self.nextline is not None:
            self._prefetch_into_l2(self.nextline.on_miss(pc), time)
        return self._l2_access(pc, time)

    def load(self, addr: int, time: float, pc: int = 0) -> float:
        """Data load issued at ``time``; returns data-ready time."""
        if self.dtlb is not None:
            time += self.dtlb.access(addr)
        if self.stride is not None:
            self._prefetch_into_l2(self.stride.on_access(pc, addr), time)
        if self.dl1.access(addr):
            self.last_level = "dl1"
            return time + self.config.dl1_lat
        self._drain_writeback(self.dl1, time)
        return self._l2_access(addr, time + self.config.dl1_lat)

    def load_batch(self, addrs: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Data loads for a whole address stream; returns data-ready times.

        Bitwise-identical to calling :meth:`load` once per ``(addr, time)``
        pair in order.  The L1/L2 hit/miss outcome of a plain-LRU cache
        does not depend on access *times*, only on the address order, so
        both levels are resolved with the batched LRU engine and only the
        L2 misses — whose latency flows through the time-dependent memory
        controller, DRAM and MSHR state — are replayed scalar, in the same
        global order the scalar loop would issue them.

        Configurations with time-coupled lookups (stride prefetch, dirty
        writebacks) or non-LRU policies fall back to the scalar oracle.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        times = np.asarray(times, dtype=float)
        if addrs.shape != times.shape or addrs.ndim != 1:
            raise ValueError("addrs and times must be matching 1-D arrays")
        n = len(addrs)
        if n == 0:
            return np.zeros(0)
        if (
            self.stride is not None
            or self.config.writeback
            or self.dl1.policy != "lru"
            or self.l2.policy != "lru"
        ):
            return self._load_batch_oracle(addrs, times)
        if self.dtlb is not None:
            times = times + self.dtlb.access_batch(addrs)
        dl1_lat = self.config.dl1_lat
        out = np.empty(n)
        dl1_hit = self.dl1.access_batch(addrs)
        out[dl1_hit] = times[dl1_hit] + dl1_lat
        miss = np.flatnonzero(~dl1_hit)
        if miss.size:
            l2_lat = self.config.l2_lat
            miss_addrs = addrs[miss]
            l2_times = times[miss] + dl1_lat
            l2_hit = self.l2.access_batch(miss_addrs)
            out[miss[l2_hit]] = l2_times[l2_hit] + l2_lat
            fill = np.flatnonzero(~l2_hit)
            if fill.size:
                fills = np.empty(fill.size)
                fill_times = (l2_times[fill] + l2_lat).tolist()
                for j, (addr, t) in enumerate(
                    zip(miss_addrs[fill].tolist(), fill_times)
                ):
                    fills[j] = self._l2_fill(addr, t)
                out[miss[fill]] = fills
        return out

    def _load_batch_oracle(self, addrs: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Per-element reference path for :meth:`load_batch`."""
        out = np.empty(len(addrs))
        for i, (addr, t) in enumerate(zip(addrs.tolist(), times.tolist())):
            out[i] = self.load(addr, t)
        return out

    def store(self, addr: int, time: float, pc: int = 0) -> float:
        """Data store performed at ``time`` (post-commit, write-allocate).

        Returns the time the line is owned; commit does not wait on it (a
        store buffer is assumed), but misses consume L2/memory bandwidth and
        so delay later loads.
        """
        if self.dtlb is not None:
            time += self.dtlb.access(addr)
        if self.stride is not None:
            self._prefetch_into_l2(self.stride.on_access(pc, addr), time)
        if self.dl1.access(addr, write=True):
            return time + self.config.dl1_lat
        self._drain_writeback(self.dl1, time)
        return self._l2_access(addr, time + self.config.dl1_lat)

    def stats(self) -> Dict[str, float]:
        """Per-structure access/miss statistics."""
        out = {
            "il1_accesses": self.il1.accesses,
            "il1_miss_rate": self.il1.miss_rate,
            "dl1_accesses": self.dl1.accesses,
            "dl1_miss_rate": self.dl1.miss_rate,
            "l2_accesses": self.l2.accesses,
            "l2_miss_rate": self.l2.miss_rate,
            "memory_requests": self.memctrl.requests,
            "mean_queue_delay": self.memctrl.mean_queue_delay,
            "dram_row_hit_rate": self.dram.row_hit_rate,
        }
        if self.config.writeback:
            out["dl1_writebacks"] = self.dl1.writebacks
            out["l2_writebacks"] = self.l2.writebacks
        if self.itlb is not None:
            out["itlb_miss_rate"] = self.itlb.miss_rate
        if self.dtlb is not None:
            out["dtlb_miss_rate"] = self.dtlb.miss_rate
        if self.stride is not None or self.nextline is not None:
            out["prefetch_fills"] = self.prefetch_fills
        return out
