"""Processor configuration: the 9 design parameters plus fixed machine state.

A :class:`ProcessorConfig` is the meeting point between the modeling side
(design points over the paper's Table 1 space) and the simulator.  The nine
variable parameters are exactly the paper's; everything else (widths,
functional-unit counts, associativities, DRAM timing, predictor sizes) is
fixed, mirroring how the paper holds the rest of the machine constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping

#: Number of back-end stages (issue/execute/writeback/commit) assumed when
#: splitting ``pipe_depth`` into front-end and back-end portions.
BACKEND_STAGES = 4


@dataclass(frozen=True)
class ProcessorConfig:
    """Full configuration of the simulated superscalar processor.

    The first nine fields are the paper's design parameters (Table 1), with
    the issue-queue and load/store-queue sizes already resolved from
    fractions of the ROB size to absolute entry counts.
    """

    # -- the 9 design parameters -----------------------------------------
    pipe_depth: int = 12
    rob_size: int = 64
    iq_size: int = 32
    lsq_size: int = 32
    l2_size_kb: int = 1024
    l2_lat: int = 12
    il1_size_kb: int = 32
    dl1_size_kb: int = 32
    dl1_lat: int = 2

    # -- fixed machine parameters ------------------------------------------
    fetch_width: int = 4
    commit_width: int = 4
    il1_assoc: int = 2
    il1_line: int = 64
    dl1_assoc: int = 4
    dl1_line: int = 64
    l2_assoc: int = 8
    l2_line: int = 128
    # Capacity scaling for the simulated L2 (see DESIGN.md): traces here are
    # MinneSPEC-style reductions of full benchmark runs, so the L2 is
    # simulated at 1/2 of its nominal capacity to keep the capacity-to-
    # working-set ratio — and with it the L2-size response shape — faithful
    # to full-length runs on a full-size L2.
    l2_capacity_scale: int = 2
    dram_lat: int = 120  # row-miss access latency at the device
    dram_row_hit_lat: int = 60
    dram_banks: int = 8
    bus_cycles: int = 8  # memory-bus occupancy per cache-line transfer
    mc_queue_depth: int = 16  # memory-controller queue entries
    bpred_entries: int = 4096  # direction-predictor table entries
    bpred_history: int = 10
    bpred_kind: str = "tournament"  # bimodal | gshare | tournament | perceptron
    btb_entries: int = 2048
    num_ialu: int = 4
    num_imult: int = 1
    num_fp: int = 2
    num_mem_ports: int = 2

    # -- substrate extensions (all OFF in the paper reproduction) ----------
    # These exist for the substrate-ablation experiments; the 9-parameter
    # study keeps them disabled so the machine matches the paper's.
    enable_nextline_prefetch: bool = False  # L1I next-line prefetcher
    enable_stride_prefetch: bool = False  # PC-indexed data stride prefetcher
    prefetch_degree: int = 2
    enable_tlb: bool = False  # ITLB/DTLB with page-walk penalty
    tlb_entries: int = 64
    tlb_walk_lat: int = 30
    writeback: bool = False  # dirty-line writeback traffic

    # -- idealisation switches (for CPI-stack / bottleneck analysis) -------
    # Counterfactual machines: each switch removes one class of stalls so
    # its contribution to CPI can be measured by differencing.
    perfect_branch_prediction: bool = False  # no redirects, ever
    perfect_dcache: bool = False  # every load/store hits the D-L1
    perfect_icache: bool = False  # every fetch hits the L1I

    def __post_init__(self) -> None:
        positive = (
            "pipe_depth rob_size iq_size lsq_size l2_size_kb l2_lat "
            "il1_size_kb dl1_size_kb dl1_lat fetch_width commit_width"
        ).split()
        for name in positive:
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.iq_size > self.rob_size or self.lsq_size > self.rob_size:
            raise ValueError("IQ and LSQ cannot exceed the ROB size")

    @property
    def front_depth(self) -> int:
        """Front-end stage count (fetch through rename).

        The paper varies total pipeline depth; the back end is held at
        :data:`BACKEND_STAGES` stages, so extra depth lengthens the front
        end — and with it the branch-misprediction refill penalty.
        """
        return max(1, self.pipe_depth - BACKEND_STAGES)

    @classmethod
    def from_design_point(cls, point: Mapping[str, float], **fixed) -> "ProcessorConfig":
        """Build a configuration from a *resolved* design-point dictionary.

        ``point`` must use the design-space parameter names with queue
        fractions already resolved to absolute sizes (see
        :meth:`repro.core.design_space.DesignSpace.resolve`); any additional
        keyword arguments override fixed machine parameters.
        """
        return cls(
            pipe_depth=int(round(point["pipe_depth"])),
            rob_size=int(round(point["rob_size"])),
            iq_size=int(round(point["iq_frac"])),
            lsq_size=int(round(point["lsq_frac"])),
            l2_size_kb=int(round(point["l2_size_kb"])),
            l2_lat=int(round(point["l2_lat"])),
            il1_size_kb=int(round(point["il1_size_kb"])),
            dl1_size_kb=int(round(point["dl1_size_kb"])),
            dl1_lat=int(round(point["dl1_lat"])),
            **fixed,
        )

    def as_dict(self) -> Dict[str, int]:
        """All fields as a plain dictionary (stable ordering)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def key(self) -> str:
        """Stable string key identifying this configuration (for caching)."""
        return ",".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))
