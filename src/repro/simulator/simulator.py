"""Simulator facade: the one-call entry point used by the modeling stack."""

from __future__ import annotations

from typing import Mapping, Optional

from repro import obs
from repro.core.design_space import DesignSpace
from repro.simulator.config import ProcessorConfig
from repro.simulator.metrics import SimResult
from repro.simulator.ooo_core import OutOfOrderCore
from repro.simulator.trace import Trace


class Simulator:
    """Detailed superscalar processor simulator.

    A thin facade over :class:`~repro.simulator.ooo_core.OutOfOrderCore`
    that creates a fresh machine per run (simulations are independent, as in
    the paper — each design point is a separate complete run).
    """

    def __init__(self, config: ProcessorConfig):
        self.config = config

    def run(
        self,
        trace: Trace,
        collect_timeline: bool = False,
        collect_attribution: bool = False,
    ) -> SimResult:
        """Simulate ``trace`` to completion on this configuration.

        ``collect_attribution`` enables cycle accounting: the result's
        ``stack`` field carries the folded CPI stack and
        ``last_core.attribution`` the raw per-instruction tags (see
        :mod:`repro.simulator.attribution`).  Like ``collect_timeline``
        it is opt-in, and leaving it off perturbs nothing.
        """
        core = OutOfOrderCore(self.config)
        if not obs.enabled():
            result = core.run(
                trace,
                collect_timeline=collect_timeline,
                collect_attribution=collect_attribution,
            )
            self.last_core = core
            return result
        # Traced path: identical computation, plus a span and throughput
        # metrics.  Timing never feeds back into the simulation.
        with obs.span("simulate", instructions=len(trace)) as sp:
            start = obs.monotonic()
            result = core.run(
                trace,
                collect_timeline=collect_timeline,
                collect_attribution=collect_attribution,
            )
            elapsed = obs.monotonic() - start
            sp.set(cycles=result.cycles, cpi=result.cpi)
            obs.observe("simulate/wall_s", elapsed)
            if elapsed > 0:
                obs.observe("simulate/instructions_per_s", len(trace) / elapsed)
        self.last_core = core
        return result


def simulate(config: ProcessorConfig, trace: Trace) -> SimResult:
    """Convenience wrapper: one simulation run, fresh machine state."""
    return Simulator(config).run(trace)


def simulate_design_point(
    space: DesignSpace,
    point: Mapping[str, float],
    trace: Trace,
    fixed: Optional[Mapping[str, int]] = None,
) -> SimResult:
    """Simulate at a *physical* design point of ``space``.

    Resolves fraction parameters (IQ/LSQ sizes) and constructs the
    processor configuration before running.
    """
    resolved = space.resolve(dict(point))
    config = ProcessorConfig.from_design_point(resolved, **(dict(fixed) if fixed else {}))
    return simulate(config, trace)
