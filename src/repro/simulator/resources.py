"""Functional-unit pools and structural-hazard timing.

Each functional-unit class (integer ALUs, integer multiplier/divider, FP
units, memory ports) owns a small pool of units.  An instruction requesting
a unit at time ``t`` starts on the earliest-free unit no sooner than ``t``;
the unit is then busy for the op's initiation interval (1 for pipelined
units, close to the latency for the unpipelined dividers).
"""

from __future__ import annotations

from typing import Dict

from repro.simulator.config import ProcessorConfig
from repro.simulator import isa


class FUPool:
    """A pool of identical functional units with per-unit busy times."""

    __slots__ = ("name", "_free", "requests", "total_wait")

    def __init__(self, name: str, count: int):
        if count < 1:
            raise ValueError("a pool needs at least one unit")
        self.name = name
        self._free = [0.0] * count
        self.requests = 0
        self.total_wait = 0.0

    def request(self, time: float, interval: int) -> float:
        """Claim a unit at or after ``time``; returns the actual start time."""
        free = self._free
        best = 0
        best_time = free[0]
        for i in range(1, len(free)):
            if free[i] < best_time:
                best_time = free[i]
                best = i
        start = time if time >= best_time else best_time
        free[best] = start + interval
        self.requests += 1
        self.total_wait += start - time
        return start

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.requests if self.requests else 0.0

    def __repr__(self) -> str:
        return f"FUPool({self.name}, units={len(self._free)})"


class ResourceSet:
    """All functional-unit pools of a configuration, keyed by FU class."""

    def __init__(self, config: ProcessorConfig):
        self.pools: Dict[str, FUPool] = {
            "ialu": FUPool("ialu", config.num_ialu),
            "imult": FUPool("imult", config.num_imult),
            "fp": FUPool("fp", config.num_fp),
            "mem": FUPool("mem", config.num_mem_ports),
        }

    def request(self, op: int, time: float) -> float:
        """Claim the right unit for op class ``op``; returns start time."""
        _, interval = isa.OP_TIMING[op]
        return self.pools[isa.FU_CLASS[op]].request(time, interval)

    def stats(self) -> Dict[str, float]:
        return {f"fu_{name}_mean_wait": pool.mean_wait for name, pool in self.pools.items()}
