"""Simulation results: CPI plus the summary statistics used for validation.

:class:`SimResult` is what a simulation run returns — the CPI response the
models are trained on, together with the microarchitectural event rates
(cache miss rates, branch misprediction rate, memory queuing) that the
paper's methodology uses to cross-validate the simulator against an
independent implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one trace on one configuration."""

    cpi: float
    cycles: float
    instructions: int
    il1_miss_rate: float = 0.0
    dl1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    branch_mispredict_rate: float = 0.0
    mean_memory_queue_delay: float = 0.0
    dram_row_hit_rate: float = 0.0
    store_forward_rate: float = 0.0
    energy: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: CPI-stack cycle totals per component (attributed runs only; the
    #: values sum bitwise-exactly to ``cycles``).  ``None`` when the run
    #: did not collect attribution.
    stack: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")
        if self.instructions and self.cpi <= 0:
            raise ValueError("CPI must be positive for a non-empty run")

    @property
    def ipc(self) -> float:
        """Instructions per cycle (reciprocal of CPI)."""
        return 1.0 / self.cpi if self.cpi else 0.0

    @property
    def power(self) -> float:
        """Mean energy per cycle — the power proxy (extension metric)."""
        return self.energy / self.cycles if self.cycles else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = {
            "cpi": self.cpi,
            "cycles": self.cycles,
            "instructions": float(self.instructions),
            "il1_miss_rate": self.il1_miss_rate,
            "dl1_miss_rate": self.dl1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "mean_memory_queue_delay": self.mean_memory_queue_delay,
            "dram_row_hit_rate": self.dram_row_hit_rate,
            "store_forward_rate": self.store_forward_rate,
            "energy": self.energy,
        }
        out.update(self.extra)
        if self.stack is not None:
            for name, value in self.stack.items():
                out[f"stack_{name}"] = value
        return out
