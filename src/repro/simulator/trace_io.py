"""Trace serialization: save and load instruction traces.

Trace-driven simulators live and die by their trace handling.  Traces
round-trip through compressed ``.npz`` archives (numpy's portable format):
a 32k-instruction trace is a few hundred KB on disk and loads in
milliseconds, so generated workloads can be archived, shipped, and diffed
like the PowerPC traces the paper's group kept.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.simulator.trace import Trace

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.array([FORMAT_VERSION]),
        name=np.array([trace.name]),
        op=trace.op,
        src1=trace.src1,
        src2=trace.src2,
        addr=trace.addr,
        pc=trace.pc,
        taken=trace.taken,
    )
    # numpy appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace saved by :func:`save_trace` (validates on load)."""
    with np.load(Path(path), allow_pickle=False) as payload:
        version = int(payload["format_version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace file version {version}")
        trace = Trace(
            op=payload["op"],
            src1=payload["src1"],
            src2=payload["src2"],
            addr=payload["addr"],
            pc=payload["pc"],
            taken=payload["taken"],
            name=str(payload["name"][0]),
        )
    trace.validate()
    return trace
