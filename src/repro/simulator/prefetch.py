"""Hardware prefetchers (substrate extension; disabled in the paper study).

The paper's 9-parameter study holds the rest of the machine fixed and does
not include prefetching; these units exist for the substrate-ablation
experiments, which ask how prefetching reshapes the memory-parameter
sensitivities.  Two classic designs:

* :class:`NextLinePrefetcher` — on every demand miss, fetch the next
  sequential line (used for the instruction stream);
* :class:`StridePrefetcher` — a PC-indexed reference-prediction table
  (Chen & Baer style) that learns per-instruction strides and prefetches
  ``degree`` strides ahead once a stride is confirmed.

Both emit *prefetch requests* (line addresses); the hierarchy issues them
to the L2 path so they consume real bandwidth and can pollute the cache —
the interesting trade-offs are modeled, not assumed away.
"""

from __future__ import annotations

from typing import List, Optional


class NextLinePrefetcher:
    """Sequential next-line prefetcher for the instruction stream."""

    __slots__ = ("line_size", "issued")

    def __init__(self, line_size: int = 64):
        if line_size & (line_size - 1) or line_size <= 0:
            raise ValueError("line_size must be a power of two")
        self.line_size = line_size
        self.issued = 0

    def on_miss(self, addr: int) -> List[int]:
        """Demand miss at ``addr``: prefetch the next sequential line."""
        self.issued += 1
        return [(addr | (self.line_size - 1)) + 1]


class StridePrefetcher:
    """PC-indexed stride prefetcher with 2-state confirmation.

    Each table entry tracks the last address and last stride of the memory
    instruction mapping there; a prefetch is issued only after the same
    stride is seen twice in a row (the "steady" state), avoiding most
    useless prefetches on irregular streams.
    """

    __slots__ = ("entries", "degree", "line_size", "_tags", "_last_addr",
                 "_stride", "_confirmed", "issued")

    def __init__(self, entries: int = 256, degree: int = 2, line_size: int = 64):
        if entries & (entries - 1) or entries <= 0:
            raise ValueError("entries must be a power of two")
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.entries = entries
        self.degree = degree
        self.line_size = line_size
        self._tags = [-1] * entries
        self._last_addr = [0] * entries
        self._stride = [0] * entries
        self._confirmed = [False] * entries
        self.issued = 0

    def on_access(self, pc: int, addr: int) -> List[int]:
        """Observe a load/store; returns line addresses to prefetch."""
        idx = (pc >> 2) & (self.entries - 1)
        if self._tags[idx] != pc:
            self._tags[idx] = pc
            self._last_addr[idx] = addr
            self._stride[idx] = 0
            self._confirmed[idx] = False
            return []
        stride = addr - self._last_addr[idx]
        out: List[int] = []
        if stride != 0 and stride == self._stride[idx]:
            if self._confirmed[idx]:
                last_line = -1
                for i in range(1, self.degree + 1):
                    target = addr + i * stride
                    line = target & ~(self.line_size - 1)
                    if line != last_line and line != (addr & ~(self.line_size - 1)):
                        out.append(line)
                        last_line = line
                self.issued += len(out)
            self._confirmed[idx] = True
        else:
            self._confirmed[idx] = False
        self._stride[idx] = stride
        self._last_addr[idx] = addr
        return out
