"""The out-of-order superscalar timing engine.

For every trace instruction the engine computes five timestamps — fetch,
dispatch, issue, completion, commit — under the full set of machine
constraints:

* **Fetch**: ``fetch_width`` instructions per cycle; an L1I line change
  probes the instruction cache and a miss stalls fetch until the line
  returns; a branch misprediction or BTB miss restarts fetch at the
  branch's resolution time.
* **Dispatch**: fetch plus the front-end depth (rename/decode stages, which
  grow with the paper's ``pipe_depth`` parameter), gated by free ROB, issue
  queue and LSQ entries — an entry frees when the instruction occupying it
  issues (IQ) or commits (ROB, LSQ).
* **Issue**: out of order, when both operands are complete and a functional
  unit of the right class is free (dividers are unpipelined).
* **Completion**: issue plus the op latency; loads walk the cache
  hierarchy (D-L1, unified L2, memory controller, DRAM banks and bus) or
  forward from an in-flight store in the LSQ window.
* **Commit**: in order, ``commit_width`` per cycle; stores update the data
  cache after commit.

Mispredicted branches redirect the front end when they *resolve*
(completion), so the misprediction penalty scales with both pipeline depth
and the latency of the dependence chain feeding the branch — the key
depth x window x memory interaction the paper's non-linear models capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.simulator import isa
from repro.simulator.attribution import (
    COMPONENTS,
    TAG_BASE,
    TAG_BTB,
    TAG_DEP,
    TAG_DL1,
    TAG_DRAM,
    TAG_FU,
    TAG_ICACHE,
    TAG_IQ,
    TAG_L2,
    TAG_LSQ,
    TAG_REDIRECT,
    TAG_ROB,
    TAG_STORE_FORWARD,
    Attribution,
)
from repro.simulator.branch import (
    PREDICT_BTB_MISS,
    PREDICT_MISPREDICT,
    PREDICT_OK,
    BranchUnit,
)
from repro.simulator.config import ProcessorConfig
from repro.simulator.hierarchy import MemoryHierarchy
from repro.simulator.metrics import SimResult
from repro.simulator.power import estimate_energy
from repro.simulator.resources import ResourceSet
from repro.simulator.trace import Trace


@dataclass
class Timeline:
    """Per-instruction timestamps (collected on request, mostly for tests)."""

    fetch: List[float]
    dispatch: List[float]
    issue: List[float]
    complete: List[float]
    commit: List[float]


class OutOfOrderCore:
    """One simulated processor instance (single use per trace run)."""

    def __init__(self, config: ProcessorConfig):
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)
        self.resources = ResourceSet(config)
        self.timeline: Optional[Timeline] = None
        self.attribution: Optional[Attribution] = None
        self.forwarded_loads = 0
        self.load_count = 0

    def _counters(self) -> dict:
        """Raw event counters (snapshotted at the warmup boundary)."""
        h = self.hierarchy
        return {
            "il1_acc": h.il1.accesses,
            "il1_miss": h.il1.misses,
            "dl1_acc": h.dl1.accesses,
            "dl1_miss": h.dl1.misses,
            "l2_acc": h.l2.accesses,
            "l2_miss": h.l2.misses,
            "mem_req": h.memctrl.requests,
            "queue_delay": h.memctrl.total_queue_delay,
            "dram_acc": h.dram.accesses,
            "dram_rowhit": h.dram.row_hits,
            "branches": self.branch_unit.conditional,
            "mispredicts": self.branch_unit.mispredicted,
            "loads": self.load_count,
            "forwarded": self.forwarded_loads,
        }

    def run(
        self,
        trace: Trace,
        collect_timeline: bool = False,
        warmup: Optional[int] = None,
        collect_attribution: bool = False,
    ) -> SimResult:
        """Simulate ``trace`` to completion and return the results.

        Parameters
        ----------
        trace:
            The instruction trace.
        collect_timeline:
            Record per-instruction timestamps in :attr:`timeline`.
        warmup:
            Number of leading instructions excluded from the reported CPI
            and event rates (caches and predictors warm during them).
            Defaults to one eighth of the trace; pass 0 to measure from a
            cold machine.
        collect_attribution:
            Tag each committed instruction with the binding constraint on
            its commit gap and fold the tags into a CPI stack (see
            :mod:`repro.simulator.attribution`); raw tags land in
            :attr:`attribution`, the folded stack in the result's
            ``stack`` field.  Off by default; the untagged path is
            bitwise-identical with the flag off.
        """
        n = len(trace)
        if n == 0:
            # Keep the result shape consistent with a non-empty run: the
            # event-count extras exist (at zero) and, when attribution was
            # requested, so does an all-zero stack.
            if collect_timeline:
                self.timeline = Timeline([], [], [], [], [])
            return SimResult(
                cpi=0.0,
                cycles=0.0,
                instructions=0,
                extra={
                    "il1_accesses": 0.0,
                    "dl1_accesses": 0.0,
                    "l2_accesses": 0.0,
                    "memory_requests": 0.0,
                },
                stack=(
                    {name: 0.0 for name in COMPONENTS}
                    if collect_attribution else None
                ),
            )
        if warmup is None:
            warmup = n // 8
        if warmup >= n:
            raise ValueError("warmup must leave at least one measured instruction")

        cfg = self.config
        hier = self.hierarchy
        bru = self.branch_unit
        fus = self.resources

        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        perfect_bpred = cfg.perfect_branch_prediction
        perfect_dcache = cfg.perfect_dcache
        perfect_icache = cfg.perfect_icache
        dl1_lat = float(cfg.dl1_lat)
        front = cfg.front_depth
        rob = cfg.rob_size
        iq = cfg.iq_size
        lsq = cfg.lsq_size
        line_bits = hier.il1.line_bits
        op_timing = isa.OP_TIMING
        load_op, store_op = isa.LOAD, isa.STORE
        branch_op, jump_op = isa.BRANCH, isa.JUMP

        complete = [0.0] * n
        commit = [0.0] * n
        issue_at = [0.0] * n
        mem_commit: List[float] = []  # commit times of memory ops, in order
        store_buf = {}  # addr -> (mem index, data-ready time)
        mem_count = 0

        fetch_cycle = 0.0
        slots = 0
        cur_line = -1
        warm_counters = self._counters() if warmup == 0 else None
        warm_commit = 0.0

        if collect_timeline:
            tl = Timeline([], [], [], [], [])

        # Cycle-attribution state.  ``fetch_tag`` explains the current
        # value of ``fetch_cycle`` (base advance, I-cache stall, redirect
        # or BTB bubble); ``redirect_pending`` marks the refill window
        # after a front-end restart so the I-cache miss it forces stays
        # attributed to the redirect.  The plain state assignments below
        # run unconditionally (cheap stores, no numerics); everything
        # with per-instruction cost is gated on ``collect_attribution``.
        fetch_tag = TAG_BASE
        redirect_pending = False
        if collect_attribution:
            attr_tags: List[int] = []
            exec_level = [0] * n
            level_tag = {"dl1": TAG_DL1, "l2": TAG_L2, "dram": TAG_DRAM}

        # Per-trace invariants: the decoded columns and per-instruction
        # L1I line ids are identical at every design point of a sweep, so
        # they are memoised on the trace rather than recomputed per run.
        ops, src1s, src2s, addrs, pcs, takens = trace.columns()
        pc_line = trace.pc_lines(line_bits)

        for i, (op, s1, s2, addr, pc, taken, line) in enumerate(
            zip(ops, src1s, src2s, addrs, pcs, takens, pc_line)
        ):
            # ---- fetch -------------------------------------------------
            if slots >= fetch_width:
                fetch_cycle += 1.0
                slots = 0
                fetch_tag = TAG_BASE
                redirect_pending = False
            if line != cur_line:
                cur_line = line
                if not perfect_icache:
                    ready = hier.fetch(pc, fetch_cycle)
                    if ready > fetch_cycle:
                        fetch_cycle = ready
                        slots = 0
                        if not redirect_pending:
                            fetch_tag = TAG_ICACHE
                    redirect_pending = False
            fetch_time = fetch_cycle
            cause_fetch = fetch_tag
            slots += 1

            # ---- dispatch (ROB / IQ / LSQ allocation) ----------------------
            dispatch = fetch_time + front
            if i >= rob:
                t = commit[i - rob] + 1.0
                if t > dispatch:
                    dispatch = t
            if i >= iq:
                t = issue_at[i - iq] + 1.0
                if t > dispatch:
                    dispatch = t
            is_mem = op == load_op or op == store_op
            if is_mem and mem_count >= lsq:
                t = mem_commit[mem_count - lsq] + 1.0
                if t > dispatch:
                    dispatch = t

            # ---- issue (operands + functional unit) -----------------------
            issue = dispatch + 1.0
            if s1:
                t = complete[i - s1]
                if t > issue:
                    issue = t
            if s2:
                t = complete[i - s2]
                if t > issue:
                    issue = t
            start = fus.request(op, issue)
            issue_at[i] = start

            # ---- execute ----------------------------------------------------
            exec_tag = TAG_DEP
            if op == load_op:
                self.load_count += 1
                fwd = store_buf.get(addr)
                if perfect_dcache:
                    comp = start + dl1_lat
                    exec_tag = TAG_DL1
                elif fwd is not None and mem_count - fwd[0] <= lsq:
                    # Store-to-load forwarding within the LSQ window.
                    comp = (start if start >= fwd[1] else fwd[1]) + 1.0
                    self.forwarded_loads += 1
                    exec_tag = TAG_STORE_FORWARD
                else:
                    comp = hier.load(addr, start, pc)
                    if collect_attribution:
                        exec_tag = level_tag[hier.last_level]
            elif op == store_op:
                comp = start + 1.0  # address generation; data drains post-commit
                store_buf[addr] = (mem_count, comp)
                if len(store_buf) > 4 * lsq + 64:
                    floor = mem_count - lsq
                    store_buf = {a: v for a, v in store_buf.items() if v[0] >= floor}
            else:
                comp = start + op_timing[op][0]
            complete[i] = comp

            # ---- control resolution -------------------------------------
            if op == branch_op or op == jump_op:
                outcome = bru.predict(pc, taken, op == branch_op)
                if perfect_bpred:
                    outcome = PREDICT_OK  # oracle front end: never redirect
                if outcome == PREDICT_MISPREDICT:
                    # Redirect: fetch restarts when the branch resolves.
                    if comp > fetch_cycle:
                        fetch_cycle = comp
                        fetch_tag = TAG_REDIRECT
                        redirect_pending = True
                    slots = 0
                    cur_line = -1
                elif outcome == PREDICT_BTB_MISS:
                    # Target computed in the front end: short fetch bubble.
                    fetch_cycle = fetch_time + 2.0
                    slots = 0
                    cur_line = -1
                    fetch_tag = TAG_BTB
                    redirect_pending = True

            # ---- commit (in order, width-limited) -----------------------
            c = comp + 1.0
            if i > 0 and commit[i - 1] > c:
                c = commit[i - 1]
            if i >= commit_width and commit[i - commit_width] + 1.0 > c:
                c = commit[i - commit_width] + 1.0
            commit[i] = c
            if collect_attribution:
                # Binding-constraint descent: re-derive which candidate of
                # each max-of-candidates above actually produced its stage
                # time (same values, same strict-> tie-breaks), walking
                # commit -> completion -> FU -> operands -> dispatch ->
                # front end until the binding constraint names a component.
                # ``mem_count`` is still pre-increment here, so the LSQ
                # candidate recomputes exactly as at dispatch.
                exec_level[i] = exec_tag
                prev_c = commit[i - 1] if i > 0 else 0.0
                if c == prev_c:
                    tag = TAG_BASE  # zero-width gap: fully hidden
                else:
                    cand = comp + 1.0
                    width_bound = (
                        i >= commit_width and commit[i - commit_width] + 1.0 > cand
                    )
                    # Execution service *visible inside the gap*: the part
                    # of (start, comp] past the previous commit.  Using the
                    # visible portion (not raw latency) keeps back-pressured
                    # single-cycle ops — whose start is already behind
                    # prev_c — descending to the true structural cause.
                    wait = start - prev_c
                    served = comp - (start if wait > 0.0 else prev_c)
                    if width_bound:
                        tag = TAG_BASE  # smooth commit-width-limited flow
                    elif served > 0.0 and served >= wait:
                        # Execution latency dominates the gap: the
                        # instruction's own service time.
                        tag = exec_tag
                    elif start > issue:
                        tag = TAG_FU
                    else:
                        prod = -1
                        icand = dispatch + 1.0
                        if s1 and complete[i - s1] > icand:
                            icand = complete[i - s1]
                            prod = i - s1
                        if s2 and complete[i - s2] > icand:
                            icand = complete[i - s2]
                            prod = i - s2
                        if prod >= 0:
                            # Operand-bound: blame the producer's own
                            # execution (memory level for loads, else dep).
                            tag = exec_level[prod]
                        else:
                            tag = cause_fetch
                            dcand = fetch_time + front
                            if i >= rob and commit[i - rob] + 1.0 > dcand:
                                dcand = commit[i - rob] + 1.0
                                tag = TAG_ROB
                            if i >= iq and issue_at[i - iq] + 1.0 > dcand:
                                dcand = issue_at[i - iq] + 1.0
                                tag = TAG_IQ
                            if (
                                is_mem
                                and mem_count >= lsq
                                and mem_commit[mem_count - lsq] + 1.0 > dcand
                            ):
                                tag = TAG_LSQ
                attr_tags.append(tag)
            if is_mem:
                mem_commit.append(c)
                mem_count += 1
            if op == store_op and not perfect_dcache:
                hier.store(addr, c, pc)

            if i + 1 == warmup:
                warm_counters = self._counters()
                warm_commit = c

            if collect_timeline:
                tl.fetch.append(fetch_time)
                tl.dispatch.append(dispatch)
                tl.issue.append(start)
                tl.complete.append(comp)
                tl.commit.append(c)

        if collect_timeline:
            self.timeline = tl

        stack = None
        if collect_attribution:
            self.attribution = Attribution(
                tags=attr_tags,
                commit=commit,
                warmup=warmup,
                warm_commit=warm_commit,
            )
            stack = self.attribution.stack().as_dict()

        # Measured region: everything after the warmup boundary.
        assert warm_counters is not None
        end = self._counters()
        delta = {k: end[k] - warm_counters[k] for k in end}
        measured_instr = n - warmup
        cycles = commit[-1] + 1.0 - warm_commit

        def rate(num: str, den: str) -> float:
            return delta[num] / delta[den] if delta[den] else 0.0

        full_stats = hier.stats()
        energy = estimate_energy(cfg, n, commit[-1] + 1.0, full_stats, bru.conditional)
        if obs.enabled():
            # Per-simulation instruction/cycle throughput accounting; pure
            # bookkeeping on already-computed values, off the hot loop.
            obs.inc("sim/instructions", measured_instr)
            obs.inc("sim/cycles", cycles)
            if cycles > 0:
                obs.observe("sim/ipc", measured_instr / cycles)
            if stack is not None:
                for name, value in stack.items():
                    if value:
                        obs.inc(f"sim/stack/{name}", value)
        return SimResult(
            cpi=cycles / measured_instr,
            cycles=cycles,
            instructions=measured_instr,
            il1_miss_rate=rate("il1_miss", "il1_acc"),
            dl1_miss_rate=rate("dl1_miss", "dl1_acc"),
            l2_miss_rate=rate("l2_miss", "l2_acc"),
            branch_mispredict_rate=rate("mispredicts", "branches"),
            mean_memory_queue_delay=rate("queue_delay", "mem_req"),
            dram_row_hit_rate=rate("dram_rowhit", "dram_acc"),
            store_forward_rate=rate("forwarded", "loads"),
            energy=energy,
            extra={
                "il1_accesses": float(delta["il1_acc"]),
                "dl1_accesses": float(delta["dl1_acc"]),
                "l2_accesses": float(delta["l2_acc"]),
                "memory_requests": float(delta["mem_req"]),
            },
            stack=stack,
        )
