"""Branch direction and target prediction.

Direction prediction uses a McFarling-style tournament predictor: a
PC-indexed bimodal table (fast-training, captures per-site bias), a gshare
component (global history XOR-folded with the PC, captures correlated
patterns), and a PC-indexed chooser that learns which component to trust per
branch.  Target prediction uses a direct-mapped branch target buffer (BTB);
a taken control transfer whose target is absent from the BTB redirects the
front end just like a direction misprediction.  Unconditional jumps
mispredict only on BTB misses.
"""

from __future__ import annotations

from repro.simulator.config import ProcessorConfig


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class GShare:
    """Gshare direction predictor with 2-bit saturating counters."""

    __slots__ = ("entries", "history_bits", "_table", "_history", "_mask")

    def __init__(self, entries: int = 4096, history_bits: int = 10):
        if not _is_pow2(entries):
            raise ValueError("entries must be a power of two")
        if history_bits < 0:
            raise ValueError("history_bits must be >= 0")
        self.entries = entries
        self.history_bits = history_bits
        self._table = bytearray([2] * entries)  # initialised weakly taken
        self._history = 0
        self._mask = entries - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift the global history."""
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        else:
            if ctr > 0:
                self._table[idx] = ctr - 1
        self._history = ((self._history << 1) | int(taken)) & ((1 << self.history_bits) - 1)


class Bimodal:
    """PC-indexed table of 2-bit saturating counters.

    Trains within a few occurrences of each static branch, capturing
    per-site direction bias; the tournament chooser falls back to it when
    global history carries no signal.
    """

    __slots__ = ("entries", "_table", "_mask")

    def __init__(self, entries: int = 4096):
        if not _is_pow2(entries):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._table = bytearray([2] * entries)
        self._mask = entries - 1

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        else:
            if ctr > 0:
                self._table[idx] = ctr - 1


class Tournament:
    """McFarling-style tournament: bimodal + gshare with a PC-indexed chooser.

    The chooser counter moves toward whichever component was correct when
    the two disagree (>= 2 selects gshare).
    """

    __slots__ = ("bimodal", "gshare", "_chooser", "_mask")

    def __init__(self, entries: int = 4096, history_bits: int = 10):
        self.bimodal = Bimodal(entries)
        self.gshare = GShare(entries, history_bits)
        self._chooser = bytearray([1] * entries)  # weakly prefer bimodal
        self._mask = entries - 1

    def predict(self, pc: int) -> bool:
        if self._chooser[(pc >> 2) & self._mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        p_bim = self.bimodal.predict(pc)
        p_gsh = self.gshare.predict(pc)
        if p_bim != p_gsh:
            idx = (pc >> 2) & self._mask
            ctr = self._chooser[idx]
            if p_gsh == taken:
                if ctr < 3:
                    self._chooser[idx] = ctr + 1
            else:
                if ctr > 0:
                    self._chooser[idx] = ctr - 1
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


class Perceptron:
    """Perceptron branch predictor (Jimenez & Lin, HPCA 2001).

    One small integer weight vector per PC-indexed table entry; the
    prediction is the sign of the dot product of the weights with the
    (bipolar) global history plus a bias weight.  Trains on mispredictions
    or when the output magnitude is below the threshold.  Included as a
    substrate extension for the predictor-family ablation — it captures
    longer history correlations than 2-bit-counter schemes at similar
    storage.
    """

    __slots__ = ("entries", "history_bits", "_weights", "_history", "_mask",
                 "_threshold")

    def __init__(self, entries: int = 256, history_bits: int = 12):
        if not _is_pow2(entries):
            raise ValueError("entries must be a power of two")
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self.entries = entries
        self.history_bits = history_bits
        # weights[i][0] is the bias; the rest pair with history bits.
        self._weights = [[0] * (history_bits + 1) for _ in range(entries)]
        self._history = [1] * history_bits  # bipolar history (+1 taken)
        self._mask = entries - 1
        # Optimal threshold from the paper: 1.93 * h + 14.
        self._threshold = int(1.93 * history_bits + 14)

    def _output(self, pc: int) -> int:
        w = self._weights[(pc >> 2) & self._mask]
        y = w[0]
        hist = self._history
        for i in range(self.history_bits):
            y += w[i + 1] * hist[i]
        return y

    def predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> None:
        y = self._output(pc)
        predicted = y >= 0
        t = 1 if taken else -1
        if predicted != taken or abs(y) <= self._threshold:
            w = self._weights[(pc >> 2) & self._mask]
            limit = 127  # 8-bit saturating weights
            w[0] = max(-limit, min(limit, w[0] + t))
            hist = self._history
            for i in range(self.history_bits):
                w[i + 1] = max(-limit, min(limit, w[i + 1] + t * hist[i]))
        self._history.pop(0)
        self._history.append(t)


class BTB:
    """Direct-mapped branch target buffer (tag-match only; targets implicit)."""

    __slots__ = ("entries", "_tags", "_mask")

    def __init__(self, entries: int = 512):
        if not _is_pow2(entries):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._tags = [-1] * entries
        self._mask = entries - 1

    def lookup(self, pc: int) -> bool:
        idx = (pc >> 2) & self._mask
        return self._tags[idx] == pc

    def insert(self, pc: int) -> None:
        self._tags[(pc >> 2) & self._mask] = pc


#: Outcomes of :meth:`BranchUnit.predict`.
PREDICT_OK = 0  # no front-end disturbance
PREDICT_BTB_MISS = 1  # direction right, target unknown: short fetch bubble
PREDICT_MISPREDICT = 2  # direction wrong: redirect at branch resolution


def make_direction_predictor(config: ProcessorConfig):
    """Build the configured direction predictor (``bpred_kind``)."""
    kind = config.bpred_kind
    if kind == "bimodal":
        return Bimodal(config.bpred_entries)
    if kind == "gshare":
        return GShare(config.bpred_entries, config.bpred_history)
    if kind == "tournament":
        return Tournament(config.bpred_entries, config.bpred_history)
    if kind == "perceptron":
        # Perceptron entries are ~weights-vector sized; scale the table so
        # total storage stays comparable to the counter-based schemes.
        entries = max(64, config.bpred_entries // 16)
        return Perceptron(entries, history_bits=max(config.bpred_history, 8))
    raise ValueError(f"unknown bpred_kind {kind!r}")


class BranchUnit:
    """Front-end branch prediction: direction + target, with statistics."""

    def __init__(self, config: ProcessorConfig):
        self.predictor = make_direction_predictor(config)
        self.btb = BTB(config.btb_entries)
        self.conditional = 0
        self.mispredicted = 0
        self.btb_misses = 0

    def predict(self, pc: int, taken: bool, conditional: bool) -> int:
        """Predict and train on one control instruction.

        Returns one of :data:`PREDICT_OK` (fall through),
        :data:`PREDICT_BTB_MISS` (taken transfer whose target was not in
        the BTB -- a short fetch bubble while the target is computed), or
        :data:`PREDICT_MISPREDICT` (wrong direction -- the front end
        restarts when the branch resolves).
        """
        outcome = PREDICT_OK
        if conditional:
            self.conditional += 1
            predicted = self.predictor.predict(pc)
            self.predictor.update(pc, taken)
            if predicted != taken:
                outcome = PREDICT_MISPREDICT
                self.mispredicted += 1
        if taken:
            if outcome == PREDICT_OK and not self.btb.lookup(pc):
                outcome = PREDICT_BTB_MISS
                self.btb_misses += 1
            self.btb.insert(pc)
        return outcome

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicted / self.conditional if self.conditional else 0.0
