"""Instruction and data TLBs (substrate extension; off in the paper study).

Fully associative, true-LRU translation lookaside buffers with a fixed
page-walk penalty on a miss.  The paper's simulator models "all the
performance critical micro-architectural events"; TLBs are part of that
set for large-footprint workloads (mcf's multi-MB graph spans thousands of
pages), so the substrate provides them for the TLB ablation experiment —
they stay disabled in the reproduction runs to keep the 9-parameter study
identical to the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.batchmem import resolve_lru_batch


class TLB:
    """Fully associative TLB with LRU replacement.

    Parameters
    ----------
    entries:
        Number of translations held.
    page_bits:
        log2 of the page size (12 = 4KB pages).
    walk_latency:
        Cycles added to an access on a miss (page-table walk).
    """

    __slots__ = ("entries", "page_bits", "walk_latency", "_lru", "accesses", "misses")

    def __init__(self, entries: int = 64, page_bits: int = 12, walk_latency: int = 30):
        if entries < 1:
            raise ValueError("entries must be >= 1")
        if not 0 < page_bits < 40:
            raise ValueError("page_bits out of range")
        if walk_latency < 0:
            raise ValueError("walk_latency must be non-negative")
        self.entries = entries
        self.page_bits = page_bits
        self.walk_latency = walk_latency
        self._lru: list = []  # LRU order, most recent last
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the added latency (0 on a hit)."""
        page = addr >> self.page_bits
        self.accesses += 1
        lru = self._lru
        try:
            lru.remove(page)
        except ValueError:
            self.misses += 1
            if len(lru) >= self.entries:
                lru.pop(0)
            lru.append(page)
            return self.walk_latency
        lru.append(page)
        return 0

    def access_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Translate a whole address stream; returns per-access latencies.

        Bitwise-identical to calling :meth:`access` per address in order:
        a fully associative TLB is one LRU set, so the batch resolver is
        run with a single set of ``entries`` ways.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        n = len(addrs)
        if n == 0:
            return np.zeros(0)
        pages = addrs >> self.page_bits
        store = [self._lru]
        hits = resolve_lru_batch(
            store, self.entries, pages, np.zeros(n, dtype=np.int64)
        )
        self._lru = store[0]
        self.accesses += n
        self.misses += int(n - hits.sum())
        latency = np.zeros(n)
        latency[~hits] = self.walk_latency
        return latency

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"TLB({self.entries} entries, {1 << self.page_bits}B pages, "
            f"walk={self.walk_latency} cyc)"
        )
