"""Linear regression baseline with two-factor interactions (paper Sec. 4.2).

The comparison baseline follows Joseph et al. (HPCA-12): CPI is modeled as a
linear combination of main effects and all two-parameter interactions of the
coded design variables, and insignificant terms are eliminated by stepwise
variable selection under the AIC criterion.  With ``n = 9`` parameters the
full model has ``1 + 9 + 36 = 46`` terms; small samples cannot support all of
them, so selection runs forward from the intercept when the sample is small
and backward from the full model otherwise — both directions terminate when
no single add/drop improves the criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import Model, design_dot
from repro.models.selection import get_criterion


@dataclass(frozen=True)
class Term:
    """One regression term: the intercept, a main effect, or an interaction."""

    dims: Tuple[int, ...]  # () intercept, (k,) main effect, (k, l) interaction

    def label(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable term label (e.g. ``1``, ``x0``, ``a*c``)."""
        if not self.dims:
            return "1"
        if names is None:
            names = [f"x{k}" for k in range(max(self.dims) + 1)]
        return "*".join(names[k] for k in self.dims)


def candidate_terms(dimension: int, interactions: bool = True) -> List[Term]:
    """Intercept + main effects (+ all two-factor interactions)."""
    terms = [Term(())]
    terms.extend(Term((k,)) for k in range(dimension))
    if interactions:
        for k in range(dimension):
            for l in range(k + 1, dimension):
                terms.append(Term((k, l)))
    return terms


def _columns(points: np.ndarray, terms: Sequence[Term]) -> np.ndarray:
    """Model matrix for ``terms`` over coded variables ``z = 2u - 1``."""
    z = 2.0 * points - 1.0
    cols = []
    for term in terms:
        col = np.ones(len(points))
        for k in term.dims:
            col = col * z[:, k]
        cols.append(col)
    return np.column_stack(cols)


def _fit(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, float]:
    beta, *_ = np.linalg.lstsq(x, y, rcond=None)
    resid = y - x @ beta
    return beta, float(resid @ resid)


class LinearInteractionModel(Model):
    """Fitted linear model over unit-cube points with selected terms."""

    def __init__(self, terms: Sequence[Term], coefficients: np.ndarray, dimension: int):
        if len(terms) != len(coefficients):
            raise ValueError("one coefficient per term is required")
        self.terms = list(terms)
        self.coefficients = np.asarray(coefficients, dtype=float).ravel()
        self.dimension = dimension

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        responses: np.ndarray,
        criterion: str = "aic",
        interactions: bool = True,
    ) -> "LinearInteractionModel":
        """Fit with stepwise AIC variable selection.

        Parameters
        ----------
        points, responses:
            The sample (unit-cube coordinates and CPIs).
        criterion:
            Selection criterion name (the paper's baseline uses AIC).
        interactions:
            Include two-factor interaction candidates (True per the paper).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        responses = np.asarray(responses, dtype=float).ravel()
        if len(points) != len(responses):
            raise ValueError("points and responses must have equal length")
        crit_fn = get_criterion(criterion)
        p, n = points.shape
        candidates = candidate_terms(n, interactions=interactions)
        full = _columns(points, candidates)

        def score(active: List[int]) -> float:
            if not active:
                return crit_fn(p, float(responses @ responses), 0)
            if len(active) >= p - 1:
                return np.inf
            _, sse = _fit(full[:, active], responses)
            return crit_fn(p, sse, len(active))

        # Seed: full model when the sample supports it, else intercept only.
        if p > len(candidates) + 5:
            active = list(range(len(candidates)))
        else:
            active = [0]
        current = score(active)

        improved = True
        while improved:
            improved = False
            best_move: Optional[Tuple[str, int, float]] = None
            for idx in range(len(candidates)):
                if idx in active:
                    if idx == 0:
                        continue  # keep the intercept
                    trial = [a for a in active if a != idx]
                    value = score(trial)
                    if value < current and (best_move is None or value < best_move[2]):
                        best_move = ("drop", idx, value)
                else:
                    trial = active + [idx]
                    value = score(trial)
                    if value < current and (best_move is None or value < best_move[2]):
                        best_move = ("add", idx, value)
            if best_move is not None:
                op, idx, value = best_move
                if op == "drop":
                    active = [a for a in active if a != idx]
                else:
                    active = sorted(active + [idx])
                current = value
                improved = True

        beta, _ = _fit(full[:, active], responses)
        return cls([candidates[i] for i in active], beta, dimension=n)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Model output over the selected terms at unit-cube points.

        Batch-size-stable via :func:`repro.models.base.design_dot`: the
        same bits for one point or ten thousand.
        """
        points = self._as_points(points, self.dimension)
        return design_dot(_columns(points, self.terms), self.coefficients)

    def diagnostics(self) -> dict:
        """Structure numbers for the model card: term counts by order."""
        orders = [len(t.dims) for t in self.terms]
        return {
            "family": "linear",
            "dimension": self.dimension,
            "num_terms": len(self.terms),
            "main_effects": sum(1 for o in orders if o == 1),
            "interactions": sum(1 for o in orders if o == 2),
            "coefficient_l2": float(
                np.sqrt(self.coefficients @ self.coefficients)
            ),
        }

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        """The fitted equation as text (terms and coefficients)."""
        parts = [
            f"{coef:+.4f}*{term.label(names)}"
            for term, coef in zip(self.terms, self.coefficients)
        ]
        return "CPI = " + " ".join(parts)

    def __repr__(self) -> str:
        return f"LinearInteractionModel(terms={len(self.terms)}, n={self.dimension})"
