"""Artificial neural network baseline (the Ipek et al. related-work model).

The paper's related work cites Ipek et al. (ASPLOS 2006), who predict
performance across architectural design spaces with artificial neural
networks.  This module implements that family from scratch with numpy: a
fully connected network with one or two tanh hidden layers, trained by Adam
on mean-squared error, with target standardisation and deterministic
initialisation.

It deliberately mirrors their setup at small scale (the design-space
samples here are tens to hundreds of points), so it can stand next to the
RBF and spline models in the model-family comparison experiments.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.models.base import Model, layer_dot
from repro.util.rng import make_rng


class MLPModel(Model):
    """Feed-forward tanh network trained with Adam."""

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        biases: Sequence[np.ndarray],
        y_mean: float,
        y_std: float,
        dimension: int,
    ):
        self.weights = [np.asarray(w, dtype=float) for w in weights]
        self.biases = [np.asarray(b, dtype=float) for b in biases]
        self.y_mean = y_mean
        self.y_std = y_std
        self.dimension = dimension

    def _forward(self, x: np.ndarray) -> np.ndarray:
        # Inference-only forward pass (training keeps its own inline BLAS
        # loop): layer_dot keeps each row's bits independent of batch size.
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = layer_dot(h, w) + b
            if i < last:
                h = np.tanh(h)
        return h[:, 0]

    def predict(self, points: np.ndarray) -> np.ndarray:
        points = self._as_points(points, self.dimension)
        return self._forward(points) * self.y_std + self.y_mean

    def diagnostics(self) -> dict:
        """Structure numbers for the model card: layer sizes and weight norm."""
        sizes = [self.weights[0].shape[0]] + [w.shape[1] for w in self.weights]
        total = sum(w.size for w in self.weights) + sum(b.size for b in self.biases)
        norm2 = sum(float((w * w).sum()) for w in self.weights)
        return {
            "family": "mlp",
            "dimension": self.dimension,
            "layer_sizes": sizes,
            "num_parameters": int(total),
            "weight_l2": float(np.sqrt(norm2)),
        }

    def __repr__(self) -> str:
        sizes = [self.weights[0].shape[0]] + [w.shape[1] for w in self.weights]
        return f"MLPModel(layers={sizes})"

    # -- training ---------------------------------------------------------

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        responses: np.ndarray,
        hidden: Tuple[int, ...] = (16,),
        epochs: int = 4000,
        learning_rate: float = 0.01,
        weight_decay: float = 1e-4,
        seed: int = 0,
    ) -> "MLPModel":
        """Train on a (small) design sample.

        Full-batch Adam with weight decay; the target is standardised so
        the learning rate is scale-free.  Training is deterministic given
        ``seed``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        responses = np.asarray(responses, dtype=float).ravel()
        if len(points) != len(responses):
            raise ValueError("points and responses must have equal length")
        if len(points) < 2:
            raise ValueError("need at least two training points")
        p, n = points.shape
        y_mean = float(responses.mean())
        y_std = float(responses.std()) or 1.0
        y = (responses - y_mean) / y_std

        rng = make_rng(seed, "mlp-init", n, hidden)
        sizes = [n] + list(hidden) + [1]
        weights: List[np.ndarray] = []
        biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            weights.append(rng.normal(scale=scale, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))

        # Adam state.
        m_w = [np.zeros_like(w) for w in weights]
        v_w = [np.zeros_like(w) for w in weights]
        m_b = [np.zeros_like(b) for b in biases]
        v_b = [np.zeros_like(b) for b in biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        last = len(weights) - 1
        for step in range(1, epochs + 1):
            # Forward with cached activations.
            activations = [points]
            pre: List[np.ndarray] = []
            h = points
            for i, (w, b) in enumerate(zip(weights, biases)):
                z = h @ w + b
                pre.append(z)
                h = np.tanh(z) if i < last else z
                activations.append(h)
            pred = activations[-1][:, 0]
            grad_out = (2.0 / p) * (pred - y)[:, None]

            # Backward.
            delta = grad_out
            grads_w = [np.zeros_like(w) for w in weights]
            grads_b = [np.zeros_like(b) for b in biases]
            for i in range(last, -1, -1):
                grads_w[i] = activations[i].T @ delta + weight_decay * weights[i]
                grads_b[i] = delta.sum(axis=0)
                if i > 0:
                    delta = (delta @ weights[i].T) * (1.0 - np.tanh(pre[i - 1]) ** 2)

            # Adam update.
            correct1 = 1.0 - beta1**step
            correct2 = 1.0 - beta2**step
            for i in range(len(weights)):
                m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                weights[i] -= learning_rate * (m_w[i] / correct1) / (
                    np.sqrt(v_w[i] / correct2) + eps
                )
                m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                biases[i] -= learning_rate * (m_b[i] / correct1) / (
                    np.sqrt(v_b[i] / correct2) + eps
                )

        return cls(weights, biases, y_mean, y_std, dimension=n)
