"""Versioned, content-addressed registry of fitted model artifacts.

A fitted model is the product of the whole pipeline, yet an anonymous
``model.json`` cannot answer "which fit is this, what replaced it, and is
it worse than the last one?".  The registry does: every ``repro build``
registers its fit under a *content address* (a short SHA-256 of the
model's canonical JSON encoding), keyed by benchmark × family × sample
size × git SHA × design-space hash, together with its model card
(:mod:`repro.obs.modelcard`).  Registrations append to a JSONL index
under the same advisory-flock + atomic-replace discipline as the
simulation cache and run ledger, so concurrent builds never clobber each
other; each ``(benchmark, family, sample_size)`` lineage gets a
monotonically increasing version number, which is what ``repro models
check`` walks to find a fresh fit's predecessor.

Layout under ``results/models`` (honouring ``$REPRO_RESULTS_DIR``)::

    index.jsonl           one record per registration, append-only
    artifacts/<sha>.json  the model, via repro.models.io (hash-verified)
    cards/<sha>.json      the model card, canonical sorted-key JSON

Drift gating compares two fits of the same lineage on a *fixed seeded
probe grid* (no simulation needed) with a MAD-style score — the same
robust-statistics family as the run-history gate — so a silently degraded
refit fails CI even when its headline training error looks fine.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from repro.models.base import Model
from repro.models.io import encode_model, load_model, model_family, save_model
from repro.obs.modelcard import read_card, write_card
from repro.util.rng import make_rng

#: Registry index record schema version.
REGISTRY_SCHEMA_VERSION = 1

#: Default probe-grid size for drift checks.
PROBE_POINTS = 64

#: Default probe-grid seed (a fixed, documented constant: the probe grid
#: must be identical across machines and releases for drift to be
#: meaningful).
PROBE_SEED = 2006

#: Default MAD-style drift tolerance for ``repro models check``.
DRIFT_TOLERANCE = 0.5

_RESULTS_ENV = "REPRO_RESULTS_DIR"


def default_registry_root() -> Path:
    """``results/models``, honouring ``$REPRO_RESULTS_DIR``."""
    return Path(os.environ.get(_RESULTS_ENV, "results")) / "models"


@contextmanager
def _file_lock(path: Path) -> Iterator[None]:
    """Advisory exclusive lock on ``path`` (best-effort without fcntl).

    The cache/ledger discipline restated for the registry: on platforms
    without ``fcntl`` the atomic replace alone still keeps the index
    uncorrupted, merely allowing a concurrent append to need a retry.
    """
    try:
        import fcntl
    except ImportError:  # non-POSIX fallback
        yield
        return
    with open(path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def content_hash(model: Model) -> str:
    """16-hex content address of a model's canonical encoding.

    Hashes the model parameters *and* the attached uncertainty calibration
    (both are part of the artifact's behaviour), but not free-form
    metadata — re-registering the same fit under a different benchmark
    label would still collide, which is exactly what content addressing
    means.
    """
    payload = encode_model(model)
    canonical = json.dumps(
        {"model": payload["model"], "uncertainty": payload["uncertainty"]},
        sort_keys=True,
    )
    return sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RegistryEntry:
    """One registration: the index record in attribute form."""

    sha: str
    family: str
    benchmark: Optional[str]
    sample_size: Optional[int]
    version: int
    seed: Optional[int]
    design_space_hash: Optional[str]
    git_sha: Optional[str]
    created: Optional[str]
    artifact: str  # registry-relative path of the model file
    card: Optional[str]  # registry-relative path of the card file
    mean_error_pct: Optional[float]

    def lineage(self) -> tuple:
        """The key drift checks compare along."""
        return (self.benchmark, self.family, self.sample_size)

    def as_record(self) -> Dict[str, Any]:
        """The JSONL index record for this entry."""
        return {
            "schema": REGISTRY_SCHEMA_VERSION,
            "sha": self.sha,
            "family": self.family,
            "benchmark": self.benchmark,
            "sample_size": self.sample_size,
            "version": self.version,
            "seed": self.seed,
            "design_space_hash": self.design_space_hash,
            "git_sha": self.git_sha,
            "created": self.created,
            "artifact": self.artifact,
            "card": self.card,
            "mean_error_pct": self.mean_error_pct,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RegistryEntry":
        """Rebuild an entry from an index record (lenient on extras)."""
        return cls(
            sha=str(record["sha"]),
            family=str(record.get("family")),
            benchmark=record.get("benchmark"),
            sample_size=record.get("sample_size"),
            version=int(record.get("version", 1)),
            seed=record.get("seed"),
            design_space_hash=record.get("design_space_hash"),
            git_sha=record.get("git_sha"),
            created=record.get("created"),
            artifact=str(record.get("artifact")),
            card=record.get("card"),
            mean_error_pct=record.get("mean_error_pct"),
        )


class ModelRegistry:
    """The on-disk registry rooted at ``root`` (see module docstring)."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_registry_root()

    # -- paths ---------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        """The append-only JSONL index file."""
        return self.root / "index.jsonl"

    def artifact_path(self, sha: str) -> Path:
        """Absolute path of the model file for ``sha``."""
        return self.root / "artifacts" / f"{sha}.json"

    def card_path(self, sha: str) -> Path:
        """Absolute path of the model card for ``sha``."""
        return self.root / "cards" / f"{sha}.json"

    # -- reading -------------------------------------------------------------

    def entries(
        self,
        benchmark: Optional[str] = None,
        family: Optional[str] = None,
        sample_size: Optional[int] = None,
    ) -> List[RegistryEntry]:
        """All index entries in registration order, optionally filtered.

        Reads are lenient like the run ledger: unparseable lines are
        skipped, never fatal.
        """
        if not self.index_path.exists():
            return []
        out: List[RegistryEntry] = []
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict) or "sha" not in record:
                    continue
                entry = RegistryEntry.from_record(record)
                if benchmark is not None and entry.benchmark != benchmark:
                    continue
                if family is not None and entry.family != family:
                    continue
                if sample_size is not None and entry.sample_size != sample_size:
                    continue
                out.append(entry)
        return out

    def latest(
        self,
        benchmark: Optional[str] = None,
        family: Optional[str] = None,
        sample_size: Optional[int] = None,
    ) -> Optional[RegistryEntry]:
        """The most recent matching entry, or ``None``."""
        matches = self.entries(benchmark, family, sample_size)
        return matches[-1] if matches else None

    def predecessor(self, entry: RegistryEntry) -> Optional[RegistryEntry]:
        """The latest *earlier* registration in ``entry``'s lineage."""
        prior = [
            e for e in self.entries()
            if e.lineage() == entry.lineage() and e.version < entry.version
        ]
        return prior[-1] if prior else None

    def find(self, selector: str) -> Optional[RegistryEntry]:
        """Resolve a CLI selector: a SHA prefix or a benchmark name.

        SHA prefixes match the most recent registration first; a bare
        benchmark name resolves to that benchmark's latest entry.
        """
        entries = self.entries()
        for entry in reversed(entries):
            if entry.sha.startswith(selector):
                return entry
        for entry in reversed(entries):
            if entry.benchmark == selector:
                return entry
        return None

    def load(self, entry: RegistryEntry):
        """Load ``entry``'s model, verifying the content address.

        Returns ``(model, parameter_names, metadata)`` exactly like
        :func:`repro.models.io.load_model`; raises ``ValueError`` when the
        artifact's recomputed hash no longer matches the index (artifact
        tampered with or truncated).
        """
        path = self.root / entry.artifact
        model, names, metadata = load_model(path)
        actual = content_hash(model)
        if actual != entry.sha:
            raise ValueError(
                f"artifact {entry.artifact} hash mismatch: index says "
                f"{entry.sha}, content is {actual}"
            )
        return model, names, metadata

    def card(self, entry: RegistryEntry) -> Dict[str, Any]:
        """Load ``entry``'s model card; raises ``ValueError`` when absent."""
        if not entry.card:
            raise ValueError(f"entry {entry.sha} has no model card")
        return read_card(self.root / entry.card)

    # -- writing -------------------------------------------------------------

    def register(
        self,
        model: Model,
        *,
        benchmark: Optional[str] = None,
        sample_size: Optional[int] = None,
        seed: Optional[int] = None,
        design_space_hash: Optional[str] = None,
        git_sha: Optional[str] = None,
        parameter_names: Optional[List[str]] = None,
        metadata: Optional[dict] = None,
        card: Optional[Mapping[str, Any]] = None,
        mean_error_pct: Optional[float] = None,
        now: Optional[str] = None,
    ) -> RegistryEntry:
        """Register a fitted model; returns the new index entry.

        Writes the artifact (via :func:`repro.models.io.save_model`) and
        the card, then appends the index record under the flock+atomic
        discipline; the lineage version is assigned *inside* the lock so
        concurrent registrations of the same lineage get distinct
        versions.  ``now`` is the recorded creation timestamp — injectable
        so the whole registration is byte-deterministic under a pinned
        clock; ``None`` records null rather than reading the real clock.
        Registering is observation only: it never mutates the model.
        """
        sha = content_hash(model)
        family = model_family(model)
        artifact_rel = f"artifacts/{sha}.json"
        card_rel = f"cards/{sha}.json" if card is not None else None

        self.root.mkdir(parents=True, exist_ok=True)
        save_model(model, self._ensure_parent(self.root / artifact_rel),
                   parameter_names=parameter_names, metadata=metadata)
        if card is not None:
            write_card(card, self.root / card_rel)

        lock_path = self.index_path.with_name(self.index_path.name + ".lock")
        with _file_lock(lock_path):
            existing = (self.index_path.read_text(encoding="utf-8")
                        if self.index_path.exists() else "")
            if existing and not existing.endswith("\n"):
                existing += "\n"
            version = 1
            for line in existing.splitlines():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (isinstance(record, dict)
                        and record.get("benchmark") == benchmark
                        and record.get("family") == family
                        and record.get("sample_size") == sample_size):
                    version = max(version, int(record.get("version", 0)) + 1)
            entry = RegistryEntry(
                sha=sha,
                family=family,
                benchmark=benchmark,
                sample_size=sample_size,
                version=version,
                seed=seed,
                design_space_hash=design_space_hash,
                git_sha=git_sha,
                created=now,
                artifact=artifact_rel,
                card=card_rel,
                mean_error_pct=mean_error_pct,
            )
            line = json.dumps(entry.as_record(), sort_keys=True)
            tmp = self.index_path.with_name(
                f"{self.index_path.name}.{os.getpid()}.tmp")
            tmp.write_text(existing + line + "\n", encoding="utf-8")
            os.replace(tmp, self.index_path)
        return entry

    @staticmethod
    def _ensure_parent(path: Path) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        return path


# -- probe grids and drift ----------------------------------------------------


def probe_grid(dimension: int, n: int = PROBE_POINTS,
               seed: int = PROBE_SEED) -> np.ndarray:
    """The fixed seeded unit-cube grid drift checks predict on.

    Deterministic across machines (seeded through
    :func:`repro.util.rng.make_rng`), so two fits — or the same fit on two
    machines — are always compared on identical points.
    """
    rng = make_rng(seed, "models-probe", n, dimension)
    return rng.random((n, dimension))


def probe_predictions(model: Model, n: int = PROBE_POINTS,
                      seed: int = PROBE_SEED) -> np.ndarray:
    """``model``'s predictions on its dimension's probe grid."""
    dimension = getattr(model, "dimension", None)
    if dimension is None:
        raise ValueError("model exposes no dimension; cannot probe")
    return model.predict(probe_grid(int(dimension), n=n, seed=seed))


def drift_report(
    reference: np.ndarray,
    candidate: np.ndarray,
    tolerance: float = DRIFT_TOLERANCE,
) -> Dict[str, Any]:
    """MAD-style drift score between two prediction vectors.

    The score is ``median(|candidate - reference|)`` divided by the median
    absolute deviation of ``reference`` (its natural robust scale, floored
    to avoid zero-division on constant references); ``max_score`` is the
    same normalisation of the worst single point.  ``drifted`` is true
    when the median score exceeds ``tolerance`` — robust to a handful of
    hull-edge points moving, sensitive to a systematic shift, the same
    statistics family as the run-history gate.
    """
    reference = np.asarray(reference, dtype=float).ravel()
    candidate = np.asarray(candidate, dtype=float).ravel()
    if reference.shape != candidate.shape:
        raise ValueError("prediction vectors must have equal length")
    diff = np.abs(candidate - reference)
    scale = float(np.median(np.abs(reference - np.median(reference))))
    scale = max(scale, 1e-12)
    score = float(np.median(diff)) / scale
    max_score = float(diff.max()) / scale if len(diff) else 0.0
    return {
        "points": int(len(diff)),
        "scale": scale,
        "median_abs_diff": float(np.median(diff)) if len(diff) else 0.0,
        "max_abs_diff": float(diff.max()) if len(diff) else 0.0,
        "score": score,
        "max_score": max_score,
        "tolerance": tolerance,
        "drifted": bool(score > tolerance),
    }


# -- probe baselines (the committed CI reference) -----------------------------

#: Probe-baseline document schema version.
BASELINE_SCHEMA_VERSION = 1


def baseline_document(
    model: Model,
    *,
    benchmark: Optional[str] = None,
    sample_size: Optional[int] = None,
    seed: Optional[int] = None,
    n: int = PROBE_POINTS,
    probe_seed: int = PROBE_SEED,
) -> Dict[str, Any]:
    """A committed drift baseline: probe predictions plus identity.

    CI refits the model from scratch and compares its probe predictions
    against this document with :func:`drift_report` — catching silent fit
    degradation without needing the original artifact in the repository.
    """
    predictions = probe_predictions(model, n=n, seed=probe_seed)
    return {
        "schema": BASELINE_SCHEMA_VERSION,
        "family": model_family(model),
        "benchmark": benchmark,
        "sample_size": sample_size,
        "seed": seed,
        "sha": content_hash(model),
        "probe": {"n": n, "seed": probe_seed,
                  "dimension": int(getattr(model, "dimension"))},
        "predictions": [float(v) for v in predictions],
    }


def write_baseline(document: Mapping[str, Any],
                   path: Union[str, Path]) -> Path:
    """Write a probe baseline as canonical sorted-key JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dict(document), indent=1, sort_keys=True,
                               allow_nan=False) + "\n", encoding="utf-8")
    return path


def read_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a probe baseline; raises ``ValueError`` on corrupt files."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"corrupt probe baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or "predictions" not in document:
        raise ValueError(f"corrupt probe baseline {path}: missing predictions")
    return document


def check_against_baseline(
    model: Model,
    baseline: Mapping[str, Any],
    tolerance: float = DRIFT_TOLERANCE,
) -> Dict[str, Any]:
    """Drift report of ``model`` against a probe baseline document."""
    probe = baseline.get("probe") or {}
    n = int(probe.get("n", PROBE_POINTS))
    probe_seed = int(probe.get("seed", PROBE_SEED))
    reference = np.asarray(baseline["predictions"], dtype=float)
    candidate = probe_predictions(model, n=n, seed=probe_seed)
    report = drift_report(reference, candidate, tolerance=tolerance)
    report["baseline_sha"] = baseline.get("sha")
    report["candidate_sha"] = content_hash(model)
    return report
