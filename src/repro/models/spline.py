"""Regression-spline models (the Lee & Brooks related-work baseline).

The paper's related work cites Lee & Brooks (ASPLOS 2006), who model
processor performance with *regression splines*.  This module implements a
MARS-style (Friedman 1991) piecewise-linear spline model so the comparison
can be run here:

* basis functions are hinge pairs ``max(0, x_k - t)`` / ``max(0, t - x_k)``
  at data-driven knots, plus pairwise products of selected hinges
  (two-factor interaction splines);
* a greedy forward pass adds the basis function (or hinge pair) that most
  reduces training error;
* a backward pruning pass deletes terms while a generalised criterion
  (AICc, matching the rest of the library) improves.

Like every model here it operates on unit-cube coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import Model, design_dot
from repro.models.selection import get_criterion


@dataclass(frozen=True)
class Hinge:
    """One hinge factor: ``max(0, s * (x_k - t))`` with sign s in {+1, -1}."""

    dimension: int
    knot: float
    sign: int

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, self.sign * (points[:, self.dimension] - self.knot))

    def label(self) -> str:
        if self.sign > 0:
            return f"h(x{self.dimension}-{self.knot:.2f})"
        return f"h({self.knot:.2f}-x{self.dimension})"


@dataclass(frozen=True)
class SplineTerm:
    """A product of up to ``max_degree`` hinge factors (1 = additive)."""

    hinges: Tuple[Hinge, ...]

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        if not self.hinges:
            return np.ones(len(points))
        out = self.hinges[0].evaluate(points)
        for hinge in self.hinges[1:]:
            out = out * hinge.evaluate(points)
        return out

    def degree(self) -> int:
        return len(self.hinges)

    def label(self) -> str:
        if not self.hinges:
            return "1"
        return "*".join(h.label() for h in self.hinges)


def _fit(matrix: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, float]:
    beta, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    resid = y - matrix @ beta
    return beta, float(resid @ resid)


class SplineModel(Model):
    """Fitted MARS-style regression spline."""

    def __init__(self, terms: Sequence[SplineTerm], coefficients: np.ndarray,
                 dimension: int):
        if len(terms) != len(coefficients):
            raise ValueError("one coefficient per term required")
        self.terms = list(terms)
        self.coefficients = np.asarray(coefficients, dtype=float).ravel()
        self.dimension = dimension

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Sum of hinge-term contributions, batch-size stable
        (:func:`repro.models.base.design_dot`)."""
        points = self._as_points(points, self.dimension)
        matrix = np.column_stack([t.evaluate(points) for t in self.terms])
        return design_dot(matrix, self.coefficients)

    def describe(self) -> str:
        """The fitted spline as text (hinge terms and coefficients)."""
        parts = [
            f"{c:+.4f}*{t.label()}" for t, c in zip(self.terms, self.coefficients)
        ]
        return "y = " + " ".join(parts)

    def diagnostics(self) -> dict:
        """Structure numbers for the model card: term counts by degree."""
        degrees = [t.degree() for t in self.terms]
        return {
            "family": "spline",
            "dimension": self.dimension,
            "num_terms": len(self.terms),
            "additive_terms": sum(1 for d in degrees if d == 1),
            "interaction_terms": sum(1 for d in degrees if d >= 2),
            "coefficient_l2": float(
                np.sqrt(self.coefficients @ self.coefficients)
            ),
        }

    def __repr__(self) -> str:
        return f"SplineModel(terms={len(self.terms)}, n={self.dimension})"

    # -- construction -------------------------------------------------------

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        responses: np.ndarray,
        max_terms: int = 30,
        max_degree: int = 2,
        knots_per_dim: int = 7,
        criterion: str = "aicc",
    ) -> "SplineModel":
        """Greedy forward selection of hinge terms, AICc backward pruning.

        Parameters
        ----------
        points, responses:
            Training sample (unit-cube coordinates).
        max_terms:
            Cap on basis functions added in the forward pass (including the
            intercept).
        max_degree:
            Maximum hinges per term (2 = two-factor interaction splines,
            as in Lee & Brooks).
        knots_per_dim:
            Candidate knots per dimension (interior quantiles of the data).
        criterion:
            Selection criterion for the pruning pass.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        responses = np.asarray(responses, dtype=float).ravel()
        if len(points) != len(responses):
            raise ValueError("points and responses must have equal length")
        p, n = points.shape
        crit_fn = get_criterion(criterion)

        # Candidate knots at interior quantiles of each dimension.
        qs = np.linspace(0.1, 0.9, knots_per_dim)
        knots = [np.unique(np.quantile(points[:, k], qs)) for k in range(n)]

        terms: List[SplineTerm] = [SplineTerm(())]
        matrix = np.ones((p, 1))
        _, best_sse = _fit(matrix, responses)

        # Forward pass: repeatedly add the best hinge pair.  Candidate
        # parents are existing terms (MARS grows interactions by
        # multiplying a hinge into an existing term).
        while len(terms) < max_terms:
            best_add: Optional[Tuple[SplineTerm, SplineTerm]] = None
            best_add_sse = best_sse
            for parent in terms:
                if parent.degree() >= max_degree:
                    continue
                used_dims = {h.dimension for h in parent.hinges}
                for k in range(n):
                    if k in used_dims:
                        continue
                    for t in knots[k]:
                        pair = (
                            SplineTerm(parent.hinges + (Hinge(k, float(t), +1),)),
                            SplineTerm(parent.hinges + (Hinge(k, float(t), -1),)),
                        )
                        cols = [term.evaluate(points) for term in pair]
                        if any(np.allclose(c, 0.0) for c in cols):
                            continue
                        trial = np.column_stack([matrix] + cols)
                        if trial.shape[1] >= p - 1:
                            continue
                        _, sse = _fit(trial, responses)
                        if sse < best_add_sse * (1 - 1e-9):
                            best_add_sse = sse
                            best_add = pair
            if best_add is None:
                break
            terms.extend(best_add)
            matrix = np.column_stack(
                [matrix] + [term.evaluate(points) for term in best_add]
            )
            best_sse = best_add_sse

        # Backward pruning under the criterion.
        def score(active: List[int]) -> float:
            _, sse = _fit(matrix[:, active], responses)
            return crit_fn(p, sse, len(active))

        active = list(range(len(terms)))
        current = score(active)
        improved = True
        while improved and len(active) > 1:
            improved = False
            best_drop = None
            for idx in active[1:]:  # keep the intercept
                trial = [a for a in active if a != idx]
                value = score(trial)
                if value < current:
                    current = value
                    best_drop = idx
                    improved = True
            if best_drop is not None:
                active = [a for a in active if a != best_drop]

        beta, _ = _fit(matrix[:, active], responses)
        return cls([terms[i] for i in active], beta, dimension=n)
