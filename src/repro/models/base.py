"""Common interface for empirical performance models.

All models operate on *unit-cube* design coordinates produced by
:meth:`repro.core.design_space.DesignSpace.encode`; the design space owns the
physical-to-unit transformation (including the paper's log transforms for
cache sizes), so models never see raw parameter values.

Beyond the point prediction, every model can carry an
:class:`Uncertainty` calibration — residual quantiles and the training
hull measured once at fit time by :meth:`Model.calibrate` — and answer
:meth:`Model.predict_with_provenance`: the prediction plus an honest
q10–q90 band and an *extrapolation flag* for points outside the region
the training sample actually covered.  NeuroScalar-style in-the-wild
inference is only trustworthy with exactly these two signals attached,
and the model registry persists the calibration with the artifact so a
reloaded model answers with the same provenance as the freshly fitted
one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: z-value of the standard normal 90th percentile: a ``±z·sigma`` band has
#: the same 80% nominal coverage as the empirical q10–q90 band.
_Z80 = 1.2815515655446004

#: Fraction of each dimension's training span added around the hull before
#: a point counts as extrapolation — an LHS sample of size n leaves gaps of
#: order 1/n at the edges that are interpolation in any practical sense.
_HULL_MARGIN = 0.05


@dataclass(frozen=True)
class Uncertainty:
    """A model's calibration record: residual band and training hull.

    ``lower_offset``/``upper_offset`` are *signed residual quantiles*
    (q10/q90 of ``actual - predicted``): adding them to a prediction gives
    a band whose nominal coverage is 80% on data like the calibration
    sample.  ``sigma`` is the residual standard deviation (the
    residual-sigma alternative band).  ``hull_lower``/``hull_upper`` are
    the margin-expanded per-dimension training bounds; points outside are
    flagged as extrapolation, as are points farther from every RBF center
    than any training point was (``center_distance_cap``, RBF only).
    """

    kind: str  # "loo-quantile" (RBF) or "residual-sigma"
    lower_offset: float
    upper_offset: float
    sigma: float
    residual_quantiles: Tuple[float, float, float]  # q10, q50, q90
    hull_lower: Tuple[float, ...]
    hull_upper: Tuple[float, ...]
    center_distance_cap: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (persisted with registry artifacts)."""
        return {
            "kind": self.kind,
            "lower_offset": self.lower_offset,
            "upper_offset": self.upper_offset,
            "sigma": self.sigma,
            "residual_quantiles": list(self.residual_quantiles),
            "hull_lower": list(self.hull_lower),
            "hull_upper": list(self.hull_upper),
            "center_distance_cap": self.center_distance_cap,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Uncertainty":
        """Rebuild a calibration from its :meth:`as_dict` form."""
        return cls(
            kind=str(payload["kind"]),
            lower_offset=float(payload["lower_offset"]),
            upper_offset=float(payload["upper_offset"]),
            sigma=float(payload["sigma"]),
            residual_quantiles=tuple(
                float(v) for v in payload["residual_quantiles"]
            ),
            hull_lower=tuple(float(v) for v in payload["hull_lower"]),
            hull_upper=tuple(float(v) for v in payload["hull_upper"]),
            center_distance_cap=(
                None if payload.get("center_distance_cap") is None
                else float(payload["center_distance_cap"])
            ),
        )


@dataclass(frozen=True)
class Provenance:
    """One batch of predictions with uncertainty and extrapolation flags.

    ``lower``/``upper`` bound the q10–q90 band around ``values``;
    ``extrapolated[i]`` is true when point ``i`` lies outside the
    calibrated training hull (or, for RBFs, farther from every center
    than the training sample ever was) — the band is not to be trusted
    there, only the flag is.
    """

    values: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    extrapolated: np.ndarray  # bool, per point
    kind: str

    def __len__(self) -> int:
        return len(self.values)


def design_dot(matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Row-wise ``matrix · weights`` whose bits do not depend on row count.

    BLAS picks different accumulation kernels for 1-row and m-row
    matrix-vector products, so ``(Phi @ w)[i]`` and ``Phi[i:i+1] @ w`` can
    differ in the last ulp — which breaks the serving layer's contract
    that a batched prediction is *bitwise-identical* to sequential
    single-point calls.  An elementwise product followed by a per-row
    pairwise sum reduces each row independently with an order fixed by the
    row length alone, so every model family's :meth:`Model.predict` and
    :meth:`Model.predict_batch` agree exactly for any batch size.
    """
    matrix = np.asarray(matrix, dtype=float)
    weights = np.asarray(weights, dtype=float)
    return (matrix * weights).sum(axis=1)


def layer_dot(activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Row-wise ``activations @ weights`` for 2-D weights, batch-size stable.

    The MLP forward pass needs the same row-count-independent guarantee as
    :func:`design_dot` but with a ``(k, h)`` weight matrix; the expanded
    broadcast costs an ``(m, k, h)`` temporary, which is fine at the
    serving layer's scale (hidden widths of tens).
    """
    activations = np.asarray(activations, dtype=float)
    weights = np.asarray(weights, dtype=float)
    return (activations[:, :, None] * weights[None, :, :]).sum(axis=1)


def _residual_band(residuals: np.ndarray) -> Tuple[float, float, float,
                                                   Tuple[float, float, float]]:
    """``(lower_offset, upper_offset, sigma, (q10, q50, q90))`` of residuals.

    The sigma band is centered on the residual *mean* so a biased model
    still gets an honest band, and widened to the empirical quantiles when
    those are wider (heavy-tailed residuals).
    """
    residuals = np.asarray(residuals, dtype=float).ravel()
    q10, q50, q90 = (float(v) for v in
                     np.quantile(residuals, [0.1, 0.5, 0.9]))
    mu = float(residuals.mean())
    sigma = float(residuals.std(ddof=1)) if len(residuals) > 1 else 0.0
    lower = min(mu - _Z80 * sigma, q10)
    upper = max(mu + _Z80 * sigma, q90)
    return lower, upper, sigma, (q10, q50, q90)


def training_hull(points: np.ndarray,
                  margin: float = _HULL_MARGIN) -> Tuple[Tuple[float, ...],
                                                         Tuple[float, ...]]:
    """Margin-expanded axis-aligned bounding box of a training sample."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    pad = (hi - lo) * margin
    return tuple(float(v) for v in lo - pad), tuple(float(v) for v in hi + pad)


class Model(abc.ABC):
    """A fitted predictor mapping unit-cube design points to a response."""

    #: Calibration attached by :meth:`calibrate` (or re-attached by
    #: :func:`repro.models.io.load_model`); ``None`` until calibrated.
    _uncertainty: Optional[Uncertainty] = None

    @abc.abstractmethod
    def predict(self, points: np.ndarray) -> np.ndarray:
        """Predict responses at ``(m, n)`` unit-cube points; returns ``(m,)``."""

    def predict_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised batch prediction: one design-matrix pass for all rows.

        The serving layer's hot path: "CPI at these 10k points" must be one
        matrix operation, not 10k :meth:`predict` calls.  The contract is
        *bitwise equality* with the per-point loop — for every row ``i``,
        ``predict_batch(points)[i] == predict(points[i:i+1])[0]`` exactly
        (the serial≡parallel precedent from the cache and runner layers).

        The default validates the shape and delegates to :meth:`predict`,
        which is already internally vectorised for the linear, spline, MLP
        and RBF families (column construction followed by one matvec whose
        per-row dot products are order-identical for 1 and m rows).
        :class:`~repro.models.tree.RegressionTree` overrides this with an
        index-array descent replacing its per-point Python walk.
        """
        dimension = getattr(self, "dimension", None)
        if dimension is not None:
            points = self._as_points(points, dimension)
        else:
            points = np.atleast_2d(np.asarray(points, dtype=float))
        return self.predict(points)

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.predict(points)

    @property
    def uncertainty(self) -> Optional[Uncertainty]:
        """The attached calibration, or ``None`` when never calibrated."""
        return self._uncertainty

    def attach_uncertainty(self, uncertainty: Optional[Uncertainty]) -> None:
        """Attach a (possibly persisted) calibration record verbatim."""
        self._uncertainty = uncertainty

    def diagnostics(self) -> Dict[str, Any]:
        """Structural diagnostics of the fitted model (JSON-serialisable).

        Every family overrides this with its own structure numbers
        (centers, terms, layers, leaves); the model card embeds the result
        verbatim.  The base implementation reports only what the interface
        guarantees.
        """
        return {"family": type(self).__name__}

    def calibrate(self, points: np.ndarray,
                  responses: np.ndarray) -> Uncertainty:
        """Measure residual quantiles and the training hull; attach them.

        The default calibration uses *training* residuals with a
        residual-sigma band (widened to the empirical q10/q90 when those
        are wider); :class:`~repro.models.rbf.RBFNetwork` overrides this
        with exact leave-one-out residuals, which do not share the
        training fit's optimism.  Returns the attached
        :class:`Uncertainty`.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        responses = np.asarray(responses, dtype=float).ravel()
        residuals = responses - self.predict(points)
        lower, upper, sigma, quantiles = _residual_band(residuals)
        hull_lo, hull_hi = training_hull(points)
        self._uncertainty = Uncertainty(
            kind="residual-sigma",
            lower_offset=lower,
            upper_offset=upper,
            sigma=sigma,
            residual_quantiles=quantiles,
            hull_lower=hull_lo,
            hull_upper=hull_hi,
        )
        return self._uncertainty

    def _extrapolation_flags(self, points: np.ndarray,
                             unc: Uncertainty) -> np.ndarray:
        """Out-of-training-hull flags; families may add their own signal."""
        lo = np.asarray(unc.hull_lower, dtype=float)
        hi = np.asarray(unc.hull_upper, dtype=float)
        return ((points < lo) | (points > hi)).any(axis=1)

    def predict_with_provenance(self, points: np.ndarray) -> Provenance:
        """Predictions with the calibrated q10–q90 band and hull flags.

        Requires a prior :meth:`calibrate` (done automatically by
        ``repro build`` and persisted with registered artifacts); raises
        :class:`RuntimeError` otherwise rather than inventing a band.
        The point predictions go through :meth:`predict_batch`, whose
        bitwise-equality contract keeps them identical to :meth:`predict`
        — provenance is computed *around* the prediction, never inside it.
        """
        unc = self._uncertainty
        if unc is None:
            raise RuntimeError(
                "model is not calibrated; call calibrate(points, responses) "
                "or load a registered artifact carrying its calibration"
            )
        dimension = getattr(self, "dimension", None)
        if dimension is not None:
            points = self._as_points(points, dimension)
        else:
            points = np.atleast_2d(np.asarray(points, dtype=float))
        values = self.predict_batch(points)
        return Provenance(
            values=values,
            lower=values + unc.lower_offset,
            upper=values + unc.upper_offset,
            extrapolated=self._extrapolation_flags(points, unc),
            kind=unc.kind,
        )

    @staticmethod
    def _as_points(points: np.ndarray, dimension: int) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] != dimension:
            raise ValueError(
                f"expected points of shape (m, {dimension}), got {points.shape}"
            )
        return points
