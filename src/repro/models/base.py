"""Common interface for empirical performance models.

All models operate on *unit-cube* design coordinates produced by
:meth:`repro.core.design_space.DesignSpace.encode`; the design space owns the
physical-to-unit transformation (including the paper's log transforms for
cache sizes), so models never see raw parameter values.
"""

from __future__ import annotations

import abc

import numpy as np


class Model(abc.ABC):
    """A fitted predictor mapping unit-cube design points to a response."""

    @abc.abstractmethod
    def predict(self, points: np.ndarray) -> np.ndarray:
        """Predict responses at ``(m, n)`` unit-cube points; returns ``(m,)``."""

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.predict(points)

    @staticmethod
    def _as_points(points: np.ndarray, dimension: int) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] != dimension:
            raise ValueError(
                f"expected points of shape (m, {dimension}), got {points.shape}"
            )
        return points
