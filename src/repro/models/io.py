"""Model serialization: save fitted models, reload them anywhere.

A fitted model is the valuable artifact of the whole procedure — hundreds
of simulations distilled into a few kilobytes.  This module round-trips
the model families through plain JSON (no pickle, so files are portable,
diffable and safe to load), with a format version and the design-space
parameter names recorded for sanity checks at load time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.models.linear import LinearInteractionModel, Term
from repro.models.mlp import MLPModel
from repro.models.rbf import RBFNetwork
from repro.models.spline import Hinge, SplineModel, SplineTerm

FORMAT_VERSION = 1

AnyModel = Union[RBFNetwork, LinearInteractionModel, SplineModel, MLPModel]


def _encode(model: AnyModel) -> dict:
    if isinstance(model, RBFNetwork):
        return {
            "family": "rbf",
            "centers": model.centers.tolist(),
            "radii": model.radii.tolist(),
            "weights": model.weights.tolist(),
        }
    if isinstance(model, LinearInteractionModel):
        return {
            "family": "linear",
            "dimension": model.dimension,
            "terms": [list(t.dims) for t in model.terms],
            "coefficients": model.coefficients.tolist(),
        }
    if isinstance(model, SplineModel):
        return {
            "family": "spline",
            "dimension": model.dimension,
            "terms": [
                [[h.dimension, h.knot, h.sign] for h in t.hinges]
                for t in model.terms
            ],
            "coefficients": model.coefficients.tolist(),
        }
    if isinstance(model, MLPModel):
        return {
            "family": "mlp",
            "dimension": model.dimension,
            "weights": [w.tolist() for w in model.weights],
            "biases": [b.tolist() for b in model.biases],
            "y_mean": model.y_mean,
            "y_std": model.y_std,
        }
    raise TypeError(f"cannot serialise model of type {type(model).__name__}")


def _decode(payload: dict) -> AnyModel:
    family = payload.get("family")
    if family == "rbf":
        return RBFNetwork(
            np.array(payload["centers"]),
            np.array(payload["radii"]),
            np.array(payload["weights"]),
        )
    if family == "linear":
        terms = [Term(tuple(dims)) for dims in payload["terms"]]
        return LinearInteractionModel(
            terms, np.array(payload["coefficients"]), payload["dimension"]
        )
    if family == "spline":
        terms = [
            SplineTerm(tuple(Hinge(int(d), float(k), int(s)) for d, k, s in hinges))
            for hinges in payload["terms"]
        ]
        return SplineModel(terms, np.array(payload["coefficients"]),
                           payload["dimension"])
    if family == "mlp":
        return MLPModel(
            [np.array(w) for w in payload["weights"]],
            [np.array(b) for b in payload["biases"]],
            payload["y_mean"],
            payload["y_std"],
            payload["dimension"],
        )
    raise ValueError(f"unknown model family {family!r}")


def save_model(
    model: AnyModel,
    path: Union[str, Path],
    parameter_names: Optional[List[str]] = None,
    metadata: Optional[dict] = None,
) -> Path:
    """Write ``model`` to ``path`` as JSON.

    ``parameter_names`` (the design space's ordering) and free-form
    ``metadata`` (benchmark, sample size, error report...) are stored
    alongside and returned by :func:`load_model`.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "parameter_names": parameter_names,
        "metadata": metadata or {},
        "model": _encode(model),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_model(path: Union[str, Path]):
    """Load a model saved by :func:`save_model`.

    Returns ``(model, parameter_names, metadata)``.  Raises ``ValueError``
    on unknown format versions or families rather than guessing.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model file version {version!r}")
    model = _decode(payload["model"])
    return model, payload.get("parameter_names"), payload.get("metadata", {})
