"""Model serialization: save fitted models, reload them anywhere.

A fitted model is the valuable artifact of the whole procedure — hundreds
of simulations distilled into a few kilobytes.  This module round-trips
the model families through plain JSON (no pickle, so files are portable,
diffable and safe to load), with a format version and the design-space
parameter names recorded for sanity checks at load time.

Format version 2 adds the ``tree`` family and an optional ``uncertainty``
payload (the :class:`~repro.models.base.Uncertainty` calibration attached
by ``Model.calibrate``), so a reloaded model answers
``predict_with_provenance`` exactly like the freshly fitted one.  Version-1
files load unchanged.  JSON floats round-trip exactly (shortest-repr), so
save→load→predict is bitwise-identical to the in-memory model — the
property :mod:`tests.test_model_io` pins for all five families.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.models.base import Model, Uncertainty
from repro.models.linear import LinearInteractionModel, Term
from repro.models.mlp import MLPModel
from repro.models.rbf import RBFNetwork
from repro.models.spline import Hinge, SplineModel, SplineTerm
from repro.models.tree import RegressionTree

FORMAT_VERSION = 2

#: Versions :func:`load_model` accepts (v1 files predate tree/uncertainty).
SUPPORTED_VERSIONS = (1, 2)

AnyModel = Union[RBFNetwork, LinearInteractionModel, SplineModel, MLPModel,
                 RegressionTree]


def model_family(model: Model) -> str:
    """Short family name (``rbf``/``linear``/``spline``/``mlp``/``tree``)."""
    if isinstance(model, RBFNetwork):
        return "rbf"
    if isinstance(model, LinearInteractionModel):
        return "linear"
    if isinstance(model, SplineModel):
        return "spline"
    if isinstance(model, MLPModel):
        return "mlp"
    if isinstance(model, RegressionTree):
        return "tree"
    raise TypeError(f"cannot serialise model of type {type(model).__name__}")


def _encode(model: AnyModel) -> dict:
    if isinstance(model, RBFNetwork):
        return {
            "family": "rbf",
            "centers": model.centers.tolist(),
            "radii": model.radii.tolist(),
            "weights": model.weights.tolist(),
        }
    if isinstance(model, LinearInteractionModel):
        return {
            "family": "linear",
            "dimension": model.dimension,
            "terms": [list(t.dims) for t in model.terms],
            "coefficients": model.coefficients.tolist(),
        }
    if isinstance(model, SplineModel):
        return {
            "family": "spline",
            "dimension": model.dimension,
            "terms": [
                [[h.dimension, h.knot, h.sign] for h in t.hinges]
                for t in model.terms
            ],
            "coefficients": model.coefficients.tolist(),
        }
    if isinstance(model, MLPModel):
        return {
            "family": "mlp",
            "dimension": model.dimension,
            "weights": [w.tolist() for w in model.weights],
            "biases": [b.tolist() for b in model.biases],
            "y_mean": model.y_mean,
            "y_std": model.y_std,
        }
    if isinstance(model, RegressionTree):
        # A tree is a deterministic function of (points, responses, p_min);
        # storing the sample and rebuilding reproduces it exactly, keeps
        # the file human-readable and avoids a recursive node encoding.
        return {
            "family": "tree",
            "points": model.points.tolist(),
            "responses": model.responses.tolist(),
            "p_min": model.p_min,
        }
    raise TypeError(f"cannot serialise model of type {type(model).__name__}")


def _decode(payload: dict) -> AnyModel:
    family = payload.get("family")
    if family == "rbf":
        return RBFNetwork(
            np.array(payload["centers"]),
            np.array(payload["radii"]),
            np.array(payload["weights"]),
        )
    if family == "linear":
        terms = [Term(tuple(dims)) for dims in payload["terms"]]
        return LinearInteractionModel(
            terms, np.array(payload["coefficients"]), payload["dimension"]
        )
    if family == "spline":
        terms = [
            SplineTerm(tuple(Hinge(int(d), float(k), int(s)) for d, k, s in hinges))
            for hinges in payload["terms"]
        ]
        return SplineModel(terms, np.array(payload["coefficients"]),
                           payload["dimension"])
    if family == "mlp":
        return MLPModel(
            [np.array(w) for w in payload["weights"]],
            [np.array(b) for b in payload["biases"]],
            payload["y_mean"],
            payload["y_std"],
            payload["dimension"],
        )
    if family == "tree":
        return RegressionTree(
            np.array(payload["points"]),
            np.array(payload["responses"]),
            p_min=int(payload["p_min"]),
        )
    raise ValueError(f"unknown model family {family!r}")


def encode_model(model: AnyModel,
                 parameter_names: Optional[List[str]] = None,
                 metadata: Optional[dict] = None) -> dict:
    """The full save payload as a plain dict (what :func:`save_model` writes).

    The registry content-hashes this encoding, so it is the canonical form
    of a fitted model.
    """
    unc = model.uncertainty if isinstance(model, Model) else None
    return {
        "format_version": FORMAT_VERSION,
        "parameter_names": parameter_names,
        "metadata": metadata or {},
        "model": _encode(model),
        "uncertainty": unc.as_dict() if unc is not None else None,
    }


def save_model(
    model: AnyModel,
    path: Union[str, Path],
    parameter_names: Optional[List[str]] = None,
    metadata: Optional[dict] = None,
) -> Path:
    """Write ``model`` to ``path`` as JSON.

    ``parameter_names`` (the design space's ordering) and free-form
    ``metadata`` (benchmark, sample size, error report...) are stored
    alongside and returned by :func:`load_model`.  The model's attached
    uncertainty calibration, if any, is persisted too.
    """
    payload = encode_model(model, parameter_names, metadata)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_model(path: Union[str, Path]):
    """Load a model saved by :func:`save_model`.

    Returns ``(model, parameter_names, metadata)``.  Raises ``ValueError``
    on corrupt files, unknown format versions or families rather than
    guessing; any persisted uncertainty calibration is re-attached.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"corrupt model file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"corrupt model file {path}: not a JSON object")
    version = payload.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported model file version {version!r}")
    try:
        model = _decode(payload["model"])
    except (KeyError, TypeError, IndexError) as exc:
        raise ValueError(f"corrupt model file {path}: {exc}") from exc
    unc_payload = payload.get("uncertainty")
    if unc_payload is not None and isinstance(model, Model):
        try:
            model.attach_uncertainty(Uncertainty.from_dict(unc_payload))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt model file {path}: bad uncertainty payload: {exc}"
            ) from exc
    return model, payload.get("parameter_names"), payload.get("metadata", {})
