"""Regression trees over the design space (paper Sec. 2.4, Eq. 3-7).

A regression tree recursively bifurcates the sample along one input
parameter ``k`` at a boundary ``b``, choosing the ``(k, b)`` pair that
minimises the residual square error

.. math::

    E(k, b) = \\frac{1}{p}\\Big(\\sum_{i \\in S_L} (y_i - \\bar y_L)^2
                              + \\sum_{i \\in S_R} (y_i - \\bar y_R)^2\\Big)

over a discrete search of the ``n`` dimensions and ``p`` sample points.
Splitting continues until every terminal node holds at most ``p_min``
points.  Each node carries the hyper-rectangle of design space it covers
(center and edge lengths), which the RBF construction turns into candidate
basis-function centers and radii.

Parameters that cause the most output variation split earliest and most
often — the basis of the paper's Table 5 and Figure 5 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import Model


@dataclass
class Split:
    """A recorded bifurcation: dimension, boundary value, and tree depth."""

    dimension: int
    value: float
    depth: int
    error: float  # E(k, b) achieved by this split


@dataclass
class TreeNode:
    """A node of the regression tree and its design-space hyper-rectangle."""

    lower: np.ndarray  # hyper-rectangle lower corner (unit coordinates)
    upper: np.ndarray  # hyper-rectangle upper corner
    indices: np.ndarray  # sample indices covered by this node
    mean: float
    depth: int
    split: Optional[Split] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    children: Tuple = field(init=False, repr=False, default=())

    @property
    def center(self) -> np.ndarray:
        """Center of the node's hyper-rectangle."""
        return (self.lower + self.upper) / 2.0

    @property
    def size(self) -> np.ndarray:
        """Edge lengths of the node's hyper-rectangle."""
        return self.upper - self.lower

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree(Model):
    """Recursive binary partition of a sample, minimising within-node variance.

    Parameters
    ----------
    points:
        ``(p, n)`` unit-cube design points.
    responses:
        ``(p,)`` responses (CPI in the paper).
    p_min:
        Maximum number of points allowed in a terminal node; the paper's
        method parameter whose best value is found by experimentation
        (typically 1).
    """

    def __init__(self, points: np.ndarray, responses: np.ndarray, p_min: int = 1):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        responses = np.asarray(responses, dtype=float).ravel()
        if len(points) != len(responses):
            raise ValueError("points and responses must have equal length")
        if len(points) == 0:
            raise ValueError("cannot build a tree from an empty sample")
        if p_min < 1:
            raise ValueError("p_min must be >= 1")
        self.points = points
        self.responses = responses
        self.p_min = p_min
        self._total = len(points)
        self.root = self._build(
            lower=np.zeros(points.shape[1]),
            upper=np.ones(points.shape[1]),
            indices=np.arange(len(points)),
            depth=0,
        )

    # -- construction -------------------------------------------------------

    def _best_split(self, indices: np.ndarray) -> Optional[Tuple[int, float, float]]:
        """Best ``(dimension, boundary, error)`` over all dims and points.

        Uses prefix sums along each sorted dimension so each dimension is
        scanned in O(p log p).  Returns ``None`` when no dimension has two
        distinct values (the node cannot be split).
        """
        x = self.points[indices]
        y = self.responses[indices]
        p = len(indices)
        best: Optional[Tuple[int, float, float]] = None
        for k in range(x.shape[1]):
            order = np.argsort(x[:, k], kind="stable")
            xs = x[order, k]
            ys = y[order]
            # Candidate boundaries lie between consecutive distinct values.
            distinct = np.nonzero(np.diff(xs) > 0)[0]
            if distinct.size == 0:
                continue
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys**2)
            total, total2 = csum[-1], csum2[-1]
            for cut in distinct:
                p_left = cut + 1
                p_right = p - p_left
                sum_l, sum2_l = csum[cut], csum2[cut]
                sse_l = sum2_l - sum_l**2 / p_left
                sum_r, sum2_r = total - sum_l, total2 - sum2_l
                sse_r = sum2_r - sum_r**2 / p_right
                error = (sse_l + sse_r) / self._total
                if best is None or error < best[2]:
                    boundary = (xs[cut] + xs[cut + 1]) / 2.0
                    best = (k, float(boundary), float(error))
        return best

    def _build(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> TreeNode:
        node = TreeNode(
            lower=lower,
            upper=upper,
            indices=indices,
            mean=float(self.responses[indices].mean()),
            depth=depth,
        )
        if len(indices) <= self.p_min:
            return node
        found = self._best_split(indices)
        if found is None:
            return node
        k, boundary, error = found
        node.split = Split(dimension=k, value=boundary, depth=depth + 1, error=error)
        mask = self.points[indices, k] <= boundary
        left_idx = indices[mask]
        right_idx = indices[~mask]
        left_upper = upper.copy()
        left_upper[k] = boundary
        right_lower = lower.copy()
        right_lower[k] = boundary
        node.left = self._build(lower, left_upper, left_idx, depth + 1)
        node.right = self._build(right_lower, upper, right_idx, depth + 1)
        return node

    # -- traversal ------------------------------------------------------------

    def nodes_breadth_first(self) -> List[TreeNode]:
        """All nodes in breadth-first order (root first)."""
        out: List[TreeNode] = []
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            out.append(node)
            if node.left is not None:
                queue.append(node.left)
                queue.append(node.right)
        return out

    def splits(self) -> List[Split]:
        """All splits in breadth-first order — earliest (shallowest) first.

        The paper's Table 5 reports the first few of these as the "most
        significant splitting points".
        """
        return [n.split for n in self.nodes_breadth_first() if n.split is not None]

    def leaves(self) -> List[TreeNode]:
        """All terminal nodes (each holding at most ``p_min`` points)."""
        return [n for n in self.nodes_breadth_first() if n.is_leaf]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Piecewise-constant prediction: the mean of the matching leaf."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        out = np.empty(len(points))
        for i, x in enumerate(points):
            node = self.root
            while not node.is_leaf:
                assert node.split is not None
                if x[node.split.dimension] <= node.split.value:
                    node = node.left
                else:
                    node = node.right
            out[i] = node.mean
        return out

    def predict_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised piecewise-constant prediction via index-array descent.

        Instead of walking the tree once per point, every internal node
        partitions the index array of the points that reached it with one
        boolean mask, and each leaf assigns its mean to its whole cohort at
        once — O(points x depth) ndarray work instead of a Python loop.
        Leaf means are *assigned*, never combined, so the result is
        bitwise-identical to the per-point :meth:`predict` walk.
        """
        points = self._as_points(points, self.dimension)
        out = np.empty(len(points))
        stack: List[Tuple[TreeNode, np.ndarray]] = [
            (self.root, np.arange(len(points)))
        ]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.mean
                continue
            assert node.split is not None and node.left is not None
            mask = points[idx, node.split.dimension] <= node.split.value
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    @property
    def depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max(n.depth for n in self.nodes_breadth_first())

    @property
    def dimension(self) -> int:
        """Number of design-space dimensions the tree partitions."""
        return self.points.shape[1]

    def diagnostics(self) -> dict:
        """Structure numbers for the model card: depth, leaves, splits."""
        return {
            "family": "tree",
            "dimension": self.dimension,
            "p_min": self.p_min,
            "depth": self.depth,
            "num_leaves": len(self.leaves()),
            "num_splits": len(self.splits()),
        }

    def __repr__(self) -> str:
        leaves = len(self.leaves())
        return f"RegressionTree(p={self._total}, p_min={self.p_min}, leaves={leaves})"
