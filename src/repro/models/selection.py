"""Model selection criteria (paper Eq. 9 and classic alternatives).

These criteria trade goodness-of-fit against model complexity; the RBF center
subset and the linear model's variable subset are both chosen to minimise a
criterion.  The paper uses corrected Akaike (AICc); AIC and BIC are provided
for the selection-criterion ablation.

All criteria are computed up to an additive constant (the paper's
"+ constant"), which cancels in comparisons between models fitted on the
same sample.
"""

from __future__ import annotations

import math

_EPS = 1e-300  # guards log(0) when a model interpolates the sample exactly


def _sigma2(sse: float, p: int) -> float:
    return max(sse / p, _EPS)


def aic(p: int, sse: float, m: int) -> float:
    """Akaike information criterion: ``p log(sse/p) + 2 m``."""
    if p <= 0:
        raise ValueError("sample size must be positive")
    return p * math.log(_sigma2(sse, p)) + 2.0 * m


def aicc(p: int, sse: float, m: int) -> float:
    """Corrected AIC (paper Eq. 9).

    .. math:: AIC_c = p \\log(\\hat\\sigma^2) + 2m + \\frac{2m(m+1)}{p - m - 1}

    Returns ``+inf`` when the correction denominator is non-positive
    (``m >= p - 1``), which also prevents the selection from growing models
    past the point where the criterion is defined.
    """
    if p <= 0:
        raise ValueError("sample size must be positive")
    if m >= p - 1:
        return math.inf
    return p * math.log(_sigma2(sse, p)) + 2.0 * m + 2.0 * m * (m + 1) / (p - m - 1)


def bic(p: int, sse: float, m: int) -> float:
    """Bayesian information criterion: ``p log(sse/p) + m log(p)``."""
    if p <= 0:
        raise ValueError("sample size must be positive")
    return p * math.log(_sigma2(sse, p)) + m * math.log(p)


CRITERIA = {"aic": aic, "aicc": aicc, "bic": bic}


def get_criterion(name: str):
    """Look up a criterion function by name (``aic``, ``aicc`` or ``bic``)."""
    try:
        return CRITERIA[name]
    except KeyError:
        raise ValueError(f"unknown criterion {name!r}; choose from {sorted(CRITERIA)}")
