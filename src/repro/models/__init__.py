"""Empirical performance models: regression trees, RBF networks, linear baseline."""

from repro.models.base import Model, Provenance, Uncertainty
from repro.models.mlp import MLPModel
from repro.models.spline import SplineModel
from repro.models.linear import LinearInteractionModel
from repro.models.rbf import RBFNetwork, build_rbf_from_tree, search_rbf_model
from repro.models.selection import aic, aicc, bic
from repro.models.tree import RegressionTree, TreeNode

__all__ = [
    "Model",
    "Provenance",
    "Uncertainty",
    "MLPModel",
    "SplineModel",
    "LinearInteractionModel",
    "RBFNetwork",
    "build_rbf_from_tree",
    "search_rbf_model",
    "aic",
    "aicc",
    "bic",
    "RegressionTree",
    "TreeNode",
]
