"""Radial basis function networks built from regression trees.

This is the paper's core modeling machinery (Sec. 2.3-2.6), a from-scratch
reimplementation of the scheme Orr et al. (2000) call ``rbf_rt``:

* The network computes ``f(x) = sum_j w_j h_j(x)`` (Eq. 1) with Gaussian
  basis functions ``h(x) = exp(-sum_k (x_k - c_k)^2 / r_k^2)`` (Eq. 2) —
  note the per-dimension radius vector, so basis functions are axis-aligned
  ellipsoids, not spheres.
* A regression tree partitions the design space into hyper-rectangles of
  similar CPI; every tree node proposes a candidate RBF centered at its
  hyper-rectangle's center with radii ``r = alpha * s`` (Eq. 8), ``s`` being
  the rectangle's edge lengths.
* A subset of candidates is selected by descending the tree: starting from
  the root, each step considers the 8 include/exclude combinations of a
  node and its two children and keeps the combination that most decreases
  the model selection criterion (AICc, Eq. 9).
* Weights are fitted by linear least squares on the sample.

The method parameters ``p_min`` (tree leaf size) and ``alpha`` (radius
scale) are chosen per benchmark by grid search for the lowest AICc
(:func:`search_rbf_model`), exactly as the paper's Sec. 2.6 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.models.base import (Model, Uncertainty, _residual_band,
                               design_dot, training_hull)
from repro.models.selection import get_criterion
from repro.models.tree import RegressionTree, TreeNode

#: Radii are clipped below this to keep basis functions non-degenerate.
_MIN_RADIUS = 1e-3

#: Slack on the training sample's worst scaled center distance before a
#: query point counts as extrapolation on the distance signal alone.
_CENTER_DISTANCE_SLACK = 1.25


def gaussian_design_matrix(
    points: np.ndarray, centers: np.ndarray, radii: np.ndarray
) -> np.ndarray:
    """Design matrix ``H[i, j] = h_j(x_i)`` for Gaussian RBFs (Eq. 2)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    radii = np.atleast_2d(np.asarray(radii, dtype=float))
    if centers.shape != radii.shape:
        raise ValueError("centers and radii must have matching shapes")
    if centers.shape[0] == 0:
        return np.zeros((len(points), 0))
    diff = points[:, None, :] - centers[None, :, :]
    return _design_from_diff(diff, radii)


def _design_from_diff(diff: np.ndarray, radii: np.ndarray) -> np.ndarray:
    """Design matrix from precomputed ``points - centers`` differences.

    Shared by :func:`gaussian_design_matrix` and the per-tree candidate
    cache so both produce bitwise-identical matrices: ``diff`` is
    radius-independent and can be reused across the alpha grid.
    """
    z = (diff / radii[None, :, :]) ** 2
    return np.exp(-z.sum(axis=2))


def _fit_weights(h: np.ndarray, y: np.ndarray, ridge: float = 1e-9):
    """Least-squares weights with a tiny ridge for numerical conditioning.

    Returns ``(weights, sse)`` where ``sse`` is the residual sum of squares
    on the training sample.
    """
    if h.shape[1] == 0:
        return np.zeros(0), float(np.dot(y, y))
    gram = h.T @ h
    # Strided view of the diagonal; same elementwise add as indexing by
    # diag_indices_from, without rebuilding the index arrays per call.
    gram.flat[:: gram.shape[0] + 1] += ridge
    try:
        weights = np.linalg.solve(gram, h.T @ y)
    except np.linalg.LinAlgError:
        weights = np.linalg.lstsq(h, y, rcond=None)[0]
    resid = y - h @ weights
    return weights, float(resid @ resid)


class RBFNetwork(Model):
    """A fitted radial basis function network (paper Eq. 1-2).

    Attributes
    ----------
    centers, radii:
        ``(m, n)`` arrays describing the Gaussian units.
    weights:
        ``(m,)`` output-layer weights.
    """

    def __init__(self, centers: np.ndarray, radii: np.ndarray, weights: np.ndarray):
        self.centers = np.atleast_2d(np.asarray(centers, dtype=float))
        self.radii = np.atleast_2d(np.asarray(radii, dtype=float))
        self.weights = np.asarray(weights, dtype=float).ravel()
        if self.centers.shape != self.radii.shape:
            raise ValueError("centers and radii must have matching shapes")
        if len(self.weights) != len(self.centers):
            raise ValueError("one weight per center is required")

    @property
    def num_centers(self) -> int:
        return len(self.centers)

    @property
    def dimension(self) -> int:
        return self.centers.shape[1]

    def hidden_responses(self, points: np.ndarray) -> np.ndarray:
        """Responses of the hidden layer (one column per RBF)."""
        points = self._as_points(points, self.dimension)
        return gaussian_design_matrix(points, self.centers, self.radii)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Network output ``f(x)`` at unit-cube points (Eq. 1).

        The hidden-layer/weight product goes through
        :func:`repro.models.base.design_dot`, so a batched call returns
        exactly the bits sequential single-point calls would.
        """
        return design_dot(self.hidden_responses(points), self.weights)

    def diagnostics(self) -> dict:
        """Structure numbers for the model card: centers, radii, weights."""
        return {
            "family": "rbf",
            "dimension": self.dimension,
            "num_centers": self.num_centers,
            "weight_l2": float(np.sqrt(self.weights @ self.weights)),
            "radius_min": float(self.radii.min()),
            "radius_max": float(self.radii.max()),
        }

    def _scaled_center_distances(self, points: np.ndarray) -> np.ndarray:
        """Per-point distance to the *nearest* center in radius units.

        ``min_j sqrt(sum_k ((x_k - c_jk) / r_jk)^2)`` — small means the
        point sits inside some basis function's footprint, large means
        every unit has decayed to ~0 there and the network output is just
        the sum of far tails: classic silent extrapolation.
        """
        diff = points[:, None, :] - self.centers[None, :, :]
        z2 = ((diff / self.radii[None, :, :]) ** 2).sum(axis=2)
        return np.sqrt(z2.min(axis=1))

    def calibrate(self, points: np.ndarray,
                  responses: np.ndarray) -> Uncertainty:
        """Calibrate with exact leave-one-out residuals (hat-matrix form).

        Holding centers and radii fixed, the weight fit is linear
        regression, so the LOO residual is ``e_i / (1 - H_ii)`` with
        ``H = A (A^T A + ridge I)^{-1} A^T`` — no refit loop.  (The same
        identity as :func:`repro.core.crossval.loo_rbf_error`, restated
        here because that module imports this one.)  LOO residuals lack
        the training fit's optimism, so the q10–q90 band is honest on
        unseen points.  Also records the training sample's worst scaled
        center distance, the reference for the RBF-specific extrapolation
        signal.
        """
        points = self._as_points(points, self.dimension)
        responses = np.asarray(responses, dtype=float).ravel()
        a = gaussian_design_matrix(points, self.centers, self.radii)
        gram = a.T @ a
        gram.flat[:: gram.shape[0] + 1] += 1e-9
        inner = np.linalg.solve(gram, a.T)
        hat_diag = np.einsum("ij,ji->i", a, inner)
        weights = inner @ responses
        resid = responses - a @ weights
        loo_resid = resid / np.clip(1.0 - hat_diag, 1e-6, None)
        lower, upper, sigma, quantiles = _residual_band(loo_resid)
        hull_lo, hull_hi = training_hull(points)
        train_dist = self._scaled_center_distances(points)
        self._uncertainty = Uncertainty(
            kind="loo-quantile",
            lower_offset=lower,
            upper_offset=upper,
            sigma=sigma,
            residual_quantiles=quantiles,
            hull_lower=hull_lo,
            hull_upper=hull_hi,
            center_distance_cap=float(train_dist.max()
                                      * _CENTER_DISTANCE_SLACK),
        )
        return self._uncertainty

    def _extrapolation_flags(self, points: np.ndarray,
                             unc: Uncertainty) -> np.ndarray:
        """Hull flags plus the scaled distance-to-nearest-center signal."""
        flags = super()._extrapolation_flags(points, unc)
        if unc.center_distance_cap is not None:
            distances = self._scaled_center_distances(points)
            flags = flags | (distances > unc.center_distance_cap)
        return flags

    def describe(self) -> str:
        """Textual rendering of the network structure (the paper's Fig. 3)."""
        lines = [
            f"RBF network: {self.dimension} inputs -> {self.num_centers} "
            "Gaussian units -> linear output",
        ]
        for j, (c, r, w) in enumerate(zip(self.centers, self.radii, self.weights)):
            c_txt = ", ".join(f"{v:.2f}" for v in c)
            r_txt = ", ".join(f"{v:.2f}" for v in r)
            lines.append(f"  unit {j}: w={w:+.3f} center=[{c_txt}] radius=[{r_txt}]")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RBFNetwork(m={self.num_centers}, n={self.dimension})"


@dataclass
class CandidateSet:
    """Alpha-independent geometry of one tree's candidate centers.

    The ``(p_min, alpha)`` grid search shares a regression tree across
    the whole alpha grid; everything here (breadth-first node order,
    center coordinates, rectangle edge lengths and the ``points -
    centers`` differences feeding the design matrix) depends only on the
    tree and the sample, so it is computed once per tree and reused for
    every alpha instead of being rebuilt per network.
    """

    nodes: List[TreeNode]
    centers: np.ndarray  #: ``(m, n)`` candidate center coordinates.
    sizes: np.ndarray  #: ``(m, n)`` hyper-rectangle edge lengths.
    diff: np.ndarray  #: ``(p, m, n)`` sample-to-center differences.


def tree_candidates(
    points: np.ndarray, tree: RegressionTree, max_candidates: int = 255
) -> CandidateSet:
    """Precompute the candidate geometry shared across an alpha grid."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    nodes = tree.nodes_breadth_first()[:max_candidates]
    centers = np.atleast_2d(np.array([n.center for n in nodes], dtype=float))
    sizes = np.atleast_2d(np.array([n.size for n in nodes], dtype=float))
    diff = points[:, None, :] - centers[None, :, :]
    return CandidateSet(nodes=nodes, centers=centers, sizes=sizes, diff=diff)


@dataclass
class RBFBuildInfo:
    """Diagnostics from a single tree-based RBF construction."""

    p_min: int
    alpha: float
    criterion_name: str
    criterion_value: float
    sse: float
    num_candidates: int
    num_centers: int
    tree_depth: int
    selected_nodes: List[TreeNode] = field(default_factory=list, repr=False)


def build_rbf_from_tree(
    points: np.ndarray,
    responses: np.ndarray,
    p_min: int = 1,
    alpha: float = 6.0,
    criterion: str = "aicc",
    max_candidates: int = 255,
    tree: Optional[RegressionTree] = None,
    candidates: Optional[CandidateSet] = None,
) -> Tuple[RBFNetwork, RBFBuildInfo]:
    """Build one RBF network for fixed method parameters (Sec. 2.5).

    Parameters
    ----------
    points, responses:
        The sample data (unit-cube coordinates and simulated CPIs).
    p_min:
        Regression-tree leaf capacity.
    alpha:
        Radius scale: each candidate's radii are ``alpha`` times its tree
        node's hyper-rectangle edge lengths (Eq. 8).
    criterion:
        Model selection criterion name (``aicc`` per the paper).
    max_candidates:
        Cap on the number of tree nodes considered as candidate centers
        (breadth-first order), bounding selection cost on large samples.
    tree:
        Optionally, a pre-built regression tree (must match ``p_min``).
    candidates:
        Optionally, the :func:`tree_candidates` geometry for ``tree``
        (requires ``tree``); lets the alpha grid share one computation of
        the center/difference arrays.

    Returns
    -------
    (RBFNetwork, RBFBuildInfo)
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    responses = np.asarray(responses, dtype=float).ravel()
    crit_fn = get_criterion(criterion)
    if candidates is None:
        if tree is None:
            tree = RegressionTree(points, responses, p_min=p_min)
        candidates = tree_candidates(points, tree, max_candidates)
    elif tree is None:
        raise ValueError("candidates requires the matching tree")
    nodes = candidates.nodes
    node_pos = {id(node): j for j, node in enumerate(nodes)}

    centers = candidates.centers
    radii = np.maximum(alpha * candidates.sizes, _MIN_RADIUS)
    h_full = _design_from_diff(candidates.diff, radii)

    p = len(points)
    selected = np.zeros(len(nodes), dtype=bool)

    # The trio walk revisits selections (every step re-scores the current
    # one, and sibling steps often propose identical subsets), so each
    # distinct subset's design-matrix fit is computed once and cached.
    subset_cache: Dict[bytes, Tuple[float, float]] = {}

    def evaluate(sel: np.ndarray) -> Tuple[float, float]:
        key = sel.tobytes()
        cached = subset_cache.get(key)
        if cached is not None:
            return cached
        m = int(sel.sum())
        if m >= p - 1:  # AICc undefined; reject oversized models
            result = np.inf, np.inf
        else:
            _, sse = _fit_weights(h_full[:, sel], responses)
            result = crit_fn(p, sse, m), sse
        subset_cache[key] = result
        return result

    # Tree-ordered subset selection (Orr et al. 2000): include the root,
    # then repeatedly consider a node with its two children and keep the
    # best of the 8 include/exclude combinations.
    selected[0] = True
    best_value, best_sse = evaluate(selected)
    queue: List[TreeNode] = [nodes[0]]
    while queue:
        node = queue.pop(0)
        if node.is_leaf:
            continue
        trio = [node, node.left, node.right]
        trio_pos = [node_pos.get(id(t)) for t in trio]
        if any(pos is None for pos in trio_pos):
            continue  # children beyond the candidate cap
        best_combo = tuple(selected[pos] for pos in trio_pos)
        for combo in range(8):
            bits = ((combo >> 2) & 1, (combo >> 1) & 1, combo & 1)
            trial = selected.copy()
            for pos, bit in zip(trio_pos, bits):
                trial[pos] = bool(bit)
            value, sse = evaluate(trial)
            if value < best_value:
                best_value, best_sse = value, sse
                best_combo = tuple(bool(b) for b in bits)
        for pos, bit in zip(trio_pos, best_combo):
            selected[pos] = bit
        queue.append(node.left)
        queue.append(node.right)

    if not selected.any():  # degenerate; fall back to the root-only model
        selected[0] = True
        best_value, best_sse = evaluate(selected)

    weights, sse = _fit_weights(h_full[:, selected], responses)
    network = RBFNetwork(centers[selected], radii[selected], weights)
    info = RBFBuildInfo(
        p_min=p_min,
        alpha=alpha,
        criterion_name=criterion,
        criterion_value=float(best_value),
        sse=float(sse),
        num_candidates=len(nodes),
        num_centers=int(selected.sum()),
        tree_depth=tree.depth,
        selected_nodes=[n for n, s in zip(nodes, selected) if s],
    )
    return network, info


@dataclass
class RBFSearchResult:
    """Outcome of the (p_min, alpha) grid search (paper Sec. 2.6)."""

    network: RBFNetwork
    info: RBFBuildInfo
    tried: List[RBFBuildInfo] = field(default_factory=list, repr=False)


DEFAULT_P_MIN_GRID = (1, 2, 3, 5)
DEFAULT_ALPHA_GRID = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0)


def search_rbf_model(
    points: np.ndarray,
    responses: np.ndarray,
    p_min_grid: Sequence[int] = DEFAULT_P_MIN_GRID,
    alpha_grid: Sequence[float] = DEFAULT_ALPHA_GRID,
    criterion: str = "aicc",
    max_candidates: int = 255,
) -> RBFSearchResult:
    """Grid-search ``(p_min, alpha)`` and keep the lowest-criterion network.

    The regression tree is rebuilt once per ``p_min`` and shared across all
    ``alpha`` values.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    responses = np.asarray(responses, dtype=float).ravel()
    best: Optional[Tuple[RBFNetwork, RBFBuildInfo]] = None
    tried: List[RBFBuildInfo] = []
    for p_min in p_min_grid:
        with obs.span("fit/tree", p_min=p_min, points=len(points)) as tsp:
            tree = RegressionTree(points, responses, p_min=p_min)
            tsp.set(depth=tree.depth)
        candidates = tree_candidates(points, tree, max_candidates)
        for alpha in alpha_grid:
            network, info = build_rbf_from_tree(
                points,
                responses,
                p_min=p_min,
                alpha=alpha,
                criterion=criterion,
                max_candidates=max_candidates,
                tree=tree,
                candidates=candidates,
            )
            tried.append(info)
            obs.inc("aicc_iterations")
            if np.isfinite(info.criterion_value):
                obs.observe("fit/criterion", info.criterion_value)
            if best is None or info.criterion_value < best[1].criterion_value:
                best = (network, info)
    assert best is not None
    obs.inc("fit/searches")
    return RBFSearchResult(network=best[0], info=best[1], tried=tried)
