"""repro — reproduction of *A Predictive Performance Model for Superscalar
Processors* (Joseph, Vaswani & Thazhuthaveetil, MICRO 2006).

The library has three layers:

* :mod:`repro.simulator` / :mod:`repro.workloads` — the substrate: a
  from-scratch trace-driven superscalar timing simulator and synthetic
  SPEC CPU2000-like workloads;
* :mod:`repro.sampling` / :mod:`repro.models` — the paper's machinery:
  latin hypercube sampling with L2-discrepancy optimisation, regression
  trees, RBF networks with AICc center selection, and the linear baseline;
* :mod:`repro.core` / :mod:`repro.analysis` / :mod:`repro.experiments` —
  the ``BuildRBFmodel`` procedure, trend/split analyses, and one module per
  table and figure of the paper's evaluation.

Quickstart::

    from repro import (
        BuildRBFModel, paper_design_space, paper_test_space, SimulationRunner,
    )

    space = paper_design_space()
    runner = SimulationRunner("mcf")
    builder = BuildRBFModel(space, runner.cpi, seed=42)
    result = builder.build(sample_size=90)
    cpi = result.predict_physical(space, my_points)
"""

from repro.core.design_space import (
    DesignSpace,
    Parameter,
    paper_design_space,
    paper_test_space,
)
from repro.core.procedure import BuildRBFModel, ModelBuildResult
from repro.core.validation import ErrorReport, prediction_errors
from repro.experiments.runner import SimulationRunner
from repro.models.linear import LinearInteractionModel
from repro.models.rbf import RBFNetwork, build_rbf_from_tree, search_rbf_model
from repro.models.tree import RegressionTree
from repro.sampling.discrepancy import centered_l2_discrepancy, star_l2_discrepancy
from repro.sampling.lhs import latin_hypercube
from repro.sampling.optimizer import best_lhs_sample, discrepancy_curve, find_knee
from repro.simulator.config import ProcessorConfig
from repro.simulator.metrics import SimResult
from repro.simulator.simulator import Simulator, simulate, simulate_design_point
from repro.analysis.bottleneck import CPIStack, cpi_stack
from repro.models.io import load_model, save_model
from repro.statsim import StatisticalSimulator
from repro.workloads.characterize import characterize
from repro.workloads.spec2000 import benchmark_names, get_profile, get_trace

__version__ = "1.0.0"

__all__ = [
    "DesignSpace",
    "Parameter",
    "paper_design_space",
    "paper_test_space",
    "BuildRBFModel",
    "ModelBuildResult",
    "ErrorReport",
    "prediction_errors",
    "SimulationRunner",
    "LinearInteractionModel",
    "RBFNetwork",
    "build_rbf_from_tree",
    "search_rbf_model",
    "RegressionTree",
    "centered_l2_discrepancy",
    "star_l2_discrepancy",
    "latin_hypercube",
    "best_lhs_sample",
    "discrepancy_curve",
    "find_knee",
    "ProcessorConfig",
    "SimResult",
    "Simulator",
    "simulate",
    "simulate_design_point",
    "CPIStack",
    "cpi_stack",
    "load_model",
    "save_model",
    "StatisticalSimulator",
    "characterize",
    "benchmark_names",
    "get_profile",
    "get_trace",
    "__version__",
]
