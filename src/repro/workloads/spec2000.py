"""Benchmark registry: names, profiles, and cached trace construction.

The paper runs eight SPEC CPU2000 programs with MinneSPEC *lgred* inputs to
completion.  Here each benchmark maps to a synthetic profile; traces are
memoised per (name, length, seed) because one trace is reused across the
hundreds of design points simulated for a model.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.simulator.trace import Trace
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import EXTRA_PROFILES, PROFILES, WorkloadProfile

#: Default dynamic trace length — the lgred stand-in.  Long enough for the
#: caches and predictor to reach steady behaviour at every design point,
#: short enough that the ~4000-simulation experiment grid stays tractable.
DEFAULT_TRACE_LENGTH = 32768

#: SPEC id prefixes, used only for display (the paper's Table 3 labels).
SPEC_IDS = {
    "gzip": "164.gzip",
    "gcc": "176.gcc",
    "art": "179.art",
    "bzip2": "256.bzip2",
    "mcf": "181.mcf",
    "crafty": "186.crafty",
    "parser": "197.parser",
    "perlbmk": "253.perlbmk",
    "vortex": "255.vortex",
    "twolf": "300.twolf",
    "equake": "183.equake",
    "ammp": "188.ammp",
}


def benchmark_names() -> List[str]:
    """The paper's eight benchmarks, in Table 3 order."""
    return ["mcf", "crafty", "parser", "perlbmk", "vortex", "twolf", "equake", "ammp"]


def extra_benchmark_names() -> List[str]:
    """Additional workloads beyond the paper's set (library extras)."""
    return sorted(EXTRA_PROFILES)


def all_benchmark_names() -> List[str]:
    """Every available workload: the paper's eight plus the extras."""
    return benchmark_names() + extra_benchmark_names()


def get_profile(name: str) -> WorkloadProfile:
    """Profile for ``name``; raises KeyError with the valid names listed."""
    if name in PROFILES:
        return PROFILES[name]
    if name in EXTRA_PROFILES:
        return EXTRA_PROFILES[name]
    raise KeyError(f"unknown benchmark {name!r}; choose from {all_benchmark_names()}")


@lru_cache(maxsize=64)
def get_trace(name: str, length: int = DEFAULT_TRACE_LENGTH, seed: int = 0) -> Trace:
    """The (memoised) trace for benchmark ``name``."""
    return generate_trace(get_profile(name), length, seed)


def spec_label(name: str) -> str:
    """Display label like ``181.mcf`` (falls back to the bare name)."""
    return SPEC_IDS.get(name, name)
