"""Statistical profiles of the eight SPEC CPU2000 benchmarks modeled.

Each profile captures the program characteristics that determine which
microarchitectural parameters the program's CPI responds to:

* instruction mix and dependence-distance distribution (exposed ILP —
  window and queue sensitivity);
* code footprint and block popularity skew (L1I sensitivity);
* data footprint plus a mixture of address streams — stack, hot-region,
  sequential/strided, and dependent pointer-chasing — (D-L1 / L2 size and
  latency sensitivity);
* branch site count, per-site bias and noise (predictor accuracy, and with
  it pipeline-depth sensitivity).

Values are tuned so the *qualitative* sensitivities match what the paper
reports per program (e.g. mcf's earliest regression-tree splits are L2
latency/size, vortex's are dl1 latency / icache size / IQ size; the FP codes
equake and ammp have the smoothest, most predictable surfaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one synthetic benchmark."""

    name: str
    # -- instruction mix (fractions of the dynamic stream) ---------------
    load_frac: float = 0.25
    store_frac: float = 0.10
    imult_frac: float = 0.01
    idiv_frac: float = 0.0
    fpalu_frac: float = 0.0
    fpmult_frac: float = 0.0
    fpdiv_frac: float = 0.0
    # Control fraction is implied by block length: each basic block ends in
    # one control op.
    jump_frac_of_control: float = 0.10  # the rest are conditional branches
    # -- dependences --------------------------------------------------------
    mean_dep_distance: float = 4.0  # geometric mean backward distance
    dep2_prob: float = 0.5  # probability of a second register operand
    # -- code -----------------------------------------------------------------
    num_blocks: int = 256  # static basic blocks (code footprint)
    mean_block_len: int = 7  # instructions per block (incl. the branch)
    code_zipf: float = 1.2  # block popularity skew (higher = hotter loops)
    # -- branch behaviour ----------------------------------------------------
    branch_bias: float = 0.90  # per-site probability of the dominant outcome
    branch_noise: float = 0.02  # fraction of branches with random outcome
    # -- data -------------------------------------------------------------
    footprint_kb: int = 1024  # main (cold) data region
    hot_kb: int = 32  # hot data region
    stack_w: float = 0.25  # address-stream mixture weights
    hot_w: float = 0.35
    stream_w: float = 0.25
    chase_w: float = 0.15
    stride: int = 16  # bytes between consecutive stream accesses
    num_streams: int = 4
    stream_seg_kb: int = 4  # looping array-segment size per stream
    chase_min_reuse_refs: int = 16  # shortest chase reuse distance (chase refs)
    chase_reuse_frac: float = 0.65  # fraction of chase refs that revisit
    chase_chain_len: float = 6.0  # mean dependent loads per pointer chain

    def __post_init__(self) -> None:
        mix = (
            self.load_frac + self.store_frac + self.imult_frac + self.idiv_frac
            + self.fpalu_frac + self.fpmult_frac + self.fpdiv_frac
        )
        if mix >= 1.0:
            raise ValueError(f"{self.name}: op mix fractions must sum below 1")
        weights = self.stack_w + self.hot_w + self.stream_w + self.chase_w
        if abs(weights - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: address-stream weights must sum to 1")
        if not 0.5 <= self.branch_bias <= 1.0:
            raise ValueError(f"{self.name}: branch_bias must be in [0.5, 1]")

    @property
    def code_footprint_kb(self) -> float:
        """Approximate static code size (4-byte instructions)."""
        return self.num_blocks * self.mean_block_len * 4 / 1024.0


#: The eight benchmarks of the paper's Table 3.
PROFILES: Dict[str, WorkloadProfile] = {
    # 181.mcf: pointer-chasing, memory bound; L2 latency/size dominate.
    "mcf": WorkloadProfile(
        name="mcf",
        load_frac=0.34,
        store_frac=0.09,
        mean_dep_distance=3.0,
        dep2_prob=0.4,
        num_blocks=96,
        mean_block_len=8,
        branch_bias=0.94,
        branch_noise=0.015,
        footprint_kb=8192,
        hot_kb=8,
        stack_w=0.15,
        hot_w=0.30,
        stream_w=0.25,
        chase_w=0.30,
        chase_chain_len=4.0,
        stream_seg_kb=64,
        chase_min_reuse_refs=768,
        chase_reuse_frac=0.85,
    ),
    # 186.crafty: branchy chess search, small data, ILP/predictor bound.
    "crafty": WorkloadProfile(
        name="crafty",
        load_frac=0.28,
        store_frac=0.08,
        imult_frac=0.02,
        mean_dep_distance=5.0,
        dep2_prob=0.6,
        num_blocks=700,
        mean_block_len=5,
        code_zipf=1.1,
        branch_bias=0.91,
        branch_noise=0.04,
        footprint_kb=256,
        hot_kb=24,
        stack_w=0.35,
        hot_w=0.45,
        stream_w=0.15,
        chase_w=0.05,
    ),
    # 197.parser: dictionary lookups, moderate memory + branches.
    "parser": WorkloadProfile(
        name="parser",
        load_frac=0.27,
        store_frac=0.11,
        mean_dep_distance=4.0,
        num_blocks=500,
        mean_block_len=6,
        branch_bias=0.92,
        branch_noise=0.02,
        footprint_kb=1024,
        hot_kb=32,
        stack_w=0.28,
        hot_w=0.42,
        stream_w=0.18,
        chase_w=0.12,
    ),
    # 253.perlbmk: interpreter; big code footprint, indirect jumps.
    "perlbmk": WorkloadProfile(
        name="perlbmk",
        load_frac=0.28,
        store_frac=0.13,
        mean_dep_distance=4.0,
        num_blocks=2200,
        mean_block_len=6,
        code_zipf=1.05,
        jump_frac_of_control=0.25,
        branch_bias=0.92,
        branch_noise=0.03,
        footprint_kb=384,
        hot_kb=32,
        stack_w=0.37,
        hot_w=0.42,
        stream_w=0.15,
        chase_w=0.06,
    ),
    # 255.vortex: OO database; large code, L1-resident dependent loads.
    "vortex": WorkloadProfile(
        name="vortex",
        load_frac=0.34,
        store_frac=0.14,
        mean_dep_distance=2.0,
        dep2_prob=0.6,
        num_blocks=2000,
        mean_block_len=6,
        code_zipf=1.05,
        branch_bias=0.96,
        branch_noise=0.01,
        footprint_kb=768,
        hot_kb=28,
        stack_w=0.30,
        hot_w=0.55,
        stream_w=0.12,
        chase_w=0.03,
    ),
    # 300.twolf: place-and-route; mixed behaviour.
    "twolf": WorkloadProfile(
        name="twolf",
        load_frac=0.26,
        store_frac=0.09,
        imult_frac=0.03,
        mean_dep_distance=3.5,
        num_blocks=380,
        mean_block_len=6,
        branch_bias=0.92,
        branch_noise=0.02,
        footprint_kb=512,
        hot_kb=40,
        stack_w=0.27,
        hot_w=0.45,
        stream_w=0.20,
        chase_w=0.08,
    ),
    # 183.equake (FP): regular strided sparse-matrix style access.
    "equake": WorkloadProfile(
        name="equake",
        load_frac=0.30,
        store_frac=0.08,
        fpalu_frac=0.20,
        fpmult_frac=0.10,
        fpdiv_frac=0.002,
        mean_dep_distance=5.0,
        dep2_prob=0.6,
        num_blocks=120,
        mean_block_len=9,
        branch_bias=0.97,
        branch_noise=0.005,
        footprint_kb=3072,
        hot_kb=24,
        stack_w=0.10,
        hot_w=0.30,
        stream_w=0.50,
        chase_w=0.10,
        stride=8,
        num_streams=4,
        stream_seg_kb=8,
    ),
    # 188.ammp (FP): molecular dynamics; larger footprint, smooth surface.
    "ammp": WorkloadProfile(
        name="ammp",
        load_frac=0.29,
        store_frac=0.09,
        fpalu_frac=0.22,
        fpmult_frac=0.12,
        fpdiv_frac=0.004,
        mean_dep_distance=6.0,
        dep2_prob=0.6,
        num_blocks=160,
        mean_block_len=9,
        branch_bias=0.96,
        branch_noise=0.01,
        footprint_kb=4096,
        hot_kb=32,
        stack_w=0.12,
        hot_w=0.33,
        stream_w=0.40,
        chase_w=0.15,
        chase_chain_len=5.0,
        stride=16,
        num_streams=4,
        stream_seg_kb=16,
    ),
}


#: Additional SPEC CPU2000-style workloads beyond the paper's Table 3 set.
#: Useful for exercising the library on fresh programs (the paper builds a
#: separate model per program-input pair; these give downstream users more
#: pairs to play with).  They are NOT part of the paper reproduction.
EXTRA_PROFILES: Dict[str, WorkloadProfile] = {
    # 164.gzip: compression; small hot loops, strided buffer walks.
    "gzip": WorkloadProfile(
        name="gzip",
        load_frac=0.24,
        store_frac=0.12,
        mean_dep_distance=3.5,
        num_blocks=220,
        mean_block_len=7,
        code_zipf=1.3,
        branch_bias=0.90,
        branch_noise=0.03,
        footprint_kb=384,
        hot_kb=36,
        stack_w=0.20,
        hot_w=0.40,
        stream_w=0.32,
        chase_w=0.08,
        stride=8,
    ),
    # 176.gcc: compiler; huge code footprint, branchy, pointer-heavy IR.
    "gcc": WorkloadProfile(
        name="gcc",
        load_frac=0.27,
        store_frac=0.12,
        mean_dep_distance=4.0,
        num_blocks=3000,
        mean_block_len=5,
        code_zipf=1.0,
        jump_frac_of_control=0.18,
        branch_bias=0.89,
        branch_noise=0.04,
        footprint_kb=1536,
        hot_kb=32,
        stack_w=0.30,
        hot_w=0.38,
        stream_w=0.12,
        chase_w=0.20,
    ),
    # 256.bzip2: compression; moderate code, strong strided behaviour.
    "bzip2": WorkloadProfile(
        name="bzip2",
        load_frac=0.26,
        store_frac=0.11,
        mean_dep_distance=4.5,
        num_blocks=180,
        mean_block_len=8,
        code_zipf=1.35,
        branch_bias=0.88,
        branch_noise=0.04,
        footprint_kb=2048,
        hot_kb=40,
        stack_w=0.15,
        hot_w=0.35,
        stream_w=0.40,
        chase_w=0.10,
        stride=8,
        stream_seg_kb=64,
    ),
    # 179.art (FP): neural-net simulation; tiny code, hot FP array sweeps.
    "art": WorkloadProfile(
        name="art",
        load_frac=0.30,
        store_frac=0.07,
        fpalu_frac=0.24,
        fpmult_frac=0.14,
        mean_dep_distance=6.0,
        dep2_prob=0.65,
        num_blocks=60,
        mean_block_len=10,
        branch_bias=0.98,
        branch_noise=0.003,
        footprint_kb=3072,
        hot_kb=16,
        stack_w=0.08,
        hot_w=0.27,
        stream_w=0.55,
        chase_w=0.10,
        stride=8,
        num_streams=6,
        stream_seg_kb=24,
    ),
}
