"""Synthetic instruction-trace generation from a workload profile.

The generator assembles a dynamic instruction stream the way real integer
code executes: a sequence of basic blocks drawn from a skewed (hot-loop)
popularity distribution, each block a run of sequential-PC instructions
terminated by a control op.  Within blocks:

* non-control slots draw an op class from the profile's mix;
* loads and stores draw addresses from the profile's stream mixture
  (:mod:`repro.workloads.streams`);
* register dependences point a geometrically distributed distance back in
  the stream — except loads fed by the chase stream, which depend on the
  *previous* chase load, serialising them into a pointer-chasing chain;
* each block's terminating branch has a per-site dominant direction and
  bias, plus a profile-controlled fraction of genuinely random outcomes,
  which together set the gshare predictor's achievable accuracy.

Generation is fully deterministic given (profile, length, seed).
"""

from __future__ import annotations

import numpy as np

from repro.simulator import isa
from repro.simulator.trace import Trace
from repro.util.rng import make_rng
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.streams import ChaseStream, HotStream, StackStream, StridedStream

_CODE_BASE = 0x0040_0000
_MAX_BLOCK_LEN = 16
_MIN_BLOCK_LEN = 2


def _block_popularity(num_blocks: int, zipf: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity over blocks, with randomly permuted ranks."""
    ranks = rng.permutation(num_blocks) + 1
    weights = 1.0 / ranks.astype(float) ** zipf
    return weights / weights.sum()


def _op_thresholds(profile: WorkloadProfile):
    """Cumulative thresholds for drawing non-control op classes."""
    pairs = [
        (profile.load_frac, isa.LOAD),
        (profile.store_frac, isa.STORE),
        (profile.imult_frac, isa.IMULT),
        (profile.idiv_frac, isa.IDIV),
        (profile.fpalu_frac, isa.FPALU),
        (profile.fpmult_frac, isa.FPMULT),
        (profile.fpdiv_frac, isa.FPDIV),
    ]
    total_control = 1.0 / profile.mean_block_len
    # Rescale the mix to the non-control share of the stream; IALU fills
    # whatever remains.
    scale = 1.0 / max(1e-9, 1.0 - total_control)
    thresholds = []
    acc = 0.0
    for frac, op in pairs:
        if frac > 0:
            acc += frac * scale
            thresholds.append((acc, op))
    return thresholds


def generate_trace(profile: WorkloadProfile, length: int, seed: int = 0) -> Trace:
    """Generate a ``length``-instruction trace for ``profile``.

    Parameters
    ----------
    profile:
        The benchmark's statistical profile.
    length:
        Number of dynamic instructions.
    seed:
        Root seed; combined with the profile name so different benchmarks
        use decorrelated streams even under the same root seed.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = make_rng(seed, "trace", profile.name, length)

    # -- static program structure ------------------------------------------
    nb = profile.num_blocks
    block_len = np.clip(
        rng.poisson(max(profile.mean_block_len - _MIN_BLOCK_LEN, 1), nb)
        + _MIN_BLOCK_LEN,
        _MIN_BLOCK_LEN,
        _MAX_BLOCK_LEN,
    )
    block_pc = _CODE_BASE + np.concatenate([[0], np.cumsum(block_len[:-1]) * 4])
    popularity = _block_popularity(nb, profile.code_zipf, rng)
    site_is_jump = rng.random(nb) < profile.jump_frac_of_control
    site_dominant_taken = rng.random(nb) < 0.6  # loops skew toward taken

    # Static slot assignment: every non-control code slot gets a fixed op
    # class, and memory slots a fixed address-stream class, so a given PC
    # behaves the same way on every dynamic execution — as real static
    # instructions do.  (Stream codes: 0 stack, 1 hot, 2 strided, 3 chase;
    # strided slots additionally pin one array cursor, giving each such PC
    # a constant stride.)
    thresholds = _op_thresholds(profile)
    stream_cut1 = profile.stack_w
    stream_cut2 = stream_cut1 + profile.hot_w
    stream_cut3 = stream_cut2 + profile.stream_w
    slot_op = []
    slot_stream = []
    slot_cursor = []
    strided_slot_count = 0
    for b in range(nb):
        n_slots = int(block_len[b]) - 1
        ops = np.empty(n_slots, dtype=np.int8)
        streams = np.full(n_slots, -1, dtype=np.int8)
        cursors = np.full(n_slots, -1, dtype=np.int16)
        for j in range(n_slots):
            u = rng.random()
            op = isa.IALU
            for cut, candidate in thresholds:
                if u < cut:
                    op = candidate
                    break
            ops[j] = op
            if op == isa.LOAD or op == isa.STORE:
                su = rng.random()
                if su < stream_cut1:
                    streams[j] = 0
                elif su < stream_cut2:
                    streams[j] = 1
                elif su < stream_cut3:
                    streams[j] = 2
                    cursors[j] = strided_slot_count % profile.num_streams
                    strided_slot_count += 1
                else:
                    streams[j] = 3
        slot_op.append(ops)
        slot_stream.append(streams)
        slot_cursor.append(cursors)

    # -- address streams -------------------------------------------------
    stack = StackStream()
    hot = HotStream(profile.hot_kb * 1024)
    strided = StridedStream(
        profile.footprint_kb * 1024,
        profile.stride,
        profile.num_streams,
        segment_bytes=profile.stream_seg_kb * 1024,
    )
    chase = ChaseStream(
        profile.footprint_kb * 1024,
        min_distance=profile.chase_min_reuse_refs,
        reuse_frac=profile.chase_reuse_frac,
    )
    geo_p = 1.0 / max(profile.mean_dep_distance, 1.0)

    # -- dynamic stream ---------------------------------------------------
    op_out = np.zeros(length, dtype=np.int8)
    src1_out = np.zeros(length, dtype=np.int32)
    src2_out = np.zeros(length, dtype=np.int32)
    addr_out = np.zeros(length, dtype=np.int64)
    pc_out = np.zeros(length, dtype=np.int64)
    taken_out = np.zeros(length, dtype=bool)

    # Pre-draw the block sequence in bulk (cheaper than per-block draws).
    expected_blocks = max(8, int(length / profile.mean_block_len * 1.5) + 8)
    block_seq = rng.choice(nb, size=expected_blocks, p=popularity)
    block_cursor = 0

    i = 0
    last_chase_load = -1
    while i < length:
        if block_cursor >= len(block_seq):
            block_seq = rng.choice(nb, size=expected_blocks, p=popularity)
            block_cursor = 0
        b = int(block_seq[block_cursor])
        block_cursor += 1
        n_instr = int(block_len[b])
        base_pc = int(block_pc[b])
        for j in range(n_instr):
            if i >= length:
                break
            pc_out[i] = base_pc + 4 * j
            is_last = j == n_instr - 1
            if is_last:
                if site_is_jump[b]:
                    op_out[i] = isa.JUMP
                    taken_out[i] = True
                else:
                    op_out[i] = isa.BRANCH
                    if rng.random() < profile.branch_noise:
                        outcome = rng.random() < 0.5
                    else:
                        follows_bias = rng.random() < profile.branch_bias
                        outcome = bool(site_dominant_taken[b]) == follows_bias
                    taken_out[i] = outcome
                # Branches compare a recently produced value.
                d = int(rng.geometric(geo_p))
                if 0 < d <= i:
                    src1_out[i] = d
            else:
                op = int(slot_op[b][j])
                op_out[i] = op
                if op == isa.LOAD or op == isa.STORE:
                    stream = slot_stream[b][j]
                    if stream == 0:
                        addr_out[i] = stack.next(rng)
                    elif stream == 1:
                        addr_out[i] = hot.next(rng)
                    elif stream == 2:
                        addr_out[i] = strided.next(rng, stream=int(slot_cursor[b][j]))
                    else:
                        addr_out[i] = chase.next(rng)
                        if op == isa.LOAD:
                            # Serialise chase loads into finite-length
                            # dependence chains; chain breaks let separate
                            # chains overlap in the instruction window
                            # (memory-level parallelism).
                            chain_continues = (
                                rng.random() >= 1.0 / max(profile.chase_chain_len, 1.0)
                            )
                            if last_chase_load >= 0 and chain_continues:
                                src1_out[i] = i - last_chase_load
                            last_chase_load = i
                if src1_out[i] == 0:
                    d = int(rng.geometric(geo_p))
                    if 0 < d <= i:
                        src1_out[i] = d
                if rng.random() < profile.dep2_prob:
                    d = int(rng.geometric(geo_p))
                    if 0 < d <= i:
                        src2_out[i] = d
            i += 1

    trace = Trace(
        op=op_out,
        src1=src1_out,
        src2=src2_out,
        addr=addr_out,
        pc=pc_out,
        taken=taken_out,
        name=profile.name,
    )
    trace.validate()
    return trace
