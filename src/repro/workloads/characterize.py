"""Workload characterisation: architecture-independent trace statistics.

Related work the paper discusses (Eeckhout et al.'s statistical simulation,
Marin & Mellor-Crummey's parameterised models) starts from exactly these
quantities: instruction mix, dependence-distance distribution, working-set
sizes, and branch behaviour — all measured from the trace alone, with no
microarchitecture in sight.

The characterisation also closes the loop on the synthetic workloads: the
tests verify that generated traces actually exhibit the properties their
profiles promise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.simulator import isa
from repro.simulator.trace import Trace


@dataclass(frozen=True)
class TraceCharacteristics:
    """Architecture-independent summary of one trace."""

    instructions: int
    mix: Dict[str, float]
    mean_dep_distance: float
    dep_distance_p90: float
    code_footprint_kb: float
    data_footprint_kb: float
    #: Distinct 64B data lines touched within sliding windows of these
    #: sizes (in memory references) — a working-set curve.
    working_set_lines: Dict[int, float] = field(default_factory=dict)
    branch_fraction: float = 0.0
    taken_fraction: float = 0.0
    branch_entropy_bits: float = 0.0  # mean per-site outcome entropy

    def memory_fraction(self) -> float:
        return self.mix.get("load", 0.0) + self.mix.get("store", 0.0)


def _per_site_entropy(pcs: np.ndarray, taken: np.ndarray) -> float:
    """Mean Bernoulli entropy of branch outcomes, weighted by execution."""
    if len(pcs) == 0:
        return 0.0
    total = 0.0
    for pc in np.unique(pcs):
        outcomes = taken[pcs == pc]
        p = outcomes.mean()
        if 0.0 < p < 1.0:
            h = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
        else:
            h = 0.0
        total += h * len(outcomes)
    return total / len(pcs)


def characterize(
    trace: Trace,
    window_sizes: List[int] = (64, 256, 1024, 4096),
) -> TraceCharacteristics:
    """Measure :class:`TraceCharacteristics` for ``trace``."""
    n = len(trace)
    if n == 0:
        raise ValueError("cannot characterise an empty trace")

    mix = trace.mix()

    deps = np.concatenate([trace.src1[trace.src1 > 0], trace.src2[trace.src2 > 0]])
    mean_dep = float(deps.mean()) if len(deps) else 0.0
    p90_dep = float(np.percentile(deps, 90)) if len(deps) else 0.0

    code_kb = float(trace.pc.max() - trace.pc.min() + 4) / 1024.0

    mem_mask = (trace.op == isa.LOAD) | (trace.op == isa.STORE)
    addrs = trace.addr[mem_mask]
    lines = addrs >> 6
    data_kb = len(np.unique(lines)) * 64 / 1024.0 if len(lines) else 0.0

    working_sets: Dict[int, float] = {}
    for w in window_sizes:
        if len(lines) < w:
            continue
        # Sample windows rather than sliding exhaustively.
        starts = np.linspace(0, len(lines) - w, num=min(32, len(lines) - w + 1))
        counts = [
            len(np.unique(lines[int(s):int(s) + w])) for s in starts
        ]
        working_sets[w] = float(np.mean(counts))

    branch_mask = trace.op == isa.BRANCH
    branch_frac = float(branch_mask.mean())
    taken_frac = float(trace.taken[branch_mask].mean()) if branch_mask.any() else 0.0
    entropy = _per_site_entropy(trace.pc[branch_mask], trace.taken[branch_mask])

    return TraceCharacteristics(
        instructions=n,
        mix=mix,
        mean_dep_distance=mean_dep,
        dep_distance_p90=p90_dep,
        code_footprint_kb=code_kb,
        data_footprint_kb=data_kb,
        working_set_lines=working_sets,
        branch_fraction=branch_frac,
        taken_fraction=taken_frac,
        branch_entropy_bits=entropy,
    )


def compare(a: TraceCharacteristics, b: TraceCharacteristics) -> Dict[str, float]:
    """Relative differences of the headline statistics (diagnostics)."""

    def rel(x: float, y: float) -> float:
        base = max(abs(x), abs(y), 1e-12)
        return abs(x - y) / base

    return {
        "memory_fraction": rel(a.memory_fraction(), b.memory_fraction()),
        "mean_dep_distance": rel(a.mean_dep_distance, b.mean_dep_distance),
        "code_footprint_kb": rel(a.code_footprint_kb, b.code_footprint_kb),
        "data_footprint_kb": rel(a.data_footprint_kb, b.data_footprint_kb),
        "branch_fraction": rel(a.branch_fraction, b.branch_fraction),
        "branch_entropy_bits": rel(a.branch_entropy_bits, b.branch_entropy_bits),
    }
