"""Synthetic SPEC CPU2000-like workloads (trace generators).

The paper drives its simulator with MinneSPEC *lgred* traces of eight SPEC
CPU2000 programs.  Those traces are proprietary-toolchain artifacts; this
package substitutes seeded synthetic trace generators whose statistical
profiles are tuned so each program stresses the same parts of the design
space the real one does (see DESIGN.md, "Substitutions").
"""

from repro.workloads.profiles import WorkloadProfile, PROFILES
from repro.workloads.generator import generate_trace
from repro.workloads.spec2000 import benchmark_names, get_profile, get_trace

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "generate_trace",
    "benchmark_names",
    "get_profile",
    "get_trace",
]
