"""Address-stream primitives used by the trace generators.

Four stream kinds compose the data-reference behaviour of a synthetic
benchmark:

* :class:`StackStream` — a tiny, heavily reused region (always cache hot);
* :class:`HotStream` — uniform references over the program's hot working
  set; its size relative to the D-L1 capacity sets the L1 miss knee;
* :class:`StridedStream` — a handful of sequential cursors walking the main
  footprint with a fixed stride (spatial locality, prefetch-friendly line
  reuse);
* :class:`ChaseStream` — uniformly random references over the full
  footprint; the generator additionally serialises the consuming loads into
  a dependence chain, reproducing pointer-chasing (mcf-style) latency
  sensitivity.

All streams align addresses to 8 bytes and take the RNG explicitly so trace
generation stays deterministic.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

_ALIGN = ~0x7  # 8-byte alignment mask

STACK_BASE = 0x7FF0_0000
HOT_BASE = 0x2000_0000
HEAP_BASE = 0x1000_0000
STREAM_BASE = 0x3000_0000


class StackStream:
    """References within a small stack frame region (high locality)."""

    def __init__(self, size_bytes: int = 4096, base: int = STACK_BASE):
        if size_bytes < 8:
            raise ValueError("stack region too small")
        self.base = base
        self.size = size_bytes

    def next(self, rng: np.random.Generator) -> int:
        # Squaring the uniform concentrates references near the frame base.
        offset = int(rng.random() ** 2 * self.size)
        return (self.base + offset) & _ALIGN


class HotStream:
    """Uniform references over the hot working set."""

    def __init__(self, size_bytes: int, base: int = HOT_BASE):
        if size_bytes < 8:
            raise ValueError("hot region too small")
        self.base = base
        self.size = size_bytes

    def next(self, rng: np.random.Generator) -> int:
        # A fourth-power law skews references steeply toward the low end of
        # the region (P(offset < x) = (x/size)^(1/4)): the working set has a
        # small, intensely reused core plus a tail spanning the full region,
        # like real data working sets.  The core survives interfering
        # traffic, while cache capacity sweeping through the region still
        # produces a strong, smooth D-L1 size response.
        u = rng.random()
        return (self.base + int(u * u * u * u * self.size)) & _ALIGN


class StridedStream:
    """Round-robin sequential cursors looping over finite array segments.

    Each cursor walks its own ``segment_bytes``-sized slice of the
    footprint and wraps back to the slice start — the access pattern of an
    array processed in repeated passes.  After the first pass a segment's
    lines live wherever capacity allows, so the segment size relative to
    cache capacities decides which level serves the stream: small segments
    are L1/L2-resident after warmup, large ones sweep the L2 and produce a
    genuine L2-size response.
    """

    def __init__(
        self,
        footprint_bytes: int,
        stride: int = 16,
        num_streams: int = 4,
        segment_bytes: int = 16 * 1024,
        base: int = STREAM_BASE,
    ):
        if footprint_bytes < stride * num_streams:
            raise ValueError("footprint too small for the requested streams")
        if segment_bytes < stride:
            raise ValueError("segment must hold at least one stride")
        self.base = base
        self.footprint = footprint_bytes
        self.stride = stride
        self.segment = min(segment_bytes, footprint_bytes // num_streams or segment_bytes)
        # Spread segment origins across the footprint so they touch distinct
        # lines.  The extra 17-line skew per stream keeps cursors from
        # landing in the same cache set when the spacing divides the cache
        # size.
        spacing = footprint_bytes // num_streams
        self._origins = [
            (i * spacing + i * 17 * 64) % footprint_bytes for i in range(num_streams)
        ]
        self._offsets = [0] * num_streams
        self._next_stream = 0

    @property
    def num_streams(self) -> int:
        return len(self._origins)

    def next(self, rng: np.random.Generator, stream: Optional[int] = None) -> int:
        """Advance one cursor; by default round-robin, or a specific one.

        Pinning a static load instruction to one cursor (via ``stream``)
        gives that instruction a constant address stride — the pattern
        hardware stride prefetchers are built to catch.
        """
        if stream is None:
            stream = self._next_stream
            self._next_stream = (stream + 1) % len(self._origins)
        else:
            stream = stream % len(self._origins)
        offset = self._offsets[stream]
        self._offsets[stream] = (offset + self.stride) % self.segment
        return (self.base + self._origins[stream] + offset) & _ALIGN


class ChaseStream:
    """Pointer-chasing references with a log-uniform reuse-distance profile.

    Real pointer-heavy codes (mcf's graph walks) revisit nodes at reuse
    distances spanning every scale from a few KB to the full footprint.
    Reproducing that with plain random draws would need traces long enough
    to *populate* the footprint; instead this stream prescribes the reuse
    distances directly:

    * with probability ``1 - reuse_frac`` the reference is fresh (a new,
      uniformly random line in the footprint);
    * otherwise it revisits the address seen ``k`` chase references ago,
      with ``k`` log-uniform between 8 and the footprint's line count —
      every distance octave gets equal probability mass.

    A cache of capacity ``C`` lines then hits roughly the fraction of
    revisits whose distance octave fits in ``C``: the miss rate falls
    smoothly (log-linearly) as capacity grows from L1 scale to the full
    footprint, independent of trace length — exactly the graded L2-size
    capacity response the paper's mcf exhibits.
    """

    def __init__(
        self,
        footprint_bytes: int,
        base: int = HEAP_BASE,
        reuse_frac: float = 0.65,
        min_distance: int = 8,
    ):
        if footprint_bytes < 64 * min_distance:
            raise ValueError("footprint too small for the reuse-distance profile")
        if not 0.0 <= reuse_frac < 1.0:
            raise ValueError("reuse_frac must be in [0, 1)")
        self.base = base
        self.size = footprint_bytes
        self.reuse_frac = reuse_frac
        self.min_distance = min_distance
        self._max_history = footprint_bytes // 64
        self._history: list = []

    def next(self, rng: np.random.Generator) -> int:
        history = self._history
        if len(history) > self.min_distance and rng.random() < self.reuse_frac:
            # Log-uniform distance: equal mass per distance octave.
            max_d = min(len(history), self._max_history)
            span = math.log(max_d / self.min_distance)
            k = int(self.min_distance * math.exp(rng.random() * span))
            addr = history[-min(k, len(history))]
        else:
            addr = (self.base + int(rng.random() * self.size)) & _ALIGN
        history.append(addr)
        if len(history) > 2 * self._max_history:
            del history[: -self._max_history]
        return addr
