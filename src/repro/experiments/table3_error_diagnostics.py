"""Table 3: error diagnostics of the predictive models at sample size 200.

Mean, maximum and standard deviation of the absolute percentage CPI error
on the 50-point random test set, for all eight benchmarks.  The paper's
headline numbers: 2.8% mean error averaged across benchmarks, 17% worst
case, with the FP benchmarks (equake, ammp) showing the lowest maxima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.validation import ErrorReport
from repro.experiments import common
from repro.util.tables import format_table
from repro.workloads.spec2000 import benchmark_names, spec_label

SAMPLE_SIZE = 200


@dataclass
class Table3Result:
    reports: Dict[str, ErrorReport]
    sample_size: int

    @property
    def average_mean_error(self) -> float:
        return sum(r.mean for r in self.reports.values()) / len(self.reports)

    @property
    def worst_max_error(self) -> float:
        return max(r.max for r in self.reports.values())


def run(
    benchmarks: Optional[Sequence[str]] = None,
    sample_size: int = SAMPLE_SIZE,
) -> Table3Result:
    """Build all eight models at the target size and collect errors."""
    if benchmarks is None:
        benchmarks = benchmark_names()
    reports = {}
    for benchmark in benchmarks:
        result = common.rbf_model(benchmark, sample_size)
        assert result.errors is not None
        reports[benchmark] = result.errors
    return Table3Result(reports=reports, sample_size=sample_size)


def render(result: Table3Result) -> str:
    """Plain-text rendering of the Table 3 rows (with bootstrap CIs)."""
    rows: List[tuple] = []
    for b, r in result.reports.items():
        ci = r.mean_ci()
        ci_txt = f"[{ci[0]:.1f}, {ci[1]:.1f}]" if ci else ""
        rows.append((spec_label(b), round(r.mean, 1), round(r.max, 1),
                     round(r.std, 1), ci_txt))
    rows.append(("Average", round(result.average_mean_error, 1), "", "", ""))
    table = format_table(
        ["Benchmark", "mean", "max", "std", "95% CI (mean)"],
        rows,
        title=f"Table 3: CPI error diagnostics (%) at sample size {result.sample_size}",
    )
    paper = (
        "paper: mean 2.8% avg (mcf 2.1, crafty 2.9, parser 2.2, perlbmk 4.0, "
        "vortex 3.4, twolf 3.2, equake 1.9, ammp 2.5); max <= 17%"
    )
    return f"{table}\n{paper}"
