"""Simulation runner with on-disk memoisation.

Every experiment needs the same primitive: "CPI of benchmark B at physical
design point x".  :class:`SimulationRunner` provides it as a vectorised
response function compatible with :class:`repro.core.procedure.BuildRBFModel`,
and memoises results on disk (keyed by benchmark, trace length, seed and the
full processor configuration) so the ~4000-simulation experiment grid is
paid for once per machine, not once per pytest invocation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.design_space import DesignSpace, paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator
from repro.workloads.spec2000 import DEFAULT_TRACE_LENGTH, get_trace

_CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the CWD."""
    return Path(os.environ.get(_CACHE_ENV, ".repro_cache"))


class SimulationRunner:
    """Memoised detailed simulation at physical design points.

    Parameters
    ----------
    benchmark:
        Workload name (see :func:`repro.workloads.benchmark_names`).
    space:
        Design space whose parameter order physical points follow
        (defaults to the paper's Table 1 space).
    trace_length, seed:
        Trace construction parameters (part of the cache key).
    cache_dir:
        Directory for the JSON result cache; ``None`` disables disk
        caching (in-memory memoisation still applies).
    """

    def __init__(
        self,
        benchmark: str,
        space: Optional[DesignSpace] = None,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 0,
        cache_dir: Optional[Path] = default_cache_dir(),
    ):
        self.benchmark = benchmark
        self.space = space if space is not None else paper_design_space()
        self.trace_length = trace_length
        self.seed = seed
        self.simulations_run = 0
        self.cache_hits = 0
        self._cache: Dict[str, Dict[str, float]] = {}
        self._cache_path: Optional[Path] = None
        if cache_dir is not None:
            cache_dir = Path(cache_dir)
            cache_dir.mkdir(parents=True, exist_ok=True)
            # The trace fingerprint keys the cache to the trace *content*,
            # so editing a workload profile can never serve stale results.
            fp = self._trace_fingerprint()
            self._cache_path = cache_dir / f"{benchmark}-{trace_length}-{seed}-{fp}.json"
            if self._cache_path.exists():
                try:
                    self._cache = json.loads(self._cache_path.read_text())
                except (json.JSONDecodeError, OSError):
                    self._cache = {}

    def _trace_fingerprint(self) -> str:
        """Short stable hash of the benchmark trace's content."""
        import hashlib

        trace = get_trace(self.benchmark, self.trace_length, self.seed)
        digest = hashlib.sha256()
        for arr in (trace.op, trace.src1, trace.src2, trace.addr, trace.pc):
            digest.update(arr.tobytes())
        digest.update(trace.taken.tobytes())
        return digest.hexdigest()[:12]

    # -- low-level --------------------------------------------------------

    def _flush(self) -> None:
        if self._cache_path is None:
            return
        tmp = self._cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._cache))
        tmp.replace(self._cache_path)

    def result_at(self, point: Mapping[str, float]) -> Dict[str, float]:
        """Simulation summary at one physical design point (dict form)."""
        resolved = self.space.resolve(dict(point))
        config = ProcessorConfig.from_design_point(resolved)
        key = config.key()
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        trace = get_trace(self.benchmark, self.trace_length, self.seed)
        result = Simulator(config).run(trace)
        self.simulations_run += 1
        summary = {
            "cpi": result.cpi,
            "power": result.power,
            "energy": result.energy,
            "il1_miss_rate": result.il1_miss_rate,
            "dl1_miss_rate": result.dl1_miss_rate,
            "l2_miss_rate": result.l2_miss_rate,
            "branch_mispredict_rate": result.branch_mispredict_rate,
        }
        self._cache[key] = summary
        return summary

    # -- vectorised response functions -------------------------------------

    def metric(self, points: np.ndarray, name: str) -> np.ndarray:
        """Evaluate one summary metric at ``(m, n)`` physical points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        values = np.empty(len(points))
        for i, row in enumerate(points):
            values[i] = self.result_at(self.space.as_dict(row))[name]
        self._flush()
        return values

    def cpi(self, points: np.ndarray) -> np.ndarray:
        """CPI response function (the paper's modeling target)."""
        return self.metric(points, "cpi")

    def power(self, points: np.ndarray) -> np.ndarray:
        """Power response function (the future-work extension metric)."""
        return self.metric(points, "power")

    def __repr__(self) -> str:
        return (
            f"SimulationRunner({self.benchmark!r}, trace={self.trace_length}, "
            f"seed={self.seed}, runs={self.simulations_run}, hits={self.cache_hits})"
        )
