"""Simulation runner with on-disk memoisation and a parallel backend.

Every experiment needs the same primitive: "CPI of benchmark B at physical
design point x".  :class:`SimulationRunner` provides it as a vectorised
response function compatible with :class:`repro.core.procedure.BuildRBFModel`,
and memoises results on disk (keyed by benchmark, trace length, seed and the
full processor configuration) so the ~4000-simulation experiment grid is
paid for once per machine, not once per pytest invocation.

Uncached design points can be fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor` (``jobs`` parameter, or the
``REPRO_JOBS`` environment variable; default serial).  The trace is built
once per worker process, results are merged back into the memo cache, and
the parallel path is bitwise-identical to the serial one: the simulator is
deterministic given (config, trace), and both paths run exactly the same
code on exactly the same trace.

The disk cache is safe under concurrent use: flushes are dirty-gated (a
clean runner never rewrites the file), write through a unique pid-suffixed
temp file with an atomic ``os.replace``, and merge-on-flush under an
advisory file lock — the cache file is re-read and unioned with the
in-memory entries, so two processes flushing the same file never silently
drop each other's simulations.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.design_space import DesignSpace, paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator
from repro.workloads.spec2000 import DEFAULT_TRACE_LENGTH, get_trace

_CACHE_ENV = "REPRO_CACHE_DIR"
_JOBS_ENV = "REPRO_JOBS"

#: Sentinel default for ``cache_dir``: "resolve :func:`default_cache_dir`
#: at construction time".  A call expression in the parameter default would
#: freeze ``$REPRO_CACHE_DIR`` at import time (lint rule API002).
_UNSET: Any = object()


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the CWD."""
    return Path(os.environ.get(_CACHE_ENV, ".repro_cache"))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker-count knob: explicit value, ``$REPRO_JOBS``, or 1.

    ``None`` means "consult the environment"; a missing/empty ``REPRO_JOBS``
    falls back to 1 (serial).  Raises :class:`ValueError` for non-integer or
    non-positive settings so misconfiguration fails loudly, not silently.
    """
    if jobs is None:
        raw = os.environ.get(_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"{_JOBS_ENV}={raw!r} is not an integer")
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@contextmanager
def _file_lock(path: Path) -> Iterator[None]:
    """Advisory exclusive lock on ``path`` (best-effort without fcntl)."""
    try:
        import fcntl
    except ImportError:  # non-POSIX: atomic replace alone is the fallback
        yield
        return
    with open(path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _summarize(result) -> Dict[str, float]:
    """The cached per-simulation summary extracted from a ``SimResult``."""
    return {
        "cpi": result.cpi,
        "power": result.power,
        "energy": result.energy,
        "il1_miss_rate": result.il1_miss_rate,
        "dl1_miss_rate": result.dl1_miss_rate,
        "l2_miss_rate": result.l2_miss_rate,
        "branch_mispredict_rate": result.branch_mispredict_rate,
    }


#: Per-worker-process trace, built once by :func:`_worker_init`.
_WORKER_TRACE = None

#: Whether worker processes should record spans/metrics for the parent.
_WORKER_OBS = False


def _worker_init(benchmark: str, trace_length: int, seed: int,
                 trace_enabled: bool = False) -> None:
    """Pool initializer: build the benchmark trace once per worker process.

    ``prepare()`` decodes the per-trace invariants (column lists, line
    ids) here, so every simulation the worker runs reuses them.
    """
    global _WORKER_TRACE, _WORKER_OBS
    _WORKER_TRACE = get_trace(benchmark, trace_length, seed).prepare()
    _WORKER_OBS = bool(trace_enabled)


def _worker_simulate(
    task: Tuple[Any, Dict[str, int]]
) -> Tuple[Any, Dict[str, float], Optional[Dict[str, Any]]]:
    """Pool task: simulate one ``(key, config-kwargs)`` pair.

    Returns ``(key, summary, obs_payload)``.  When the parent enabled
    tracing, the simulation runs under a worker-local
    :class:`repro.obs.Collector` and the third element carries its span
    tree and metrics (plain JSON) for the parent to graft into the live
    trace; otherwise it is ``None``.
    """
    key, kwargs = task
    if not _WORKER_OBS:
        result = Simulator(ProcessorConfig(**kwargs)).run(_WORKER_TRACE)
        return key, _summarize(result), None
    with obs.collecting() as collector:
        result = Simulator(ProcessorConfig(**kwargs)).run(_WORKER_TRACE)
    return key, _summarize(result), collector.payload()


def simulate_configs(
    benchmark: str,
    configs: Sequence[ProcessorConfig],
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Simulate explicit configurations for one benchmark, optionally in parallel.

    Returns one summary dict per configuration, in input order.  ``jobs``
    follows :func:`resolve_jobs`; with more than one worker and more than
    one configuration the simulations fan out over a process pool (the
    trace is built once per worker), which is bitwise-identical to the
    serial path.  Used by ``repro simulate --jobs`` grid sweeps.
    """
    if not configs:
        return []
    jobs = min(resolve_jobs(jobs), len(configs))
    tasks = [(index, config.as_dict()) for index, config in enumerate(configs)]
    with obs.span("simulate_configs", benchmark=benchmark,
                  configs=len(configs), jobs=jobs):
        collector = obs.current()
        if jobs > 1:
            results = {}
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_worker_init,
                initargs=(benchmark, trace_length, seed, obs.enabled()),
            ) as pool:
                for index, summary, payload in pool.map(_worker_simulate, tasks):
                    results[index] = summary
                    if collector is not None:
                        collector.adopt(payload, attrs={"worker": True})
        else:
            trace = get_trace(benchmark, trace_length, seed).prepare()
            results = {
                index: _summarize(Simulator(ProcessorConfig(**kwargs)).run(trace))
                for index, kwargs in tasks
            }
    return [results[index] for index in range(len(configs))]


class SimulationRunner:
    """Memoised detailed simulation at physical design points.

    Parameters
    ----------
    benchmark:
        Workload name (see :func:`repro.workloads.benchmark_names`).
    space:
        Design space whose parameter order physical points follow
        (defaults to the paper's Table 1 space).
    trace_length, seed:
        Trace construction parameters (part of the cache key).
    cache_dir:
        Directory for the JSON result cache.  Defaults to
        :func:`default_cache_dir`, resolved *at construction time* so a
        ``REPRO_CACHE_DIR`` set after import is honoured; ``None``
        disables disk caching (in-memory memoisation still applies).
    jobs:
        Worker processes for :meth:`metric` fan-out.  ``None`` consults
        ``$REPRO_JOBS`` and falls back to 1 (serial), so the default
        behaviour — and every seed test — is unchanged.
    """

    def __init__(
        self,
        benchmark: str,
        space: Optional[DesignSpace] = None,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 0,
        cache_dir: Optional[Path] = _UNSET,
        jobs: Optional[int] = None,
    ):
        self.benchmark = benchmark
        self.space = space if space is not None else paper_design_space()
        self.trace_length = trace_length
        self.seed = seed
        self.jobs = resolve_jobs(jobs)
        #: Execution accounting lives in a metrics registry (PR 3 folded
        #: the ad-hoc ``stats()`` counters into it); :meth:`stats` and the
        #: ``simulations_run``/``cache_hits``/``wall_time`` properties are
        #: thin views over it.
        self.metrics = obs.MetricsRegistry()
        self._dirty = 0
        self._cache: Dict[str, Dict[str, float]] = {}
        self._cache_path: Optional[Path] = None
        if cache_dir is _UNSET:
            cache_dir = default_cache_dir()
        if cache_dir is not None:
            cache_dir = Path(cache_dir)
            cache_dir.mkdir(parents=True, exist_ok=True)
            # The trace fingerprint keys the cache to the trace *content*,
            # so editing a workload profile can never serve stale results.
            fp = self._trace_fingerprint()
            self._cache_path = cache_dir / f"{benchmark}-{trace_length}-{seed}-{fp}.json"
            self._cache = self._read_disk()

    # -- accounting --------------------------------------------------------

    def _count(self, name: str, value: float = 1.0) -> None:
        """Record into the runner's registry and mirror to any live trace."""
        self.metrics.inc(name, value)
        obs.inc(name, value)

    @property
    def simulations_run(self) -> int:
        """Detailed simulations actually executed (cache misses)."""
        return int(self.metrics.counter("simulations_run"))

    @property
    def cache_hits(self) -> int:
        """Lookups served from the memo cache."""
        return int(self.metrics.counter("cache_hits"))

    @property
    def wall_time(self) -> float:
        """Cumulative wall time spent inside :meth:`metric` (seconds)."""
        return self.metrics.counter("wall_time_s")

    def _trace_fingerprint(self) -> str:
        """Short stable hash of the benchmark trace's content."""
        import hashlib

        trace = get_trace(self.benchmark, self.trace_length, self.seed)
        digest = hashlib.sha256()
        for arr in (trace.op, trace.src1, trace.src2, trace.addr, trace.pc):
            digest.update(arr.tobytes())
        digest.update(trace.taken.tobytes())
        return digest.hexdigest()[:12]

    # -- low-level --------------------------------------------------------

    def _read_disk(self) -> Dict[str, Dict[str, float]]:
        """Current on-disk cache contents ({} when missing or corrupt)."""
        if self._cache_path is None or not self._cache_path.exists():
            return {}
        try:
            loaded = json.loads(self._cache_path.read_text())
        except (json.JSONDecodeError, OSError):
            return {}
        return loaded if isinstance(loaded, dict) else {}

    def _flush(self) -> None:
        """Persist new entries: merge-on-flush under a lock, atomic replace.

        A no-op while the runner holds no unflushed entries, so cache-hit
        workloads never rewrite (or even open) the file.  The merge re-reads
        the file inside the lock and unions it with the in-memory entries,
        so concurrent runners flushing the same cache file each keep the
        other's simulations.
        """
        if self._cache_path is None or not self._dirty:
            return
        lock_path = self._cache_path.with_name(self._cache_path.name + ".lock")
        with _file_lock(lock_path):
            merged = self._read_disk()
            merged.update(self._cache)
            self._cache = merged
            tmp = self._cache_path.with_name(
                f"{self._cache_path.name}.{os.getpid()}.tmp"
            )
            tmp.write_text(json.dumps(merged, sort_keys=True))
            os.replace(tmp, self._cache_path)
        self._dirty = 0

    def result_at(self, point: Mapping[str, float]) -> Dict[str, float]:
        """Simulation summary at one physical design point (dict form).

        The returned dict is a copy: mutating it cannot corrupt the memo
        cache (or the next flush).
        """
        resolved = self.space.resolve(dict(point))
        config = ProcessorConfig.from_design_point(resolved)
        key = config.key()
        cached = self._cache.get(key)
        if cached is not None:
            self._count("cache_hits")
            return dict(cached)
        trace = get_trace(self.benchmark, self.trace_length, self.seed).prepare()
        summary = _summarize(Simulator(config).run(trace))
        self._count("simulations_run")
        self._cache[key] = summary
        self._dirty += 1
        return dict(summary)

    def _simulate_batch(self, configs: Dict[str, Dict[str, int]]) -> None:
        """Simulate the uncached configurations, fanning out when allowed.

        Under tracing, each parallel worker records its simulations into a
        local collector and ships the spans/metrics back through the pool
        result tuple; the batch span below adopts them, so the parent's
        trace shows per-worker simulation spans exactly like the serial
        path shows in-process ones.
        """
        workers = min(self.jobs, len(configs))
        with obs.span("simulate_batch", benchmark=self.benchmark,
                      simulations=len(configs), workers=workers):
            collector = obs.current()
            if workers > 1:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(self.benchmark, self.trace_length, self.seed,
                              obs.enabled()),
                ) as pool:
                    for key, summary, payload in pool.map(
                            _worker_simulate, configs.items()):
                        self._cache[key] = summary
                        if collector is not None:
                            collector.adopt(payload, attrs={"worker": True})
            else:
                trace = get_trace(self.benchmark, self.trace_length, self.seed).prepare()
                for key, kwargs in configs.items():
                    self._cache[key] = _summarize(
                        Simulator(ProcessorConfig(**kwargs)).run(trace)
                    )
        self._dirty += len(configs)
        self._count("simulations_run", len(configs))

    # -- vectorised response functions -------------------------------------

    def metric(self, points: np.ndarray, name: str) -> np.ndarray:
        """Evaluate one summary metric at ``(m, n)`` physical points.

        Uncached points are simulated — in parallel when the runner was
        built with ``jobs > 1`` (or ``$REPRO_JOBS`` says so) — and merged
        into the memo cache, which is flushed once at the end.
        """
        start = obs.monotonic()
        points = np.atleast_2d(np.asarray(points, dtype=float))
        with obs.span("runner/metric", benchmark=self.benchmark, metric=name,
                      points=len(points)) as sp:
            keys: List[str] = []
            pending: Dict[str, Dict[str, int]] = {}
            for row in points:
                resolved = self.space.resolve(self.space.as_dict(row))
                config = ProcessorConfig.from_design_point(resolved)
                key = config.key()
                keys.append(key)
                if key not in self._cache and key not in pending:
                    pending[key] = config.as_dict()
            if pending:
                self._simulate_batch(pending)
            # Stats bookkeeping matches the serial one-point-at-a-time path:
            # each fresh key's first lookup is its simulation, all other
            # lookups are cache hits.
            consumed = set()
            hits = 0
            values = np.empty(len(points))
            for i, key in enumerate(keys):
                if key in pending and key not in consumed:
                    consumed.add(key)
                else:
                    hits += 1
                values[i] = self._cache[key][name]
            if hits:
                self._count("cache_hits", hits)
            self._flush()
            sp.set(uncached=len(pending), cache_hits=hits)
        elapsed = obs.monotonic() - start
        self.metrics.inc("wall_time_s", elapsed)
        self.metrics.observe("metric_wall_s", elapsed)
        obs.observe("runner/metric_wall_s", elapsed)
        return values

    def cpi(self, points: np.ndarray) -> np.ndarray:
        """CPI response function (the paper's modeling target)."""
        return self.metric(points, "cpi")

    def power(self, points: np.ndarray) -> np.ndarray:
        """Power response function (the future-work extension metric)."""
        return self.metric(points, "power")

    def stats(self) -> Dict[str, Any]:
        """Execution statistics: simulations, cache hits, workers, wall time.

        A thin view over :attr:`metrics` — the registry is the source of
        truth (merge it, snapshot it, fold it into a run manifest); this
        method only preserves the historical dict shape.
        """
        return {
            "benchmark": self.benchmark,
            "simulations_run": self.simulations_run,
            "cache_hits": self.cache_hits,
            "jobs": self.jobs,
            "wall_time_s": self.wall_time,
        }

    def __repr__(self) -> str:
        return (
            f"SimulationRunner({self.benchmark!r}, trace={self.trace_length}, "
            f"seed={self.seed}, jobs={self.jobs}, runs={self.simulations_run}, "
            f"hits={self.cache_hits})"
        )
