"""Aggregate report over all regenerated exhibits.

Collects the rendered outputs under ``results/`` into one document, in
registry order, with the ablations appended — the artifact to read after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import results_dir

_RULE = "=" * 72


def collect(directory: Optional[Path] = None) -> Tuple[List[str], List[str]]:
    """(present exhibit texts, missing exhibit names) from ``directory``."""
    directory = directory if directory is not None else results_dir()
    sections: List[str] = []
    missing: List[str] = []
    for key, exp in EXPERIMENTS.items():
        path = directory / (Path(exp.bench).stem.replace("test_", "") + ".txt")
        if path.exists():
            sections.append(f"{_RULE}\n{exp.exhibit}: {exp.title}\n{_RULE}\n"
                            + path.read_text().rstrip())
        else:
            missing.append(exp.exhibit)
    for extra in sorted(directory.glob("ablation_*.txt")) if directory.exists() else []:
        sections.append(f"{_RULE}\n{extra.stem}\n{_RULE}\n" + extra.read_text().rstrip())
    return sections, missing


def write_summary(directory: Optional[Path] = None) -> Path:
    """Write ``results/SUMMARY.txt`` and return its path."""
    directory = directory if directory is not None else results_dir()
    sections, missing = collect(directory)
    header = [
        "Reproduction summary — 'A Predictive Performance Model for "
        "Superscalar Processors' (MICRO 2006)",
        f"exhibits present: {len(sections)}",
    ]
    if missing:
        header.append(
            "missing (run `pytest benchmarks/ --benchmark-only`): "
            + ", ".join(missing)
        )
    text = "\n".join(header) + "\n\n" + "\n\n".join(sections) + "\n"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "SUMMARY.txt"
    path.write_text(text)
    return path
