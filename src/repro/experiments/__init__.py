"""Experiment harness: one module per table/figure, plus shared plumbing."""

from repro.experiments.runner import SimulationRunner

__all__ = ["SimulationRunner"]
