"""Figure 7: predictive accuracy of linear vs RBF network models.

For three benchmarks and increasing sample sizes, both model families are
fitted on the *same* discrepancy-optimised LHS samples and scored on the
same 50-point test set.  The paper's result: the non-linear models win
consistently at every size; for mcf at n=200 the linear model's mean error
is 6.5% vs 2.1% for the RBF network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.design_space import paper_design_space
from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.util.tables import format_table

BENCHMARKS = ("mcf", "twolf", "vortex")


@dataclass
class Fig7Result:
    #: benchmark -> [(sample size, linear mean %, rbf mean %)]
    series: Dict[str, List[Tuple[int, float, float]]]

    def rbf_wins(self, benchmark: str) -> int:
        """Number of sample sizes at which the RBF model beats linear."""
        return sum(1 for _, lin, rbf in self.series[benchmark] if rbf < lin)

    def final_gap(self, benchmark: str) -> float:
        """linear / rbf mean-error ratio at the largest sample size."""
        _, lin, rbf = self.series[benchmark][-1]
        return lin / rbf if rbf else float("inf")


def run(
    benchmarks: Sequence[str] = BENCHMARKS,
    sizes: Sequence[int] = common.SAMPLE_SIZES,
) -> Fig7Result:
    """Fit linear and RBF models at each size and score both."""
    space = paper_design_space()
    series: Dict[str, List[Tuple[int, float, float]]] = {}
    for benchmark in benchmarks:
        phys, cpi = common.test_set(benchmark)
        unit_test = space.encode(phys)
        rows = []
        for size in sizes:
            rbf_result = common.rbf_model(benchmark, size)
            assert rbf_result.errors is not None
            linear = common.linear_model(benchmark, size)
            lin_err = prediction_errors(cpi, linear.predict(unit_test))
            rows.append((size, lin_err.mean, rbf_result.errors.mean))
        series[benchmark] = rows
    return Fig7Result(series=series)


def render(result: Fig7Result) -> str:
    """Plain-text rendering of the comparison tables (Fig. 7)."""
    lines = ["Figure 7: linear vs RBF network mean CPI error (%)"]
    for benchmark, rows in result.series.items():
        lines.append("")
        lines.append(
            format_table(
                ["sample size", "linear %", "RBF %"],
                [(s, round(l, 1), round(r, 1)) for s, l, r in rows],
                title=benchmark,
            )
        )
        lines.append(
            f"RBF wins at {result.rbf_wins(benchmark)}/{len(rows)} sizes; "
            f"final linear/RBF error ratio {result.final_gap(benchmark):.1f}x "
            "(paper mcf: 6.5% vs 2.1% ~ 3.1x)"
        )
    return "\n".join(lines)
