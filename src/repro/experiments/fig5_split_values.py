"""Figure 5: distribution of parameter values at tree splits (mcf).

A different view of the Table 5 tree: for each parameter, every boundary
value at which the mcf regression tree splits.  Parameters the program is
sensitive to split often (and at multiple values); insignificant ones split
rarely or never.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.splits import split_value_distribution
from repro.experiments import common
from repro.models.tree import RegressionTree
from repro.util.tables import format_table

BENCHMARK = "mcf"
SAMPLE_SIZE = 200


#: How many of the earliest (breadth-first) splits count as "significant".
#: With p_min = 1 the tree splits all the way down to single sample points;
#: the deep splits fit residual noise, while the early ones carry the
#: bottleneck structure the paper's figure is about.
SIGNIFICANT_SPLITS = 40


@dataclass
class Fig5Result:
    benchmark: str
    distribution: Dict[str, List[float]]  # all splits
    significant: Dict[str, List[float]]  # earliest SIGNIFICANT_SPLITS only
    total_splits: int

    def split_counts(self) -> Dict[str, int]:
        return {name: len(vals) for name, vals in self.distribution.items()}

    def significant_counts(self) -> Dict[str, int]:
        return {name: len(vals) for name, vals in self.significant.items()}


def _distribution_of(splits, space):
    values: Dict[str, List[float]] = {p.name: [] for p in space.parameters}
    from repro.analysis.splits import _split_value_physical

    for split in splits:
        param = space.parameters[split.dimension]
        values[param.name].append(
            _split_value_physical(space, split.dimension, split.value)
        )
    return values


def run(benchmark: str = BENCHMARK, sample_size: int = SAMPLE_SIZE) -> Fig5Result:
    """Build the tree and collect its split-value distribution."""
    result = common.rbf_model(benchmark, sample_size)
    tree = RegressionTree(result.unit_points, result.responses, p_min=result.info.p_min)
    space = common.training_space()
    distribution = split_value_distribution(tree, space)
    significant = _distribution_of(tree.splits()[:SIGNIFICANT_SPLITS], space)
    return Fig5Result(
        benchmark=benchmark,
        distribution=distribution,
        significant=significant,
        total_splits=sum(len(v) for v in distribution.values()),
    )


def render(result: Fig5Result) -> str:
    """Plain-text rendering of the split distribution (Fig. 5)."""
    rows = []
    sig_counts = result.significant_counts()
    for name, values in result.distribution.items():
        sample = ", ".join(f"{v:.3g}" for v in sorted(values)[:6])
        if len(values) > 6:
            sample += ", ..."
        rows.append((name, sig_counts[name], len(values), sample))
    rows.sort(key=lambda r: (-r[1], -r[2]))
    table = format_table(
        ["parameter", f"#splits (first {SIGNIFICANT_SPLITS})", "#splits (all)",
         "split values (sorted, first 6)"],
        rows,
        title=(
            f"Figure 5: tree split-value distribution for {result.benchmark} "
            f"({result.total_splits} splits total)"
        ),
    )
    note = (
        "paper: memory-system parameters (L2 latency/size, dl1 latency) split "
        "most often for mcf"
    )
    return f"{table}\n{note}"
