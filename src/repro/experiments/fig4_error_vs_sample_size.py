"""Figure 4: model error vs sample size for mcf and twolf.

Mean, standard deviation and maximum of the absolute percentage CPI error
on the 50-point test set, at increasing sample sizes.  The paper's shape:
errors decrease with sample size and the improvement tapers past ~90 —
the same region as the discrepancy-curve knee (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.validation import ErrorReport
from repro.experiments import common
from repro.util.tables import format_table

BENCHMARKS = ("mcf", "twolf")


@dataclass
class Fig4Result:
    #: benchmark -> [(sample size, error report)]
    series: Dict[str, List[Tuple[int, ErrorReport]]]


def run(
    benchmarks: Sequence[str] = BENCHMARKS,
    sizes: Sequence[int] = common.SAMPLE_SIZES,
) -> Fig4Result:
    """Build models at each size and collect error reports."""
    series: Dict[str, List[Tuple[int, ErrorReport]]] = {}
    for benchmark in benchmarks:
        rows = []
        for size in sizes:
            result = common.rbf_model(benchmark, size)
            assert result.errors is not None
            rows.append((size, result.errors))
        series[benchmark] = rows
    return Fig4Result(series=series)


def tapering(result: Fig4Result, benchmark: str, knee: int = 90) -> Tuple[float, float]:
    """(improvement per extra sample before the knee, after the knee).

    Quantifies the paper's taper claim: the pre-knee slope of the mean
    error should be much steeper than the post-knee slope.
    """
    rows = result.series[benchmark]
    before = [(s, e.mean) for s, e in rows if s <= knee]
    after = [(s, e.mean) for s, e in rows if s >= knee]
    def slope(pairs):
        if len(pairs) < 2:
            return 0.0
        (s0, e0), (s1, e1) = pairs[0], pairs[-1]
        return (e0 - e1) / (s1 - s0) if s1 != s0 else 0.0
    return slope(before), slope(after)


def render(result: Fig4Result) -> str:
    """Plain-text rendering of the error-vs-size tables (Fig. 4)."""
    lines = ["Figure 4: mean/std/max CPI error (%) vs sample size"]
    for benchmark, rows in result.series.items():
        lines.append("")
        lines.append(
            format_table(
                ["sample size", "mean %", "std %", "max %"],
                [(s, round(e.mean, 1), round(e.std, 1), round(e.max, 1)) for s, e in rows],
                title=benchmark,
            )
        )
        pre, post = tapering(result, benchmark)
        lines.append(
            f"error improvement per extra sample: {pre:.4f}%/pt before ~90, "
            f"{post:.4f}%/pt after (taper)"
        )
    return "\n".join(lines)
