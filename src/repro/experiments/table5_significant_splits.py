"""Table 5: the most significant regression-tree splitting points.

The earliest (breadth-first) splits of the regression tree built on the
sample-size-200 data, for mcf and vortex.  The paper's qualitative result:
mcf splits first on memory-system parameters (L2 latency, dl1 latency, L2
size, then ROB size and pipeline depth), while vortex splits on dl1
latency, icache size and issue-queue size — the trees expose each
program's bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.splits import SignificantSplit, significant_splits
from repro.experiments import common
from repro.models.tree import RegressionTree
from repro.util.tables import format_table

BENCHMARKS = ("mcf", "vortex")
SAMPLE_SIZE = 200
NUM_SPLITS = 8

#: The paper's Table 5 parameter sequences, for side-by-side comparison.
PAPER_SPLITS = {
    "mcf": ["l2_lat", "dl1_lat", "l2_size_kb", "l2_size_kb", "l2_size_kb",
            "dl1_lat", "rob_size", "pipe_depth"],
    "vortex": ["dl1_lat", "il1_size_kb", "iq_frac", "pipe_depth", "l2_lat",
               "iq_frac", "l2_lat", "rob_size"],
}


@dataclass
class Table5Result:
    splits: Dict[str, List[SignificantSplit]]
    sample_size: int

    def parameters(self, benchmark: str) -> List[str]:
        return [s.parameter for s in self.splits[benchmark]]

    def overlap_with_paper(self, benchmark: str) -> float:
        """Fraction of the paper's split-parameter *set* that also appears
        in ours (order-insensitive; the precise order depends on the
        simulator)."""
        paper = set(PAPER_SPLITS.get(benchmark, []))
        if not paper:
            return 1.0
        ours = set(self.parameters(benchmark))
        return len(paper & ours) / len(paper)


def run(
    benchmarks: Sequence[str] = BENCHMARKS,
    sample_size: int = SAMPLE_SIZE,
    num_splits: int = NUM_SPLITS,
) -> Table5Result:
    """Build trees and extract their earliest splits."""
    space = common.training_space()
    splits: Dict[str, List[SignificantSplit]] = {}
    for benchmark in benchmarks:
        result = common.rbf_model(benchmark, sample_size)
        tree = RegressionTree(
            result.unit_points, result.responses, p_min=result.info.p_min
        )
        splits[benchmark] = significant_splits(tree, space, count=num_splits)
    return Table5Result(splits=splits, sample_size=sample_size)


def render(result: Table5Result) -> str:
    """Plain-text rendering of the Table 5 split tables."""
    lines = [f"Table 5: most significant splits (sample size {result.sample_size})"]
    for benchmark, splits in result.splits.items():
        lines.append("")
        lines.append(
            format_table(
                ["Number"] + [s.rank for s in splits],
                [
                    ["parameter"] + [s.parameter for s in splits],
                    ["value"] + [s.value_label() for s in splits],
                    ["depth"] + [s.depth for s in splits],
                ],
                title=benchmark,
            )
        )
        paper_seq = PAPER_SPLITS.get(benchmark)
        if paper_seq:
            lines.append(f"paper order: {', '.join(paper_seq)}")
            lines.append(
                f"parameter-set overlap with paper: "
                f"{result.overlap_with_paper(benchmark) * 100:.0f}%"
            )
    return "\n".join(lines)
