"""CPI stacks exhibit: where the cycles go, per benchmark and design point.

Not a paper figure — an observability exhibit on top of the paper's
machine.  For every SPEC profile the attributed simulator
(:mod:`repro.simulator.attribution`) breaks measured cycles into binding
constraints at three contrasting design points: a *shallow* corner (short
pipe, small window, fast small caches), the paper's *balanced* center,
and a *deep* corner (long pipe, large window, big slow caches).  The
stacks make the paper's depth x window x memory interaction directly
visible — the same stall taxonomy the redirect penalty and memory-level
parallelism arguments reason about — and every stack's components sum
bitwise-exactly to the measured cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.design_space import paper_design_space
from repro.experiments import common
from repro.simulator.attribution import COMPONENTS, CPIStack, render_stack_table
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator
from repro.workloads.spec2000 import benchmark_names, get_trace, spec_label

#: Trace length: long enough for phase behaviour, short enough for CI.
TRACE_LENGTH = 4096

#: Contrasting physical design points (paper Table 1 parameter space).
DESIGN_POINTS: Dict[str, Dict[str, float]] = {
    "shallow": {
        "pipe_depth": 7, "rob_size": 24, "iq_frac": 0.25, "lsq_frac": 0.25,
        "l2_size_kb": 256, "l2_lat": 5, "il1_size_kb": 8, "dl1_size_kb": 8,
        "dl1_lat": 1,
    },
    "balanced": {
        "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    },
    "deep": {
        "pipe_depth": 24, "rob_size": 128, "iq_frac": 0.75, "lsq_frac": 0.75,
        "l2_size_kb": 8192, "l2_lat": 20, "il1_size_kb": 64,
        "dl1_size_kb": 64, "dl1_lat": 4,
    },
}


@dataclass
class StacksResult:
    """Attributed stacks for every benchmark at every design point."""

    stacks: Dict[str, Dict[str, CPIStack]]  # benchmark -> point -> stack

    def exact(self) -> bool:
        """Whether every stack's components sum bitwise to its cycles."""
        return all(
            sum(stack.components.values()) == stack.cycles
            for per_point in self.stacks.values()
            for stack in per_point.values()
        )


def run() -> StacksResult:
    """Simulate all SPEC profiles at the contrasting points, attributed."""
    space = paper_design_space()
    stacks: Dict[str, Dict[str, CPIStack]] = {}
    with common.stage("stacks/simulate", points=len(DESIGN_POINTS)):
        for bench in benchmark_names():
            trace = get_trace(bench, TRACE_LENGTH, 0)
            per_point: Dict[str, CPIStack] = {}
            for label, point in DESIGN_POINTS.items():
                config = ProcessorConfig.from_design_point(
                    space.resolve(dict(point)))
                sim = Simulator(config)
                sim.run(trace, collect_attribution=True)
                per_point[label] = sim.last_core.attribution.stack()
            stacks[bench] = per_point
    return StacksResult(stacks=stacks)


def render(result: StacksResult) -> str:
    """Plain-text rendering: one stack table per benchmark, then a recap."""
    lines: List[str] = [
        "CPI stacks: cycle accounting for all SPEC profiles at three "
        "design points",
        f"(trace length {TRACE_LENGTH}; components sum bitwise-exactly to "
        "measured cycles)",
    ]
    for bench, per_point in result.stacks.items():
        lines.append("")
        lines.append(f"--- {spec_label(bench)} ---")
        lines.append(render_stack_table(per_point, normalize=True))
    lines.append("")
    lines.append("memory-stall fraction (higher = more memory-bound):")
    for bench, per_point in result.stacks.items():
        cells = "  ".join(
            f"{label}={stack.memory_fraction():.3f}"
            for label, stack in per_point.items()
        )
        lines.append(f"  {spec_label(bench):>12}  {cells}")
    lines.append("")
    lines.append(
        "exactness: "
        + ("every stack sums bitwise to its cycle count"
           if result.exact() else "EXACTNESS VIOLATED")
    )
    return "\n".join(lines)
