"""Figure 6: predicted vs simulated microarchitectural trends (vortex).

Using the sample-size-200 RBF model for vortex, predict CPI over an
(icache size x L2 latency) grid and compare against fresh detailed
simulations at the same points.  The paper finds the predictions closely
mirror the simulated trends, with the largest deviation at small icache +
high L2 latency (the steepest corner of the surface).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.trends import TrendGrid, interaction_grid, trend_comparison
from repro.experiments import common
from repro.experiments.fig1_response_surface import BASE_POINT, IL1_SIZES, L2_LATENCIES

BENCHMARK = "vortex"
SAMPLE_SIZE = 200


@dataclass
class Fig6Result:
    benchmark: str
    grid: TrendGrid
    monotonic_agreement: float
    max_trend_error: float


def run(benchmark: str = BENCHMARK, sample_size: int = SAMPLE_SIZE) -> Fig6Result:
    """Predict and simulate the interaction grid."""
    space = common.training_space()
    model = common.rbf_model(benchmark, sample_size).model
    grid = interaction_grid(
        space,
        common.runner(benchmark).cpi,
        BASE_POINT,
        param_x="l2_lat",
        x_values=L2_LATENCIES,
        param_y="il1_size_kb",
        y_values=IL1_SIZES,
        model=model,
    )
    return Fig6Result(
        benchmark=benchmark,
        grid=grid,
        monotonic_agreement=grid.monotonic_agreement(),
        max_trend_error=grid.max_trend_error(),
    )


def render(result: Fig6Result) -> str:
    """Plain-text rendering of predicted vs simulated trends (Fig. 6)."""
    lines = [
        f"Figure 6: predicted vs simulated CPI trends ({result.benchmark}, "
        "icache size x L2 latency)",
        trend_comparison(result.grid),
        "",
        f"trend direction agreement: {result.monotonic_agreement * 100:.0f}% of grid steps",
        f"max trend error: {result.max_trend_error:.1f}% "
        "(paper: close mirror, worst at small icache + high L2 latency)",
    ]
    return "\n".join(lines)
