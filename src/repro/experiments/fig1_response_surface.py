"""Figure 1: the CPI response surface that motivates non-linear models.

The paper varies the L1 instruction cache size and the L2 cache latency for
*vortex* with everything else fixed, and shows a curved surface: L2 latency
matters much more when the instruction cache is small (more fetch misses
reach the L2).  A linear model cannot represent that interaction.

The experiment reports the simulated surface plus a curvature statistic:
the CPI cost of high L2 latency at the smallest vs the largest icache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.trends import TrendGrid, interaction_grid, trend_comparison
from repro.experiments import common

BENCHMARK = "vortex"
IL1_SIZES = [8, 16, 32, 64]
L2_LATENCIES = [5, 8, 11, 14, 17, 20]

#: All other parameters pinned mid-range (physical units).
BASE_POINT: Dict[str, float] = {
    "pipe_depth": 15,
    "rob_size": 76,
    "iq_frac": 0.5,
    "lsq_frac": 0.5,
    "l2_size_kb": 1448,
    "l2_lat": 12,
    "il1_size_kb": 32,
    "dl1_size_kb": 32,
    "dl1_lat": 2,
}


@dataclass
class Fig1Result:
    grid: TrendGrid
    l2_lat_cost_small_il1: float  # CPI(lat=20) - CPI(lat=5) at il1 = 8KB
    l2_lat_cost_large_il1: float  # same at il1 = 64KB
    interaction_ratio: float  # small-icache cost / large-icache cost


def run(benchmark: str = BENCHMARK) -> Fig1Result:
    """Simulate the (il1_size, l2_lat) surface."""
    space = common.training_space()
    grid = interaction_grid(
        space,
        common.runner(benchmark).cpi,
        BASE_POINT,
        param_x="l2_lat",
        x_values=L2_LATENCIES,
        param_y="il1_size_kb",
        y_values=IL1_SIZES,
    )
    small = float(grid.simulated[0, -1] - grid.simulated[0, 0])
    large = float(grid.simulated[-1, -1] - grid.simulated[-1, 0])
    return Fig1Result(
        grid=grid,
        l2_lat_cost_small_il1=small,
        l2_lat_cost_large_il1=large,
        interaction_ratio=small / large if large else float("inf"),
    )


def render(result: Fig1Result) -> str:
    """Plain-text rendering of the surface and its interaction ratio."""
    lines: List[str] = [
        "Figure 1: CPI response surface (vortex), il1_size x L2 latency",
        trend_comparison(result.grid),
        "",
        f"L2-latency CPI cost at il1=8KB : {result.l2_lat_cost_small_il1:+.3f}",
        f"L2-latency CPI cost at il1=64KB: {result.l2_lat_cost_large_il1:+.3f}",
        f"interaction ratio (small/large): {result.interaction_ratio:.2f}x "
        "(paper: latency hurts much more with a small icache)",
    ]
    return "\n".join(lines)
