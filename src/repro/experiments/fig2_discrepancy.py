"""Figure 2: best obtained L2-star discrepancy vs number of simulations.

For each candidate sample size, many latin hypercube samples are generated
and the lowest discrepancy is recorded.  The curve decreases with a knee
(near 90 in the paper) past which extra simulations improve space coverage
only marginally — the paper's guidance for choosing the simulation budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments import common
from repro.sampling.optimizer import discrepancy_curve, find_knee
from repro.util.tables import render_series

#: Sizes swept; starts at the paper's smallest sample size (30).
SIZES = (30, 40, 50, 60, 70, 80, 90, 110, 130, 150, 175, 200)


@dataclass
class Fig2Result:
    curve: List[Tuple[int, float]]
    knee: float


def run(sizes: Sequence[int] = SIZES, candidates: int = 64) -> Fig2Result:
    """Compute the best-discrepancy-vs-size curve and its knee."""
    space = common.training_space()
    curve = discrepancy_curve(
        space, list(sizes), seed=common.EXPERIMENT_SEED, candidates=candidates
    )
    x = [s for s, _ in curve]
    y = [d for _, d in curve]
    return Fig2Result(curve=curve, knee=find_knee(x, y))


def render(result: Fig2Result) -> str:
    """Plain-text rendering of the curve (Fig. 2 shape)."""
    x = [s for s, _ in result.curve]
    y = [d for _, d in result.curve]
    lines = [
        "Figure 2: best obtained L2-star (centered L2) discrepancy vs sample size",
        render_series(x, y, label="sample size | discrepancy"),
        "",
        f"knee of the curve at sample size ~{result.knee:.0f} "
        "(paper: knee near 90; size chosen near the knee)",
    ]
    return "\n".join(lines)
