"""Index of all reproduced tables and figures.

Maps each experiment id to its paper location, the module that implements
it, and the benchmark file that regenerates it.  Used by documentation and
by the meta-tests that assert every paper exhibit has a harness.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Experiment:
    """One reproduced exhibit of the paper."""

    exhibit: str  # e.g. "Figure 4"
    title: str
    module: str  # repro.experiments module implementing it
    bench: str  # benchmark file regenerating it
    workloads: str  # benchmarks involved


def run_exhibit(exp_id: str, **kwargs):
    """Run one registered exhibit's ``run()`` and return its result.

    The call is wrapped in an ``obs`` span named after the exhibit; when
    the harness raises mid-run, the failure is recorded as a structured
    event (and the exception annotated with the failing stage) so the
    report says *where* it died, not just that it died.  A completed run
    is appended to the run-history ledger with its wall time.
    """
    from repro import obs
    from repro.obs import history

    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown exhibit {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    exp = EXPERIMENTS[exp_id]
    module = importlib.import_module(exp.module)
    start = obs.monotonic()
    with obs.span("exhibit", id=exp_id, exhibit=exp.exhibit):
        try:
            result = module.run(**kwargs)
        except Exception as exc:
            obs.record_failure(f"exhibit/{exp_id}", exc, exhibit=exp.exhibit)
            raise
    manifest = obs.build_manifest(
        f"exhibit:{exp_id}", wall_time_s=obs.monotonic() - start)
    history.append_run(history.record_from_manifest(
        manifest, extra={"exhibit": exp.exhibit}))
    return result


EXPERIMENTS: Dict[str, Experiment] = {
    "fig1": Experiment(
        "Figure 1",
        "CPI response surface (il1 size x L2 latency) motivating non-linear models",
        "repro.experiments.fig1_response_surface",
        "benchmarks/test_fig1_response_surface.py",
        "vortex",
    ),
    "fig2": Experiment(
        "Figure 2",
        "Best obtained L2-star discrepancy vs number of simulations (knee ~90)",
        "repro.experiments.fig2_discrepancy",
        "benchmarks/test_fig2_discrepancy_knee.py",
        "(sampling only)",
    ),
    "fig3": Experiment(
        "Figure 3",
        "RBF network structure (schematic in the paper; actual trained network here)",
        "repro.experiments.fig3_network",
        "benchmarks/test_fig3_network_structure.py",
        "mcf",
    ),
    "fig4": Experiment(
        "Figure 4",
        "Mean/std/max model error vs sample size, tapering past the knee",
        "repro.experiments.fig4_error_vs_sample_size",
        "benchmarks/test_fig4_error_vs_sample_size.py",
        "mcf, twolf",
    ),
    "fig5": Experiment(
        "Figure 5",
        "Distribution of parameter values at regression-tree splits",
        "repro.experiments.fig5_split_values",
        "benchmarks/test_fig5_split_values.py",
        "mcf",
    ),
    "fig6": Experiment(
        "Figure 6",
        "Predicted vs simulated trends for the icache x L2-latency interaction",
        "repro.experiments.fig6_trend_prediction",
        "benchmarks/test_fig6_trend_prediction.py",
        "vortex",
    ),
    "fig7": Experiment(
        "Figure 7",
        "Linear vs RBF network predictive accuracy across sample sizes",
        "repro.experiments.fig7_linear_vs_rbf",
        "benchmarks/test_fig7_linear_vs_rbf.py",
        "mcf, twolf, vortex",
    ),
    "table3": Experiment(
        "Table 3",
        "Error diagnostics for eight benchmarks at sample size 200 (avg 2.8%)",
        "repro.experiments.table3_error_diagnostics",
        "benchmarks/test_table3_error_diagnostics.py",
        "all eight",
    ),
    "table4": Experiment(
        "Table 4",
        "Best p_min/alpha and number of RBF centers vs sample size",
        "repro.experiments.table4_rbf_diagnostics",
        "benchmarks/test_table4_rbf_diagnostics.py",
        "mcf",
    ),
    "table5": Experiment(
        "Table 5",
        "Most significant regression-tree splitting points",
        "repro.experiments.table5_significant_splits",
        "benchmarks/test_table5_significant_splits.py",
        "mcf, vortex",
    ),
    "stacks": Experiment(
        "CPI stacks",
        "Cycle accounting: CPI stacks at contrasting design points (exact sums)",
        "repro.experiments.stacks_cpi_breakdown",
        "benchmarks/test_stacks_cpi_breakdown.py",
        "all eight",
    ),
}
