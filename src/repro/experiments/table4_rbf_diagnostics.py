"""Table 4: RBF model diagnostics for mcf across sample sizes.

For each sample size, the best method parameters found by the AICc grid
search (``p_min``, ``alpha``) and the number of RBF centers selected.  The
paper's observations: best ``p_min`` is typically 1, radii are several
times the tree-region size, and the number of centers stays well below
half the sample size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments import common
from repro.models.rbf import RBFBuildInfo
from repro.util.tables import format_table

BENCHMARK = "mcf"


@dataclass
class Table4Result:
    benchmark: str
    rows: List[Tuple[int, RBFBuildInfo]]  # (sample size, best build info)

    def centers_below_half(self) -> bool:
        """Paper's observation: #centers < sample size / 2 throughout."""
        return all(info.num_centers < size / 2 for size, info in self.rows)


def run(
    benchmark: str = BENCHMARK,
    sizes: Sequence[int] = common.SAMPLE_SIZES,
) -> Table4Result:
    """Collect best (p_min, alpha, centers) per sample size."""
    rows = []
    for size in sizes:
        result = common.rbf_model(benchmark, size)
        rows.append((size, result.info))
    return Table4Result(benchmark=benchmark, rows=rows)


def render(result: Table4Result) -> str:
    """Plain-text rendering of the Table 4 rows."""
    sizes = [size for size, _ in result.rows]
    table = format_table(
        ["Sample size"] + sizes,
        [
            ["p_min"] + [info.p_min for _, info in result.rows],
            ["alpha"] + [info.alpha for _, info in result.rows],
            ["Number of RBF centers"] + [info.num_centers for _, info in result.rows],
        ],
        title=f"Table 4: RBF model diagnostics for {result.benchmark}",
    )
    paper = (
        "paper (mcf): p_min 1-2; alpha 5-12; centers 15/16/22/27/40/76 at "
        "sizes 30/50/70/90/110/200 — always well below half the sample"
    )
    return f"{table}\n{paper}"
