"""Shared experiment configuration and memoised building blocks.

All experiments use the same root seeds, the same 50-point random test set
per benchmark (drawn from the paper's Table 2 restricted space), and the
same per-(benchmark, sample size) RBF models.  Models are memoised
in-process so e.g. the Figure 4 and Figure 7 harnesses don't refit what the
Table 3 harness already built; simulation results are memoised on disk by
:class:`repro.experiments.runner.SimulationRunner`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.design_space import DesignSpace, paper_design_space, paper_test_space
from repro.core.procedure import BuildRBFModel, ModelBuildResult
from repro.experiments.runner import SimulationRunner, resolve_jobs
from repro.models.linear import LinearInteractionModel
from repro.sampling.random_design import random_design

#: Root seed for sampling (LHS candidates, model building).
EXPERIMENT_SEED = 42
#: Seed for the independent random test designs.
TEST_SEED = 123
#: Size of the test set (the paper uses fifty points).
TEST_POINTS = 50
#: Sample sizes reported across the sample-size figures/tables.
SAMPLE_SIZES = (30, 50, 70, 90, 110, 200)
#: Method-parameter grids searched per model (paper Sec. 2.6).
P_MIN_GRID = (1, 2, 3)
ALPHA_GRID = (2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0)

_runners: Dict[str, SimulationRunner] = {}
_test_sets: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
_builders: Dict[str, BuildRBFModel] = {}
_models: Dict[Tuple[str, int], ModelBuildResult] = {}
_linear_models: Dict[Tuple[str, int], LinearInteractionModel] = {}


@contextmanager
def stage(name: str, **attrs) -> Iterator[object]:
    """Span one pipeline stage and attribute any failure to it.

    Wraps the body in an ``obs`` span; when the body raises, the exception
    is recorded as a structured failure event naming the stage (and
    annotated with a note, see :func:`repro.obs.record_failure`) before it
    propagates.  This is how a fig/table exhibit that dies mid-run reports
    *which* stage failed rather than just a bare traceback.
    """
    with obs.span(name, **attrs) as sp:
        try:
            yield sp
        except Exception as exc:
            obs.record_failure(name, exc, **attrs)
            raise


def runner_cost_snapshot() -> Dict[str, object]:
    """Merged simulation-cost metrics across the shared memoised runners.

    ``{"benchmarks": [...], "metrics": <snapshot>}`` — the cumulative
    cost behind everything computed so far in this process, in the same
    snapshot shape :func:`repro.obs.build_manifest` expects.  This is the
    public seam exhibit manifests and the run-history ledger read instead
    of poking at the memo tables.
    """
    metrics = obs.MetricsRegistry()
    for bench_runner in _runners.values():
        metrics.merge(bench_runner.metrics.snapshot())
    return {"benchmarks": sorted(_runners), "metrics": metrics.snapshot()}


def training_space() -> DesignSpace:
    """The paper's Table 1 training design space (fresh instance)."""
    return paper_design_space()


def runner(benchmark: str, jobs: Optional[int] = None) -> SimulationRunner:
    """The shared memoised simulation runner for ``benchmark``.

    ``jobs`` sets the parallel fan-out of the runner's ``metric`` path
    (``None`` defers to ``$REPRO_JOBS``, defaulting to serial).  Passing an
    explicit value retunes an already-memoised runner, so a harness can
    parallelise the grid mid-session without dropping the warm cache.
    """
    if benchmark not in _runners:
        _runners[benchmark] = SimulationRunner(benchmark, jobs=jobs)
    elif jobs is not None:
        _runners[benchmark].jobs = resolve_jobs(jobs)
    return _runners[benchmark]


def test_set(benchmark: str) -> Tuple[np.ndarray, np.ndarray]:
    """(physical test points, simulated CPIs) for ``benchmark``.

    Fifty independently random points from the Table 2 space, identical
    across all experiments touching the benchmark.
    """
    if benchmark not in _test_sets:
        with stage("test_set", benchmark=benchmark, points=TEST_POINTS):
            tspace = paper_test_space()
            unit = random_design(tspace, TEST_POINTS, seed=TEST_SEED)
            phys = tspace.decode(unit)
            cpi = runner(benchmark).cpi(phys)
        _test_sets[benchmark] = (phys, cpi)
    return _test_sets[benchmark]


def builder(benchmark: str) -> BuildRBFModel:
    """The shared BuildRBFModel procedure instance for ``benchmark``."""
    if benchmark not in _builders:
        _builders[benchmark] = BuildRBFModel(
            training_space(),
            runner(benchmark).cpi,
            seed=EXPERIMENT_SEED,
            p_min_grid=P_MIN_GRID,
            alpha_grid=ALPHA_GRID,
        )
    return _builders[benchmark]


def rbf_model(benchmark: str, sample_size: int) -> ModelBuildResult:
    """Memoised RBF model (with test-set error report) for one benchmark/size.

    The returned network is calibrated on its own training sample, so
    exhibits may call :meth:`~repro.models.base.Model.predict_with_provenance`
    directly; calibration only attaches an uncertainty record — predictions
    stay bitwise identical to the uncalibrated fit.
    """
    key = (benchmark, sample_size)
    if key not in _models:
        phys, cpi = test_set(benchmark)
        with stage("rbf_model", benchmark=benchmark, sample_size=sample_size):
            result = builder(benchmark).build(sample_size, phys, cpi)
            result.network.calibrate(result.unit_points, result.responses)
            _models[key] = result
    return _models[key]


def linear_model(benchmark: str, sample_size: int) -> LinearInteractionModel:
    """Memoised linear baseline fitted on the *same* LHS sample as the RBF.

    Per the paper's Sec. 4.2: the linear models use the identical
    space-filling samples, main effects + two-factor interactions, and AIC
    variable selection.
    """
    key = (benchmark, sample_size)
    if key not in _linear_models:
        result = rbf_model(benchmark, sample_size)
        with stage("linear_model", benchmark=benchmark,
                   sample_size=sample_size):
            _linear_models[key] = LinearInteractionModel.fit(
                result.unit_points, result.responses, criterion="aic"
            )
    return _linear_models[key]


def clear_memos() -> None:
    """Drop all in-process memoisation (used by tests)."""
    _runners.clear()
    _test_sets.clear()
    _builders.clear()
    _models.clear()
    _linear_models.clear()
