"""Figure 3: the structure of the RBF network.

The paper's Figure 3 is a schematic — an input layer reading the n design
parameters, a hidden layer of m radial basis functions, and a linear
additive output layer.  This exhibit renders the *actual* trained network
for mcf: layer sizes, the weight/center/radius of every hidden unit, and a
summary of where the selected centers sit in the design space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments import common
from repro.models.rbf import RBFNetwork
from repro.util.tables import format_table

BENCHMARK = "mcf"
SAMPLE_SIZE = 200


@dataclass
class Fig3Result:
    benchmark: str
    network: RBFNetwork
    sample_size: int

    @property
    def inputs(self) -> int:
        return self.network.dimension

    @property
    def hidden_units(self) -> int:
        return self.network.num_centers


def run(benchmark: str = BENCHMARK, sample_size: int = SAMPLE_SIZE) -> Fig3Result:
    """Fetch the trained network for the benchmark/size."""
    result = common.rbf_model(benchmark, sample_size)
    return Fig3Result(benchmark=benchmark, network=result.model,
                      sample_size=sample_size)


def render(result: Fig3Result) -> str:
    """Plain-text rendering of the network structure (Fig. 3)."""
    net = result.network
    space = common.training_space()
    lines: List[str] = [
        f"Figure 3: RBF network structure (trained for {result.benchmark}, "
        f"n={result.sample_size})",
        f"  input layer : {net.dimension} design parameters "
        f"({', '.join(space.names)})",
        f"  hidden layer: {net.num_centers} Gaussian radial basis functions",
        "  output layer: linear additive combination (Eq. 1)",
        "",
    ]
    # Largest-|weight| units, decoded to physical centers.
    order = np.argsort(-np.abs(net.weights))[:6]
    rows = []
    for j in order:
        phys = space.decode(net.centers[j][None, :])[0]
        center_txt = ", ".join(
            f"{name}={v:.3g}" for name, v in zip(space.names, phys)
        )
        rows.append((int(j), f"{net.weights[j]:+.3f}",
                     f"{net.radii[j].mean():.2f}", center_txt[:72]))
    lines.append(format_table(
        ["unit", "weight", "mean radius", "center (physical, decoded)"],
        rows,
        title="Highest-weight hidden units",
    ))
    return "\n".join(lines)
