"""Output plumbing for the benchmark harness.

Each benchmark regenerating a paper exhibit both prints its rows/series
(visible with ``pytest -s`` and in failure output) and writes them under
``results/`` so the artifacts survive the pytest run.  Alongside every
``<name>.txt`` a ``<name>.manifest.json`` records provenance: seed, git
SHA, package version, and the simulation-cost metrics accumulated by the
shared runners (see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import obs

_RESULTS_ENV = "REPRO_RESULTS_DIR"


def results_dir() -> Path:
    """Directory for rendered experiment outputs."""
    return Path(os.environ.get(_RESULTS_ENV, "results"))


def _exhibit_manifest(name: str) -> dict:
    """Provenance manifest for one exhibit's emitted artifact."""
    from repro.experiments import common

    cost = common.runner_cost_snapshot()
    return obs.build_manifest(
        command=f"exhibit:{name}",
        seed=common.EXPERIMENT_SEED,
        metrics=cost["metrics"],
        extra={
            "benchmarks": cost["benchmarks"],
            "test_seed": common.TEST_SEED,
        },
    )


def emit(name: str, text: str) -> Path:
    """Print ``text`` and persist it as ``results/<name>.txt``.

    Also writes ``results/<name>.manifest.json`` capturing the run's
    provenance and the cumulative simulation cost behind the exhibit,
    and appends the run to the history ledger so rendered exhibits show
    up in ``repro history`` and the HTML report.
    """
    from repro.obs import history

    obs.echo()
    obs.echo(text)
    out = results_dir()
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.txt"
    path.write_text(text + "\n")
    manifest = _exhibit_manifest(name)
    obs.write_manifest(out / f"{name}.manifest.json", manifest)
    history.append_run(history.record_from_manifest(
        manifest, extra={"artifact": str(path)}))
    return path
