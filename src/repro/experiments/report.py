"""Output plumbing for the benchmark harness.

Each benchmark regenerating a paper exhibit both prints its rows/series
(visible with ``pytest -s`` and in failure output) and writes them under
``results/`` so the artifacts survive the pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path

_RESULTS_ENV = "REPRO_RESULTS_DIR"


def results_dir() -> Path:
    """Directory for rendered experiment outputs."""
    return Path(os.environ.get(_RESULTS_ENV, "results"))


def emit(name: str, text: str) -> Path:
    """Print ``text`` and persist it as ``results/<name>.txt``."""
    print()
    print(text)
    out = results_dir()
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.txt"
    path.write_text(text + "\n")
    return path
