"""CPI estimation via statistical simulation.

Ties the profile and synthesizer together: profile the benchmark once,
then estimate CPI at any configuration by simulating a *short* synthetic
trace.  Per-query cost is one reduced simulation (vs the paper's approach,
whose per-query cost after model construction is a dot product) — the
trade-off the related-work experiment quantifies.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.core.design_space import DesignSpace, paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator
from repro.simulator.trace import Trace
from repro.statsim.profile import StatProfile, profile_trace
from repro.statsim.synthesize import synthesize_trace


class StatisticalSimulator:
    """Reduced-trace CPI estimator for one profiled benchmark.

    Parameters
    ----------
    source:
        Either a full :class:`Trace` (profiled on construction) or an
        already-measured :class:`StatProfile`.
    synthetic_length:
        Length of the regenerated trace — the method's cost knob (the
        related work's claim is that a few thousand instructions converge).
    seed:
        Synthesis seed.
    space:
        Design space for :meth:`cpi` point dictionaries (defaults to the
        paper's space).
    """

    def __init__(
        self,
        source,
        synthetic_length: int = 6000,
        seed: int = 0,
        space: Optional[DesignSpace] = None,
    ):
        if isinstance(source, Trace):
            self.profile: StatProfile = profile_trace(source)
        elif isinstance(source, StatProfile):
            self.profile = source
        else:
            raise TypeError("source must be a Trace or a StatProfile")
        self.synthetic_length = synthetic_length
        self.space = space if space is not None else paper_design_space()
        self.trace = synthesize_trace(self.profile, synthetic_length, seed)
        self.simulations_run = 0

    def cpi_config(self, config: ProcessorConfig) -> float:
        """Estimate CPI at one processor configuration.

        ``simulations_run`` counts completed simulations only, so a
        raising simulation does not inflate the cost accounting.
        """
        value = Simulator(config).run(self.trace).cpi
        self.simulations_run += 1
        return value

    def cpi(self, points: np.ndarray) -> np.ndarray:
        """Estimate CPI at physical design points (runner-compatible).

        All points are resolved in one vectorised pass
        (:meth:`DesignSpace.resolve_batch`) and deduplicated: identical
        resolved configurations — common when fraction-of parameters
        round to the same queue sizes — are simulated once and their
        result scattered to every requesting row.  ``simulations_run``
        therefore counts *unique* configurations actually simulated.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        out = np.empty(len(points))
        if not len(points):
            return out
        resolved = self.space.resolve_batch(points)
        # Configs are built from rounded values, so dedupe on those.
        keys = np.rint(resolved).astype(np.int64)
        unique_rows, inverse = np.unique(keys, axis=0, return_inverse=True)
        names = self.space.names
        unique_cpis = np.empty(len(unique_rows))
        for j, row in enumerate(unique_rows):
            point = dict(zip(names, row.tolist()))
            unique_cpis[j] = self.cpi_config(ProcessorConfig.from_design_point(point))
        out[:] = unique_cpis[inverse]
        return out
