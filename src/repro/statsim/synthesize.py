"""Synthetic-trace regeneration from a statistical profile.

The inverse of :mod:`repro.statsim.profile`: draw a short instruction
stream whose statistics match the measured ones.  Memory addresses are the
interesting part — they are generated to *reproduce the measured
reuse-distance distribution* by maintaining an LRU stack of synthetic
lines and revisiting at sampled stack distances, so the synthetic trace
exercises any cache hierarchy the way the original did (the core insight
of statistical simulation).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from repro.simulator import isa
from repro.simulator.trace import Trace
from repro.statsim.profile import StatProfile
from repro.util.rng import make_rng

_CODE_BASE = 0x0060_0000
_DATA_BASE = 0x4000_0000


class _ReuseStack:
    """LRU stack of synthetic data lines supporting distance-d revisits."""

    def __init__(self):
        self._stack: "OrderedDict[int, None]" = OrderedDict()
        self._next_line = 0

    def fresh(self) -> int:
        line = self._next_line
        self._next_line += 1
        self._stack[line] = None
        return line

    def reuse(self, distance: int) -> int:
        """Revisit the line at LRU-stack distance ``distance`` (clamped)."""
        if not self._stack:
            return self.fresh()
        distance = min(distance, len(self._stack) - 1)
        for i, line in enumerate(reversed(self._stack)):
            if i == distance:
                self._stack.move_to_end(line)
                return line
        # Unreachable given the clamp, but keep a safe fallback.
        return self.fresh()


def _sampler(pairs: List[Tuple[int, float]], rng: np.random.Generator):
    values = np.array([v for v, _ in pairs])
    probs = np.array([p for _, p in pairs], dtype=float)
    probs = probs / probs.sum()

    def draw() -> int:
        return int(rng.choice(values, p=probs))

    return draw


def synthesize_trace(profile: StatProfile, length: int, seed: int = 0) -> Trace:
    """Generate a ``length``-instruction synthetic trace from ``profile``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = make_rng(seed, "statsim", profile.instructions, length)

    draw_block_len = _sampler(profile.block_lengths, rng)
    draw_dep = _sampler(profile.dep_distances, rng)
    op_values = np.array(sorted(profile.op_mix))
    op_probs = np.array([profile.op_mix[v] for v in op_values], dtype=float)
    op_probs /= op_probs.sum()

    # Static code layout sized like the original program.
    mean_len = max(2, int(np.mean([v for v, _ in profile.block_lengths])))
    num_blocks = max(1, profile.code_footprint_instrs // mean_len)
    site_is_jump = rng.random(num_blocks) < profile.jump_frac_of_control
    site_dominant = rng.random(num_blocks) < profile.taken_frac

    reuse_bounds = [b for b, _ in profile.reuse_octaves]
    reuse_probs = np.array([p for _, p in profile.reuse_octaves], dtype=float)
    reuse_probs /= reuse_probs.sum()
    stack = _ReuseStack()

    # Generic dependence draws already land on loads at roughly the load
    # share of the stream; only the *excess* chaining must be injected
    # explicitly, or the synthetic trace over-serialises.
    base_load_rate = float(profile.op_mix.get(isa.LOAD, 0.0))
    excess_chain = max(
        0.0,
        (profile.load_load_dep_frac - base_load_rate) / max(1e-9, 1.0 - base_load_rate),
    )

    op_out = np.zeros(length, dtype=np.int8)
    src1_out = np.zeros(length, dtype=np.int32)
    src2_out = np.zeros(length, dtype=np.int32)
    addr_out = np.zeros(length, dtype=np.int64)
    pc_out = np.zeros(length, dtype=np.int64)
    taken_out = np.zeros(length, dtype=bool)

    i = 0
    recent_loads: List[int] = []
    while i < length:
        b = int(rng.integers(num_blocks))
        block_len = max(2, min(16, draw_block_len()))
        base_pc = _CODE_BASE + (b * mean_len) * 4
        for j in range(block_len):
            if i >= length:
                break
            pc_out[i] = base_pc + 4 * j
            is_last = j == block_len - 1
            if is_last:
                if site_is_jump[b]:
                    op_out[i] = isa.JUMP
                    taken_out[i] = True
                else:
                    op_out[i] = isa.BRANCH
                    follows = rng.random() < profile.branch_bias
                    taken_out[i] = bool(site_dominant[b]) == follows
                d = draw_dep()
                if 0 < d <= i:
                    src1_out[i] = d
            else:
                op = int(rng.choice(op_values, p=op_probs))
                op_out[i] = op
                if op == isa.LOAD or op == isa.STORE:
                    k = int(rng.choice(len(reuse_bounds), p=reuse_probs))
                    bound = reuse_bounds[k]
                    if bound == 0:
                        line = stack.fresh()
                    else:
                        lo = bound // 2
                        distance = int(rng.integers(lo, bound)) if bound > 1 else 1
                        line = stack.reuse(distance)
                    addr_out[i] = _DATA_BASE + line * 64 + 8 * int(rng.integers(0, 8))
                    # Reproduce the measured pointer-chasing share: with
                    # the profiled probability, this load's operand comes
                    # from an earlier load — at a distance drawn from the
                    # measured dependence-distance distribution, so chains
                    # have realistic slack rather than full serialisation.
                    if (op == isa.LOAD and recent_loads
                            and rng.random() < excess_chain):
                        d = draw_dep()
                        target = None
                        for idx in reversed(recent_loads):
                            if i - idx >= d:
                                target = idx
                                break
                        if target is None:
                            target = recent_loads[0]
                        src1_out[i] = i - target
                    if op == isa.LOAD:
                        recent_loads.append(i)
                        if len(recent_loads) > 64:
                            recent_loads.pop(0)
                if src1_out[i] == 0:
                    d = draw_dep()
                    if 0 < d <= i:
                        src1_out[i] = d
                if rng.random() < profile.dep2_prob:
                    d = draw_dep()
                    if 0 < d <= i:
                        src2_out[i] = d
            i += 1

    trace = Trace(
        op=op_out,
        src1=src1_out,
        src2=src2_out,
        addr=addr_out,
        pc=pc_out,
        taken=taken_out,
        name="statsim",
    )
    trace.validate()
    return trace
