"""Statistical simulation (related-work baseline; paper Sec. 5).

The paper's related work discusses statistical simulation (Eeckhout et
al., Oskin et al.'s HLS): profile a program's execution into statistics,
generate a *short* synthetic trace from those statistics, and simulate the
short trace — converging to a CPI estimate in far fewer instructions than
the full program.

This package implements that method from scratch so the experiments can
compare it against the paper's approach: :mod:`profile` measures a trace
into a :class:`~repro.statsim.profile.StatProfile`, :mod:`synthesize`
regenerates a reduced synthetic trace from the statistics, and
:mod:`estimate` wraps both into a per-configuration CPI estimator.
"""

from repro.statsim.estimate import StatisticalSimulator
from repro.statsim.profile import StatProfile, profile_trace
from repro.statsim.synthesize import synthesize_trace

__all__ = [
    "StatisticalSimulator",
    "StatProfile",
    "profile_trace",
    "synthesize_trace",
]
