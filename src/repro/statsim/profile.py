"""Trace profiling into the statistics used by statistical simulation.

Captures what Eeckhout et al. call the *statistical profile*: instruction
mix, basic-block size distribution, register dependence-distance
distribution, branch behaviour (taken rate and per-site predictability),
and — the part that matters most for memory behaviour — the reuse-distance
distribution of data cache lines, measured in distinct-lines-between-reuses
(stack distance), bucketed into octaves.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.simulator import isa
from repro.simulator.trace import Trace

#: Reuse distances are bucketed into powers of two up to this many lines;
#: anything beyond (or never reused) falls into the "cold" bucket.
MAX_REUSE_LINES = 1 << 17


@dataclass
class StatProfile:
    """Measured statistics of one program trace."""

    instructions: int
    op_mix: Dict[int, float]  # op class -> fraction of non-control slots
    block_lengths: List[Tuple[int, float]]  # (length, probability)
    dep_distances: List[Tuple[int, float]]  # (distance, probability)
    dep2_prob: float
    jump_frac_of_control: float
    taken_frac: float
    branch_bias: float  # mean per-site dominant-outcome frequency
    num_branch_sites: int
    code_footprint_instrs: int
    #: (octave upper bound in lines, probability) for data-line reuse;
    #: the final entry with bound 0 holds the cold/compulsory share.
    reuse_octaves: List[Tuple[int, float]] = field(default_factory=list)
    store_frac_of_mem: float = 0.0
    #: Fraction of loads whose first operand is produced by another load —
    #: the pointer-chasing (serialised memory) share, which dominates how
    #: much memory latency the window can hide.
    load_load_dep_frac: float = 0.0


def _reuse_octaves(lines: np.ndarray, warm_frac: float = 0.25) -> List[Tuple[int, float]]:
    """Stack-distance histogram over octaves (LRU stack via OrderedDict).

    The first ``warm_frac`` of the references only warm the stack and are
    excluded from the histogram — otherwise every first touch of the hot
    working set is misclassified as cold, inflating the synthetic trace's
    compulsory-miss share.
    """
    stack: "OrderedDict[int, None]" = OrderedDict()
    octaves: Dict[int, int] = {}
    cold = 0
    recorded = 0
    warm_until = int(len(lines) * warm_frac)
    for i, line in enumerate(lines.tolist()):
        record = i >= warm_until
        if record:
            recorded += 1
        if line in stack:
            # Stack distance = number of distinct lines above this one.
            depth = 0
            for key in reversed(stack):
                if key == line:
                    break
                depth += 1
            stack.move_to_end(line)
            if record:
                bound = 1
                while bound < max(depth, 1) and bound < MAX_REUSE_LINES:
                    bound <<= 1
                octaves[bound] = octaves.get(bound, 0) + 1
        else:
            if record:
                cold += 1
            stack[line] = None
            if len(stack) > MAX_REUSE_LINES:
                stack.popitem(last=False)
    total = recorded or 1
    out = [(bound, count / total) for bound, count in sorted(octaves.items())]
    out.append((0, cold / total))
    return out


def profile_trace(trace: Trace, reuse_sample: int = 6000) -> StatProfile:
    """Measure a :class:`StatProfile` from ``trace``.

    ``reuse_sample`` caps the number of memory references used for the
    (quadratic-ish) stack-distance measurement; the leading portion of the
    trace is used, which is how profiling tools subsample too.
    """
    n = len(trace)
    if n == 0:
        raise ValueError("cannot profile an empty trace")

    control = (trace.op == isa.BRANCH) | (trace.op == isa.JUMP)
    non_control = ~control
    ops = trace.op[non_control]
    counts = np.bincount(ops, minlength=isa.NUM_OP_CLASSES).astype(float)
    total_nc = counts.sum() or 1.0
    op_mix = {
        code: counts[code] / total_nc
        for code in range(isa.NUM_OP_CLASSES)
        if counts[code] > 0
    }

    # Basic blocks end at control instructions.
    ends = np.nonzero(control)[0]
    if len(ends):
        starts = np.concatenate([[-1], ends[:-1]])
        lengths = (ends - starts).astype(int)
        values, freq = np.unique(lengths, return_counts=True)
        block_lengths = [(int(v), float(f) / len(lengths)) for v, f in zip(values, freq)]
    else:
        block_lengths = [(min(n, 8), 1.0)]

    deps = np.concatenate([trace.src1[trace.src1 > 0], trace.src2[trace.src2 > 0]])
    if len(deps):
        capped = np.minimum(deps, 64)
        values, freq = np.unique(capped, return_counts=True)
        dep_distances = [(int(v), float(f) / len(capped)) for v, f in zip(values, freq)]
    else:
        dep_distances = [(1, 1.0)]
    dep2_prob = float((trace.src2 > 0).mean())

    branches = trace.op == isa.BRANCH
    jumps = trace.op == isa.JUMP
    num_control = int(control.sum()) or 1
    taken_frac = float(trace.taken[branches].mean()) if branches.any() else 0.0
    biases = []
    pcs = trace.pc[branches]
    outcomes = trace.taken[branches]
    for pc in np.unique(pcs):
        site = outcomes[pcs == pc]
        p = site.mean()
        biases.append(max(p, 1 - p))
    mem_mask = (trace.op == isa.LOAD) | (trace.op == isa.STORE)
    mem_lines = (trace.addr[mem_mask] >> 6)[: 2 * reuse_sample]
    stores = trace.op[mem_mask]

    # Load -> load dependence share (serialised pointer chains).
    load_idx = np.nonzero(trace.op == isa.LOAD)[0]
    chained = 0
    for i in load_idx.tolist():
        d = int(trace.src1[i])
        if d and trace.op[i - d] == isa.LOAD:
            chained += 1
    load_load = chained / len(load_idx) if len(load_idx) else 0.0

    return StatProfile(
        instructions=n,
        op_mix=op_mix,
        block_lengths=block_lengths,
        dep_distances=dep_distances,
        dep2_prob=dep2_prob,
        jump_frac_of_control=float(jumps.sum()) / num_control,
        taken_frac=taken_frac,
        branch_bias=float(np.mean(biases)) if biases else 1.0,
        num_branch_sites=len(np.unique(pcs)) if branches.any() else 1,
        code_footprint_instrs=int((trace.pc.max() - trace.pc.min()) // 4 + 1),
        reuse_octaves=_reuse_octaves(mem_lines),
        store_frac_of_mem=float((stores == isa.STORE).mean()) if mem_mask.any() else 0.0,
        load_load_dep_frac=load_load,
    )
