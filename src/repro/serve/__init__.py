"""repro.serve — the observable model-serving layer (``repro serve``).

The paper's pitch is that a fitted model answers "what is CPI at this
design point" in microseconds instead of simulator-hours; this package
turns that answer into a long-lived service.  A dependency-free asyncio
HTTP server (:mod:`repro.serve.http`) fronts a transport-independent
application (:mod:`repro.serve.app`) that loads calibrated models from
the registry (:mod:`repro.models.registry`), serves single and batched
predictions through the vectorised
:meth:`~repro.models.base.Model.predict_batch` path — bitwise-identical
to sequential single-point calls — with
:meth:`~repro.models.base.Model.predict_with_provenance` uncertainty
bands and extrapolation flags per point, and reports itself through
:mod:`repro.obs.live`: streaming request traces, windowed metrics,
a JSONL access log and a per-session ledger record.

Endpoints: ``POST /predict``, ``GET /models``, ``GET /healthz``,
``GET /metrics``, ``GET /version``.

Blocking I/O in async handlers is forbidden here by lint rule OBS004;
file writes go through the :mod:`repro.obs.live` sinks, and model
loading happens synchronously at startup.
"""

from repro.serve.app import ModelService, ServingApp
from repro.serve.http import run_server, serve_forever

__all__ = [
    "ModelService",
    "ServingApp",
    "run_server",
    "serve_forever",
]
