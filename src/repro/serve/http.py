"""Minimal asyncio HTTP/1.1 shell over :class:`~repro.serve.app.ServingApp`.

Stdlib-only by design: :func:`asyncio.start_server` plus a small
request parser covering exactly what the serving API needs — a request
line, headers, an optional ``Content-Length`` body — answering every
request with a JSON payload and ``Connection: close``.  All file
telemetry (access log, streaming trace) lives behind the synchronous
:mod:`repro.obs.live` sinks invoked from :meth:`ServingApp.handle`;
the async handlers here never touch files, sockets or clocks directly
(lint rule OBS004 enforces that).

Shutdown is deterministic: with ``max_requests`` set on the app, the
server closes itself once the budget is spent — the hook the CI smoke
job uses to run a real client against a real socket and still exit.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional, Tuple

from repro.serve.app import ServingApp

#: Largest accepted request body (covers a 100k-point batch with room).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _render_response(status: int, payload: Dict[str, Any]) -> bytes:
    """One complete HTTP/1.1 response with a JSON body."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Optional[bytes]]]:
    """Parse one request; ``None`` for an empty connection.

    Raises ``ValueError`` for a malformed request the caller should
    answer with 400, and returns ``None`` when the client connected and
    sent nothing (just close the socket).
    """
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 2:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise ValueError(f"bad Content-Length: {value.strip()!r}")
    if content_length > MAX_BODY_BYTES:
        raise ValueError(f"body of {content_length} bytes exceeds the "
                         f"{MAX_BODY_BYTES}-byte limit")
    body: Optional[bytes] = None
    if content_length > 0:
        body = await reader.readexactly(content_length)
    return method, target, body


async def _handle_client(
    app: ServingApp,
    stop: asyncio.Event,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one connection: one request, one JSON response, close."""
    try:
        try:
            request = await _read_request(reader)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            writer.write(_render_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        if request is None:
            return
        method, target, body = request
        status, payload = app.handle(method, target, body)
        writer.write(_render_response(status, payload))
        await writer.drain()
    except (ConnectionError, BrokenPipeError):
        pass  # client went away mid-response; nothing to answer
    finally:
        writer.close()
        if app.done:
            stop.set()


async def run_server(
    app: ServingApp,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional["asyncio.Future"] = None,
) -> None:
    """Run the server until the app's request budget is spent.

    ``ready``, when given, is resolved with the bound ``(host, port)``
    once the socket is listening — how tests and the CLI discover an
    ephemeral port.  Without ``max_requests`` on the app this coroutine
    runs until cancelled (the CLI maps Ctrl-C onto that).
    """
    stop = asyncio.Event()

    async def client_connected(reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        await _handle_client(app, stop, reader, writer)

    try:
        server = await asyncio.start_server(client_connected, host, port)
    except OSError as exc:
        if ready is not None and not ready.done():
            ready.set_exception(exc)
            return
        raise
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None and not ready.done():
        ready.set_result(bound)
    try:
        async with server:
            if app.done:  # zero-budget edge: never accept anything
                return
            await stop.wait()
    finally:
        server.close()


def serve_forever(
    app: ServingApp,
    host: str = "127.0.0.1",
    port: int = 8321,
    on_ready: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> None:
    """Blocking entry point for the CLI: run until budget or Ctrl-C.

    ``on_ready`` is called once with the bound ``(host, port)`` — with
    ``port=0`` that is how the caller learns the ephemeral port.  A bind
    failure raises ``OSError`` before ``on_ready`` fires.
    """

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        ready: "asyncio.Future" = loop.create_future()
        task = asyncio.ensure_future(run_server(app, host, port, ready=ready))
        bound = await ready  # raises OSError when the bind failed
        if on_ready is not None:
            on_ready((bound[0], bound[1]))
        await task

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass  # clean operator shutdown; the CLI writes the session record
