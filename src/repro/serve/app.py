"""Transport-independent serving application behind ``repro serve``.

:class:`ServingApp` is the whole service minus the network: it loads
content-verified models from a :class:`~repro.models.registry
.ModelRegistry`, routes ``(method, path, body)`` triples to endpoint
handlers, and records every request into its own
:class:`~repro.obs.metrics.MetricsRegistry`, the active span trace and an
optional :class:`~repro.obs.live.AccessLog`.  The asyncio HTTP layer
(:mod:`repro.serve.http`) is a thin shell over :meth:`ServingApp.handle`;
tests drive :meth:`handle` directly, so every endpoint is exercised
without opening a socket.

Prediction goes through the vectorised
:meth:`~repro.models.base.Model.predict_with_provenance` /
:meth:`~repro.models.base.Model.predict_batch` path, whose contract is
that a 10k-point batch returns CPI bitwise-identical to 10k sequential
single-point ``predict`` calls — so a client batching requests never
changes the numbers, only the latency.
"""

from __future__ import annotations

import json
import platform
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.models.io import model_family
from repro.models.registry import ModelRegistry, RegistryEntry, content_hash
from repro.obs.live import AccessLog, MetricsWindow

#: Maximum accepted points per /predict request (guards accidental
#: multi-GB JSON payloads, far above the 10k acceptance batch).
MAX_BATCH_POINTS = 100_000


class ModelService:
    """One loaded, hash-verified model ready to serve predictions."""

    def __init__(self, entry: RegistryEntry, model: Any,
                 parameter_names: Optional[List[str]],
                 metadata: Mapping[str, Any]):
        self.entry = entry
        self.model = model
        self.parameter_names = list(parameter_names or [])
        self.metadata = dict(metadata)
        dimension = getattr(model, "dimension", None)
        if dimension is None and self.parameter_names:
            dimension = len(self.parameter_names)
        self.dimension: Optional[int] = dimension

    @property
    def calibrated(self) -> bool:
        """Whether the model carries an uncertainty calibration."""
        return self.model.uncertainty is not None

    def describe(self) -> Dict[str, Any]:
        """The /models record: index entry plus serving-relevant extras."""
        record = self.entry.as_record()
        record["calibrated"] = self.calibrated
        record["dimension"] = self.dimension
        record["parameter_names"] = self.parameter_names
        return record


class ServingApp:
    """Routes requests to loaded models and observes itself doing it.

    Parameters
    ----------
    registry:
        The model registry to serve from.
    benchmark, family:
        Optional filters: serve only matching registrations.
    access_log:
        Optional :class:`~repro.obs.live.AccessLog`; one record per
        handled request.
    max_requests:
        When set, :attr:`done` turns true after that many requests —
        the HTTP layer's deterministic-shutdown hook for CI smoke runs.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        benchmark: Optional[str] = None,
        family: Optional[str] = None,
        access_log: Optional[AccessLog] = None,
        max_requests: Optional[int] = None,
    ):
        self.registry = registry
        self.benchmark = benchmark
        self.family = family
        self.access_log = access_log
        self.max_requests = max_requests
        self.metrics = obs.MetricsRegistry()
        self.window = MetricsWindow(self.metrics)
        self.services: List[ModelService] = []
        self.git_sha = obs.git_sha()
        self._request_seq = 0
        self.started = obs.monotonic()

    # -- startup -------------------------------------------------------------

    def load_models(self) -> List[ModelService]:
        """Load the latest registration of each lineage, hash-verified.

        :meth:`ModelRegistry.load` re-verifies every artifact's content
        address, so a tampered or truncated model file fails here, at
        startup, rather than mid-request.  Returns the loaded services
        (most recent registration last = the default model).
        """
        latest: Dict[tuple, RegistryEntry] = {}
        for entry in self.registry.entries(benchmark=self.benchmark,
                                           family=self.family):
            latest[entry.lineage()] = entry
        ordered = sorted(latest.values(), key=lambda e: (e.created or "",
                                                         e.version, e.sha))
        self.services = []
        for entry in ordered:
            model, names, metadata = self.registry.load(entry)
            self.services.append(ModelService(entry, model, names, metadata))
        self.metrics.set_gauge("models_loaded", len(self.services))
        return self.services

    # -- request plumbing ----------------------------------------------------

    @property
    def requests_served(self) -> int:
        """Total requests handled so far (any status)."""
        return int(self.metrics.counters.get("requests_total", 0))

    @property
    def done(self) -> bool:
        """Whether a ``max_requests`` budget has been exhausted."""
        return (self.max_requests is not None
                and self.requests_served >= self.max_requests)

    def handle(self, method: str, path: str,
               body: Optional[bytes] = None) -> Tuple[int, Dict[str, Any]]:
        """Serve one request: ``(method, path, body) -> (status, payload)``.

        The single entry point for every transport: times the request on
        the observability clock, wraps it in a ``serve/request`` span
        carrying the request id, updates counters and the latency
        histogram, and appends the access-log record.  Never raises —
        unexpected handler errors become structured 500s and a
        :func:`repro.obs.record_failure` event.
        """
        self._request_seq += 1
        request_id = f"req-{self._request_seq:06d}"
        start = obs.monotonic()
        with obs.span("serve/request", request=request_id,
                      method=method, path=path):
            try:
                status, payload = self._route(method, path, body)
            except Exception as exc:
                obs.record_failure("serve", exc, request=request_id,
                                   path=path)
                status = 500
                payload = {"error": f"internal error: {exc}"}
        latency = obs.monotonic() - start
        self.metrics.inc("requests_total")
        if status >= 400:
            self.metrics.inc("request_errors")
        self.metrics.observe("serve/latency_s", latency)
        payload.setdefault("request_id", request_id)
        if self.access_log is not None:
            self.access_log.log(
                request=request_id,
                method=method,
                path=path,
                status=status,
                latency_s=round(latency, 9),
                points=payload.get("count", 0),
            )
        return status, payload

    def _route(self, method: str, path: str,
               body: Optional[bytes]) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0]
        routes = {
            "/predict": ("POST", self._predict),
            "/models": ("GET", self._models),
            "/healthz": ("GET", self._healthz),
            "/metrics": ("GET", self._metrics),
            "/version": ("GET", self._version),
        }
        if path not in routes:
            return 404, {"error": f"unknown path {path!r}"}
        expected, endpoint = routes[path]
        if method != expected:
            return 405, {"error": f"{path} requires {expected}"}
        if expected == "POST":
            return endpoint(body)
        return endpoint()

    # -- endpoints -----------------------------------------------------------

    def _resolve(self, selector: Optional[str]) -> Optional[ModelService]:
        """Pick the serving model: explicit selector or the default.

        The default is the most recently registered loaded model; a
        selector matches a SHA prefix first, then a benchmark name —
        the same resolution order as ``repro models show``.
        """
        if selector is None:
            return self.services[-1] if self.services else None
        for service in reversed(self.services):
            if service.entry.sha.startswith(selector):
                return service
        for service in reversed(self.services):
            if service.entry.benchmark == selector:
                return service
        return None

    def _predict(self, body: Optional[bytes]) -> Tuple[int, Dict[str, Any]]:
        if not body:
            return 400, {"error": "empty request body; expected JSON"}
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        service = self._resolve(request.get("model"))
        if service is None:
            return 404, {"error": f"no model matches "
                                  f"{request.get('model')!r}"}
        if "points" not in request:
            return 400, {"error": "missing required field 'points'"}
        try:
            points = np.asarray(request["points"], dtype=float)
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"points are not numeric: {exc}"}
        if points.ndim == 1:  # one point, not a batch
            points = points[np.newaxis, :]
        if points.ndim != 2 or points.size == 0:
            return 400, {"error": "points must be a vector or a matrix "
                                  "of design points"}
        if len(points) > MAX_BATCH_POINTS:
            return 400, {"error": f"batch of {len(points)} exceeds the "
                                  f"{MAX_BATCH_POINTS}-point limit"}
        if service.dimension is not None and points.shape[1] != service.dimension:
            return 400, {"error": f"points have {points.shape[1]} "
                                  f"dimensions; model expects "
                                  f"{service.dimension}"}
        want_provenance = bool(request.get("provenance", True))
        if want_provenance and not service.calibrated:
            return 409, {"error": f"model {service.entry.sha} is not "
                                  "calibrated; request provenance=false "
                                  "for bare predictions"}
        payload: Dict[str, Any] = {
            "model": service.entry.sha,
            "benchmark": service.entry.benchmark,
            "family": model_family(service.model),
            "count": len(points),
        }
        with obs.span("serve/predict", model=service.entry.sha,
                      points=len(points)):
            if want_provenance:
                prov = service.model.predict_with_provenance(points)
                payload["values"] = [float(v) for v in prov.values]
                payload["lower"] = [float(v) for v in prov.lower]
                payload["upper"] = [float(v) for v in prov.upper]
                payload["extrapolated"] = [bool(f) for f in prov.extrapolated]
                payload["kind"] = prov.kind
            else:
                values = service.model.predict_batch(points)
                payload["values"] = [float(v) for v in values]
        self.metrics.inc("points_predicted", len(points))
        self.metrics.observe("serve/batch_points", len(points))
        return 200, payload

    def _models(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"models": [s.describe() for s in self.services]}

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness plus integrity: re-verify every served model's hash.

        Recomputes each in-memory model's content address against its
        index entry, so silent corruption of a loaded model (or a loaded
        artifact diverging from the registry) flips the service to 503
        ``degraded`` instead of quietly serving wrong numbers.
        """
        checks = []
        healthy = True
        for service in self.services:
            verified = content_hash(service.model) == service.entry.sha
            healthy = healthy and verified
            checks.append({
                "sha": service.entry.sha,
                "benchmark": service.entry.benchmark,
                "family": service.entry.family,
                "version": service.entry.version,
                "verified": verified,
            })
        healthy = healthy and bool(self.services)
        payload = {
            "status": "ok" if healthy else "degraded",
            "models": checks,
            "requests_served": self.requests_served,
            "uptime_s": round(obs.monotonic() - self.started, 9),
        }
        return (200 if healthy else 503), payload

    def _metrics(self) -> Tuple[int, Dict[str, Any]]:
        return 200, self.window.snapshot()

    def _version(self) -> Tuple[int, Dict[str, Any]]:
        models = {}
        for service in self.services:
            key = service.entry.benchmark or service.entry.sha
            models[key] = {
                "sha": service.entry.sha,
                "family": service.entry.family,
                "version": service.entry.version,
            }
        return 200, {
            "version": obs.package_version(),
            "git_sha": self.git_sha,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "models": models,
        }

    # -- session accounting --------------------------------------------------

    def session_fields(self) -> Dict[str, Any]:
        """The per-session ledger overrides: volume and latency quantiles.

        Feeds :func:`repro.obs.history.ledger.record_from_manifest` via
        its ``overrides`` so ``repro history trend`` covers serving
        sessions alongside batch runs.
        """
        hist = self.metrics.histograms.get("serve/latency_s")

        def quantile_ms(q: float) -> Optional[float]:
            if hist is None or hist.count == 0:
                return None
            return round(hist.percentile(q) * 1000.0, 6)

        return {
            "requests_served": self.requests_served,
            "request_errors": int(
                self.metrics.counters.get("request_errors", 0)),
            "latency_p50_ms": quantile_ms(50),
            "latency_p90_ms": quantile_ms(90),
            "latency_p99_ms": quantile_ms(99),
        }
