"""The paper's ``BuildRBFmodel`` procedure (Sec. 1, steps 1-6).

Given a design space and a response function (detailed simulation), the
procedure:

1. takes the design space as given (step 1 is the caller's choice of
   parameters);
2. selects a discrepancy-optimised latin hypercube sample (step 2);
3. evaluates the response at the sampled points (step 3 — the expensive
   simulations);
4. builds an RBF network model, grid-searching the method parameters
   ``p_min`` and ``alpha`` for the lowest AICc (step 4);
5. estimates accuracy on an independent random test set (step 5);
6. repeats with increasing sample sizes until a target accuracy is reached
   (step 6, :meth:`BuildRBFModel.build_until`).

The response function receives *physical* design points ``(m, n)`` in the
space's parameter order and returns the simulated responses ``(m,)``; the
procedure handles all unit-cube encoding internally, training models on the
snapped coordinates actually simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.design_space import DesignSpace
from repro.core.validation import ErrorReport, prediction_errors
from repro.models.rbf import (
    DEFAULT_ALPHA_GRID,
    DEFAULT_P_MIN_GRID,
    RBFSearchResult,
    search_rbf_model,
)
from repro.sampling.optimizer import OptimizedSample, best_lhs_sample

ResponseFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class ModelBuildResult:
    """Everything produced by one pass of the procedure at one sample size."""

    sample_size: int
    sample: OptimizedSample
    unit_points: np.ndarray  # snapped unit-cube coordinates actually used
    physical_points: np.ndarray
    responses: np.ndarray
    search: RBFSearchResult
    errors: Optional[ErrorReport] = None

    @property
    def model(self):
        return self.search.network

    @property
    def info(self):
        return self.search.info

    def predict_physical(self, space: DesignSpace, points: np.ndarray) -> np.ndarray:
        """Predict at physical points (encodes with the training space)."""
        return self.model.predict(space.encode(points))


@dataclass
class BuildRBFModel:
    """Configured instance of the paper's model-building procedure.

    Parameters
    ----------
    space:
        The training design space (the paper's Table 1).
    response_fn:
        Maps physical design points to responses (detailed simulation; CPI
        in the paper).
    seed:
        Root seed for sampling.
    lhs_candidates:
        How many LHS candidates to generate per sample (best by
        discrepancy wins).
    p_min_grid, alpha_grid:
        Method-parameter grids searched for the lowest AICc.
    criterion:
        Model selection criterion (``aicc`` per the paper).
    """

    space: DesignSpace
    response_fn: ResponseFn
    seed: int = 0
    lhs_candidates: int = 64
    p_min_grid: Sequence[int] = DEFAULT_P_MIN_GRID
    alpha_grid: Sequence[float] = DEFAULT_ALPHA_GRID
    criterion: str = "aicc"
    max_candidates: int = 255
    history: List[ModelBuildResult] = field(default_factory=list, repr=False)

    def sample_points(self, sample_size: int) -> OptimizedSample:
        """Step 2: the discrepancy-optimised LHS sample for this size."""
        return best_lhs_sample(
            self.space, sample_size, self.seed, candidates=self.lhs_candidates
        )

    def build(
        self,
        sample_size: int,
        test_points: Optional[np.ndarray] = None,
        test_responses: Optional[np.ndarray] = None,
    ) -> ModelBuildResult:
        """Steps 2-5 for one sample size.

        ``test_points`` are *physical* points; when provided together with
        ``test_responses``, the result carries an :class:`ErrorReport`.
        """
        with obs.span("build", sample_size=sample_size, seed=self.seed) as bsp:
            with obs.span("sample", candidates=self.lhs_candidates) as ssp:
                sample = self.sample_points(sample_size)
                ssp.set(discrepancy=sample.discrepancy)
            physical = self.space.decode(sample.points, num_levels=sample_size)
            unit = self.space.encode(physical)
            with obs.span("simulate", points=sample_size):
                responses = np.asarray(
                    self.response_fn(physical), dtype=float
                ).ravel()
            if len(responses) != sample_size:
                raise ValueError(
                    f"response_fn returned {len(responses)} values for "
                    f"{sample_size} points"
                )
            with obs.span("fit", criterion=self.criterion) as fsp:
                search = search_rbf_model(
                    unit,
                    responses,
                    p_min_grid=self.p_min_grid,
                    alpha_grid=self.alpha_grid,
                    criterion=self.criterion,
                    max_candidates=self.max_candidates,
                )
                fsp.set(p_min=search.info.p_min, alpha=search.info.alpha,
                        centers=search.info.num_centers,
                        criterion_value=search.info.criterion_value)
            result = ModelBuildResult(
                sample_size=sample_size,
                sample=sample,
                unit_points=unit,
                physical_points=physical,
                responses=responses,
                search=search,
            )
            if test_points is not None and test_responses is not None:
                with obs.span("validate", points=len(test_points)) as vsp:
                    predicted = result.predict_physical(self.space, test_points)
                    result.errors = prediction_errors(test_responses, predicted)
                    vsp.set(mean_error=result.errors.mean,
                            max_error=result.errors.max)
                bsp.set(mean_error=result.errors.mean)
            self.history.append(result)
        return result

    def build_until(
        self,
        sizes: Sequence[int],
        test_points: np.ndarray,
        test_responses: np.ndarray,
        target_mean_error: Optional[float] = None,
    ) -> List[ModelBuildResult]:
        """Step 6: grow the sample until the desired accuracy is reached.

        Runs :meth:`build` at each size in ``sizes`` (ascending) and stops
        early once the mean test error drops below ``target_mean_error``
        (never stops early when the target is ``None``).
        """
        results: List[ModelBuildResult] = []
        with obs.span("build_until", sizes=list(sizes),
                      target=target_mean_error) as sp:
            for size in sizes:
                with obs.span("step", sample_size=size) as step:
                    result = self.build(size, test_points, test_responses)
                    results.append(result)
                    if result.errors is None:
                        # Not an assert: control flow must survive ``python -O``.
                        raise RuntimeError(
                            f"build({size}) produced no error report; "
                            "build_until requires test_points and "
                            "test_responses"
                        )
                    # The per-step AICc/error trajectory the paper's step 6
                    # decision walks down.
                    step.set(aicc=result.info.criterion_value,
                             centers=result.info.num_centers,
                             mean_error=result.errors.mean)
                    obs.observe("build_until/mean_error", result.errors.mean)
                    obs.observe("build_until/aicc", result.info.criterion_value)
                if (target_mean_error is not None
                        and result.errors.mean <= target_mean_error):
                    break
            sp.set(steps=len(results))
        return results
