"""Model accuracy metrics (paper Sec. 3, last paragraph).

The paper scores models on an independent random test set using the *mean
absolute percentage error* in CPI, its standard deviation, and the maximum
error — the three columns of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ErrorReport:
    """Percentage-error diagnostics of a model on a test set."""

    mean: float  # mean absolute percentage error
    max: float  # maximum absolute percentage error
    std: float  # standard deviation of the absolute percentage error
    count: int
    #: Per-point absolute percentage errors (kept for resampling).
    percentages: Tuple[float, ...] = field(default=(), repr=False)

    def row(self):
        """(mean, max, std) tuple formatted like the paper's Table 3 rows."""
        return (round(self.mean, 1), round(self.max, 1), round(self.std, 1))

    def mean_ci(
        self, confidence: float = 0.95, resamples: int = 2000, seed: int = 0
    ) -> Optional[Tuple[float, float]]:
        """Bootstrap confidence interval for the mean error.

        One of the paper's motivations is the "lack of statistical rigor"
        in ad-hoc exploration; the interval quantifies how much the
        50-point mean error estimate itself can be trusted.  Returns
        ``None`` when per-point errors were not retained.
        """
        if not self.percentages:
            return None
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        rng = make_rng(seed, "error-ci", self.count, resamples)
        errors = np.asarray(self.percentages)
        idx = rng.integers(0, len(errors), size=(resamples, len(errors)))
        means = errors[idx].mean(axis=1)
        alpha = (1.0 - confidence) / 2.0
        lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
        return float(lo), float(hi)

    def __str__(self) -> str:
        return f"mean={self.mean:.2f}% max={self.max:.2f}% std={self.std:.2f}% (n={self.count})"


def prediction_errors(true_values: np.ndarray, predicted: np.ndarray) -> ErrorReport:
    """Percentage-error report of ``predicted`` against ``true_values``."""
    true_values = np.asarray(true_values, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if true_values.shape != predicted.shape:
        raise ValueError("true and predicted arrays must have equal length")
    if len(true_values) == 0:
        raise ValueError("cannot score an empty test set")
    if np.any(true_values == 0):
        raise ValueError("true responses contain zeros; percentage error undefined")
    pct = np.abs(predicted - true_values) / np.abs(true_values) * 100.0
    obs.inc("validation/points", len(pct))
    obs.observe("validation/mean_error", float(pct.mean()))
    return ErrorReport(
        mean=float(pct.mean()),
        max=float(pct.max()),
        std=float(pct.std(ddof=1)) if len(pct) > 1 else 0.0,
        count=len(pct),
        percentages=tuple(float(v) for v in pct),
    )
