"""Microarchitectural design-space specification.

This module encodes step 1 of the paper's ``BuildRBFmodel`` procedure: the
selection of parameters, their ranges, the number of levels each parameter is
sampled at, and the input transformation (linear or log) applied before
modeling (the paper's Table 1).

A :class:`DesignSpace` maps *design points* (physical parameter values such
as an 8 MB L2 or a 14-cycle L2 latency) to and from the unit hypercube
``[0, 1]^n`` in which sampling and model fitting operate.  Cache sizes use a
log transform, matching the paper; everything else is linear.

Two parameters (issue-queue and load/store-queue size) are *derived*: the
design-space coordinate is a fraction of the reorder-buffer size, and the
physical queue size is resolved only when a processor configuration is built
(see :func:`DesignSpace.resolve`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

LINEAR = "linear"
LOG = "log"

#: Sentinel used in the paper's Table 1 for "sample-size dependent" levels.
SAMPLE_DEPENDENT = None


@dataclass(frozen=True)
class Parameter:
    """One microarchitectural design parameter.

    Parameters
    ----------
    name:
        Identifier used in design-point dictionaries and reports.
    low, high:
        Numeric range bounds (``low < high``).  Note the paper's Table 1
        lists bounds in performance order (e.g. pipeline depth "low 24,
        high 7"); here bounds are always numeric order.
    levels:
        Number of discrete settings within the range, or ``None`` for the
        paper's *S* (sample-size dependent) entries.
    transform:
        ``"linear"`` or ``"log"`` — the input transformation applied before
        sampling and modeling (paper Table 1, last column).
    integer:
        Whether physical values are integral (rounded on decode).
    fraction_of:
        If set, this parameter is a fraction of another parameter (e.g.
        ``IQ_size = frac * ROB_size``); :func:`DesignSpace.resolve` turns the
        fraction into an absolute value.
    units:
        Display units (documentation only).
    """

    name: str
    low: float
    high: float
    levels: Optional[int]
    transform: str = LINEAR
    integer: bool = False
    fraction_of: Optional[str] = None
    units: str = ""

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"{self.name}: low ({self.low}) must be < high ({self.high})")
        if self.transform not in (LINEAR, LOG):
            raise ValueError(f"{self.name}: unknown transform {self.transform!r}")
        if self.transform == LOG and self.low <= 0:
            raise ValueError(f"{self.name}: log transform requires positive bounds")

    # -- unit-cube mapping ------------------------------------------------

    def _t(self, value: np.ndarray) -> np.ndarray:
        return np.log(value) if self.transform == LOG else np.asarray(value, dtype=float)

    def _t_inv(self, t: np.ndarray) -> np.ndarray:
        return np.exp(t) if self.transform == LOG else t

    def to_unit(self, value) -> np.ndarray:
        """Map physical values to ``[0, 1]`` through the transform."""
        t = self._t(np.asarray(value, dtype=float))
        lo, hi = self._t(np.array(self.low)), self._t(np.array(self.high))
        return (t - lo) / (hi - lo)

    def from_unit(self, u, num_levels: Optional[int] = None):
        """Map unit-cube coordinates back to physical values.

        If the parameter has a finite number of ``levels`` (or an explicit
        ``num_levels`` is given for *S* parameters), the value is snapped to
        the nearest level of an even grid in transform space.
        """
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        levels = self.levels if self.levels is not None else num_levels
        if levels is not None and levels >= 2:
            u = np.round(u * (levels - 1)) / (levels - 1)
        lo, hi = self._t(np.array(self.low)), self._t(np.array(self.high))
        value = self._t_inv(lo + u * (hi - lo))
        if self.integer:
            value = np.round(value)
        return value

    def grid(self, num_levels: Optional[int] = None) -> np.ndarray:
        """All level values of this parameter (physical units)."""
        levels = self.levels if self.levels is not None else num_levels
        if levels is None:
            raise ValueError(f"{self.name}: sample-size dependent levels; pass num_levels")
        u = np.linspace(0.0, 1.0, levels)
        return np.unique(self.from_unit(u, num_levels=levels))


class DesignSpace:
    """An ordered collection of :class:`Parameter` objects.

    Design points are represented either as dictionaries keyed by parameter
    name or as numpy arrays ordered like :attr:`names`.  All sampling and
    modeling happens in the unit cube; :meth:`decode` snaps points onto the
    parameter level grids, matching the paper's discrete design space.
    """

    def __init__(self, parameters: Sequence[Parameter], name: str = "design-space"):
        if not parameters:
            raise ValueError("a design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        for p in parameters:
            if p.fraction_of is not None and p.fraction_of not in names:
                raise ValueError(f"{p.name}: unknown base parameter {p.fraction_of!r}")
        self.parameters: List[Parameter] = list(parameters)
        self.name = name

    # -- basic introspection ----------------------------------------------

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.parameters]

    @property
    def dimension(self) -> int:
        return len(self.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(name)

    def index(self, name: str) -> int:
        return self.names.index(name)

    def __repr__(self) -> str:
        return f"DesignSpace({self.name!r}, {self.dimension} parameters)"

    # -- point conversion ---------------------------------------------------

    def as_array(self, point: Dict[str, float]) -> np.ndarray:
        """Convert a point dictionary to an ordered value array."""
        missing = [n for n in self.names if n not in point]
        if missing:
            raise KeyError(f"point missing parameters: {missing}")
        return np.array([float(point[n]) for n in self.names])

    def as_dict(self, values: Sequence[float]) -> Dict[str, float]:
        """Convert an ordered value array to a point dictionary."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.dimension,):
            raise ValueError(f"expected {self.dimension} values, got {values.shape}")
        return {n: float(v) for n, v in zip(self.names, values)}

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Map an ``(m, n)`` array of physical points to the unit cube."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        cols = [p.to_unit(points[:, i]) for i, p in enumerate(self.parameters)]
        return np.column_stack(cols)

    def decode(self, unit_points: np.ndarray, num_levels: Optional[int] = None) -> np.ndarray:
        """Map unit-cube points to physical values, snapping to level grids.

        ``num_levels`` supplies the level count for the paper's *S*
        (sample-size dependent) parameters; when omitted those parameters
        stay continuous apart from integer rounding.
        """
        unit_points = np.atleast_2d(np.asarray(unit_points, dtype=float))
        cols = [
            p.from_unit(unit_points[:, i], num_levels=num_levels)
            for i, p in enumerate(self.parameters)
        ]
        return np.column_stack(cols)

    def contains(self, point: Dict[str, float], tol: float = 1e-9) -> bool:
        """Whether a physical point lies within all parameter ranges."""
        for p in self.parameters:
            v = point[p.name]
            if v < p.low - tol or v > p.high + tol:
                return False
        return True

    # -- derived parameters --------------------------------------------------

    def resolve(self, point: Dict[str, float]) -> Dict[str, float]:
        """Resolve fraction-of parameters into absolute values.

        Returns a new dictionary in which e.g. ``iq_size`` is an absolute
        queue size computed from the fraction and the (already resolved)
        base parameter.
        """
        resolved = dict(point)
        for p in self.parameters:
            if p.fraction_of is not None:
                base = resolved[p.fraction_of]
                resolved[p.name] = max(1.0, round(point[p.name] * base))
        return resolved

    def resolve_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`resolve` over an ``(m, n)`` array of points.

        Row ``i`` of the result equals
        ``as_array(resolve(as_dict(points[i])))``: fraction-of columns are
        replaced by absolute values (``np.rint`` rounds half to even,
        matching Python's ``round``), every other column is passed
        through unchanged.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self.dimension:
            raise ValueError(
                f"expected {self.dimension} columns, got {points.shape[1]}"
            )
        resolved = points.copy()
        for i, p in enumerate(self.parameters):
            if p.fraction_of is not None:
                base = resolved[:, self.index(p.fraction_of)]
                resolved[:, i] = np.maximum(1.0, np.rint(points[:, i] * base))
        return resolved

    # -- random designs -----------------------------------------------------

    def random_unit_points(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random points in the unit cube (used for test designs)."""
        if count <= 0:
            raise ValueError("count must be positive")
        return rng.random((count, self.dimension))

    def describe(self) -> str:
        """Human-readable table of the space (mirrors the paper's Table 1)."""
        from repro.util.tables import format_table

        rows = []
        for p in self.parameters:
            levels = "S" if p.levels is None else str(p.levels)
            base = f" x {p.fraction_of}" if p.fraction_of else ""
            rows.append(
                (p.name, f"{p.low:g}{base}", f"{p.high:g}{base}", levels, p.transform, p.units)
            )
        return format_table(
            ["parameter", "low", "high", "levels", "transform", "units"],
            rows,
            title=f"Design space: {self.name}",
        )


def paper_design_space() -> DesignSpace:
    """The paper's Table 1 training design space (9 parameters)."""
    return DesignSpace(
        [
            Parameter("pipe_depth", 7, 24, 18, LINEAR, integer=True, units="stages"),
            Parameter("rob_size", 24, 128, SAMPLE_DEPENDENT, LINEAR, integer=True, units="entries"),
            Parameter("iq_frac", 0.25, 0.75, SAMPLE_DEPENDENT, LINEAR, fraction_of="rob_size"),
            Parameter("lsq_frac", 0.25, 0.75, SAMPLE_DEPENDENT, LINEAR, fraction_of="rob_size"),
            Parameter("l2_size_kb", 256, 8192, 6, LOG, integer=True, units="KB"),
            Parameter("l2_lat", 5, 20, 16, LINEAR, integer=True, units="cycles"),
            Parameter("il1_size_kb", 8, 64, 4, LOG, integer=True, units="KB"),
            Parameter("dl1_size_kb", 8, 64, 4, LOG, integer=True, units="KB"),
            Parameter("dl1_lat", 1, 4, 4, LINEAR, integer=True, units="cycles"),
        ],
        name="paper-table-1",
    )


def paper_test_space() -> DesignSpace:
    """The paper's Table 2 restricted space used to draw random test points.

    Pipeline, window and latency parameters are drawn continuously (with
    integer rounding); cache sizes snap to the hardware-realizable
    power-of-two level grids of Table 1, since a cache's set count is a
    power of two in the simulated machine (a "505 KB" L2 is not a buildable
    configuration).
    """
    return DesignSpace(
        [
            Parameter("pipe_depth", 9, 22, SAMPLE_DEPENDENT, LINEAR, integer=True, units="stages"),
            Parameter("rob_size", 37, 115, SAMPLE_DEPENDENT, LINEAR, integer=True, units="entries"),
            Parameter("iq_frac", 0.31, 0.69, SAMPLE_DEPENDENT, LINEAR, fraction_of="rob_size"),
            Parameter("lsq_frac", 0.31, 0.69, SAMPLE_DEPENDENT, LINEAR, fraction_of="rob_size"),
            Parameter("l2_size_kb", 256, 8192, 6, LOG, integer=True, units="KB"),
            Parameter("l2_lat", 7, 18, SAMPLE_DEPENDENT, LINEAR, integer=True, units="cycles"),
            Parameter("il1_size_kb", 8, 64, 4, LOG, integer=True, units="KB"),
            Parameter("dl1_size_kb", 8, 64, 4, LOG, integer=True, units="KB"),
            Parameter("dl1_lat", 1, 4, 4, LINEAR, integer=True, units="cycles"),
        ],
        name="paper-table-2",
    )
