"""Cross-validation error estimation for design-space models.

The paper estimates model accuracy with 50 extra simulations at random test
points — simulation the designer must pay for.  Cross-validation estimates
accuracy from the *training* sample alone, which matters in exactly the
regime the paper targets (every simulation is expensive).  The experiment
in ``benchmarks/ablations/test_ablation_crossval.py`` checks how well the
free estimate tracks the paid-for one.

Two estimators are provided:

* :func:`kfold_error` — generic k-fold cross-validation for any model
  fitting function;
* :func:`loo_rbf_error` — exact leave-one-out for a *fixed* RBF structure
  (centers/radii held, weights refit), using the hat-matrix identity
  ``e_i / (1 - H_ii)`` so no refitting loop is needed.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro import obs
from repro.core.validation import ErrorReport, prediction_errors
from repro.models.rbf import RBFNetwork, gaussian_design_matrix
from repro.util.rng import make_rng

#: Fits a model on (points, responses) and returns a predictor.
FitFn = Callable[[np.ndarray, np.ndarray], Callable[[np.ndarray], np.ndarray]]


def kfold_error(
    points: np.ndarray,
    responses: np.ndarray,
    fit_fn: FitFn,
    folds: int = 5,
    seed: int = 0,
) -> ErrorReport:
    """K-fold cross-validated percentage-error report.

    Folds are a seeded random partition; each fold's points are predicted
    by a model trained on the remaining folds.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    responses = np.asarray(responses, dtype=float).ravel()
    p = len(points)
    if not 2 <= folds <= p:
        raise ValueError("folds must be between 2 and the sample size")
    order = make_rng(seed, "kfold", p, folds).permutation(p)
    predictions = np.empty(p)
    with obs.span("crossval/kfold", folds=folds, points=p):
        for f in range(folds):
            held = order[f::folds]
            train = np.setdiff1d(order, held)
            predictor = fit_fn(points[train], responses[train])
            predictions[held] = predictor(points[held])
        obs.inc("crossval/kfold_runs")
    return prediction_errors(responses, predictions)


def loo_rbf_error(
    points: np.ndarray,
    responses: np.ndarray,
    network: RBFNetwork,
    ridge: float = 1e-9,
) -> Tuple[ErrorReport, np.ndarray]:
    """Exact leave-one-out error for a fixed RBF basis.

    Holds the network's centers and radii fixed and treats the weight fit
    as linear regression; the leave-one-out residual is then
    ``e_i / (1 - H_ii)`` with the hat matrix
    ``H = A (A^T A + ridge I)^{-1} A^T`` — no refit loop.

    Returns the error report and the per-point LOO predictions.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    responses = np.asarray(responses, dtype=float).ravel()
    with obs.span("crossval/loo", points=len(points),
                  centers=network.num_centers):
        a = gaussian_design_matrix(points, network.centers, network.radii)
        gram = a.T @ a
        gram[np.diag_indices_from(gram)] += ridge
        inner = np.linalg.solve(gram, a.T)
        hat_diag = np.einsum("ij,ji->i", a, inner)
        weights = inner @ responses
        resid = responses - a @ weights
        denom = np.clip(1.0 - hat_diag, 1e-6, None)
        loo_resid = resid / denom
        loo_pred = responses - loo_resid
        obs.inc("crossval/loo_runs")
    return prediction_errors(responses, loo_pred), loo_pred
