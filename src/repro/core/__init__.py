"""Core model-building procedure: design spaces, BuildRBFModel, validation."""

from repro.core.crossval import kfold_error, loo_rbf_error
from repro.core.design_space import (
    DesignSpace,
    Parameter,
    paper_design_space,
    paper_test_space,
)
from repro.core.procedure import BuildRBFModel, ModelBuildResult
from repro.core.validation import ErrorReport, prediction_errors

__all__ = [
    "kfold_error",
    "loo_rbf_error",
    "DesignSpace",
    "Parameter",
    "paper_design_space",
    "paper_test_space",
    "BuildRBFModel",
    "ModelBuildResult",
    "ErrorReport",
    "prediction_errors",
]
