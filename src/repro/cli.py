"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run the detailed simulator for one benchmark at a configuration given
    as ``name=value`` overrides and print the result summary.  A
    comma-separated override value (``l2_lat=12,18``) sweeps a grid of
    configurations — the cross product over all list-valued overrides —
    optionally in parallel (``--jobs``).
``build``
    Run the BuildRBFmodel procedure for a benchmark at one sample size,
    validate on random test points, and print the error report plus the
    simulation-runner statistics.  ``--jobs`` (or ``$REPRO_JOBS``) fans
    the uncached simulations out over worker processes.
``experiments``
    List every reproduced table/figure and the benchmark file that
    regenerates it.
``benchmarks``
    List the available synthetic workloads and their key characteristics.
``lint``
    Run the repo's static-analysis pass (see :mod:`repro.lint`); extra
    arguments are forwarded to ``repro-lint`` unchanged.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.design_space import paper_design_space, paper_test_space
from repro.core.procedure import BuildRBFModel
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import SimulationRunner, simulate_configs
from repro.sampling.random_design import random_design
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import simulate
from repro.util.tables import format_table
from repro.workloads.spec2000 import benchmark_names, get_profile, get_trace, spec_label


def _parse_numeric(pair: str, value: str):
    try:
        return int(value)
    except ValueError:
        try:
            return float(value)
        except ValueError:
            raise SystemExit(f"override {pair!r}: value must be numeric")


def _parse_overrides(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not name=value")
        name, value = pair.split("=", 1)
        if "," in value:
            out[name] = tuple(_parse_numeric(pair, v) for v in value.split(","))
        else:
            out[name] = _parse_numeric(pair, value)
    return out


def _override_grid(overrides: dict) -> List[dict]:
    """Cross product of list-valued overrides (scalars stay fixed)."""
    import itertools

    sweep = {k: v for k, v in overrides.items() if isinstance(v, tuple)}
    fixed = {k: v for k, v in overrides.items() if not isinstance(v, tuple)}
    combos = []
    for values in itertools.product(*sweep.values()):
        combo = dict(fixed)
        combo.update(zip(sweep.keys(), values))
        combos.append(combo)
    return combos


def cmd_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: detailed simulation at one or a grid of configs."""
    overrides = _parse_overrides(args.overrides)
    grid = _override_grid(overrides)
    if len(grid) == 1:
        try:
            config = ProcessorConfig(**grid[0])
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"bad configuration: {exc}")
        trace = get_trace(args.benchmark, args.trace_length)
        result = simulate(config, trace)
        rows = [(k, f"{v:.4g}") for k, v in result.as_dict().items()]
        print(format_table(["metric", "value"], rows,
                           title=f"{spec_label(args.benchmark)} on {args.trace_length} instructions"))
        return 0
    try:
        configs = [ProcessorConfig(**combo) for combo in grid]
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad configuration: {exc}")
    try:
        summaries = simulate_configs(
            args.benchmark, configs, trace_length=args.trace_length,
            jobs=args.jobs,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    swept = sorted(k for k, v in overrides.items() if isinstance(v, tuple))
    rows = [
        tuple(str(combo[k]) for k in swept)
        + (f"{s['cpi']:.4g}", f"{s['power']:.4g}", f"{s['energy']:.4g}")
        for combo, s in zip(grid, summaries)
    ]
    print(format_table(
        swept + ["cpi", "power", "energy"], rows,
        title=(f"{spec_label(args.benchmark)} on {args.trace_length} "
               f"instructions, {len(grid)} configurations"),
    ))
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """``repro build``: run BuildRBFmodel and print the validation report."""
    space = paper_design_space()
    try:
        runner = SimulationRunner(
            args.benchmark, trace_length=args.trace_length, jobs=args.jobs
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    builder = BuildRBFModel(space, runner.cpi, seed=args.seed)
    tspace = paper_test_space()
    test_phys = tspace.decode(random_design(tspace, args.test_points, seed=args.seed + 1))
    test_cpi = runner.cpi(test_phys)
    result = builder.build(args.sample_size, test_phys, test_cpi)
    stats = runner.stats()
    print(f"benchmark      : {spec_label(args.benchmark)}")
    print(f"sample size    : {args.sample_size}")
    print(f"p_min / alpha  : {result.info.p_min} / {result.info.alpha}")
    print(f"RBF centers    : {result.info.num_centers}")
    print(f"test accuracy  : {result.errors}")
    print(f"simulations run: {stats['simulations_run']} (+{stats['cache_hits']} cached)")
    print(f"workers        : {stats['jobs']}")
    print(f"sim wall time  : {stats['wall_time_s']:.2f}s")
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    """``repro experiments``: list every reproduced table and figure."""
    rows = [
        (exp.exhibit, exp.title[:58], exp.bench)
        for exp in EXPERIMENTS.values()
    ]
    print(format_table(["exhibit", "what it shows", "regenerated by"], rows,
                       title="Reproduced tables and figures"))
    return 0


def cmd_report(_args: argparse.Namespace) -> int:
    """``repro report``: aggregate rendered exhibits into one summary."""
    from repro.experiments.summary import collect, write_summary

    sections, missing = collect()
    if not sections:
        print("no results found; run `pytest benchmarks/ --benchmark-only` first")
        return 1
    path = write_summary()
    print("\n\n".join(sections))
    print(f"\n[summary written to {path}]")
    if missing:
        print(f"[missing exhibits: {', '.join(missing)}]")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: forward to the :mod:`repro.lint` CLI."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def cmd_benchmarks(_args: argparse.Namespace) -> int:
    """``repro benchmarks``: list the synthetic workloads."""
    rows = []
    for name in benchmark_names():
        p = get_profile(name)
        rows.append((
            spec_label(name),
            f"{p.load_frac + p.store_frac:.2f}",
            f"{p.code_footprint_kb:.0f}KB",
            f"{p.footprint_kb}KB",
            f"{p.branch_bias:.2f}",
            "FP" if p.fpalu_frac > 0 else "INT",
        ))
    print(format_table(
        ["benchmark", "mem frac", "code", "data footprint", "branch bias", "type"],
        rows,
        title="Synthetic SPEC CPU2000 workloads",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Predictive Performance Model for "
                    "Superscalar Processors' (MICRO 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one detailed simulation")
    p_sim.add_argument("benchmark", choices=benchmark_names())
    p_sim.add_argument("overrides", nargs="*",
                       help="ProcessorConfig overrides, e.g. l2_lat=18 rob_size=96")
    p_sim.add_argument("--trace-length", type=int, default=32768)
    p_sim.add_argument("--jobs", type=int, default=None,
                       help="worker processes for grid sweeps "
                            "(default: $REPRO_JOBS, else serial)")
    p_sim.set_defaults(func=cmd_simulate)

    p_build = sub.add_parser("build", help="build and validate a CPI model")
    p_build.add_argument("benchmark", choices=benchmark_names())
    p_build.add_argument("--sample-size", type=int, default=90)
    p_build.add_argument("--test-points", type=int, default=50)
    p_build.add_argument("--trace-length", type=int, default=32768)
    p_build.add_argument("--seed", type=int, default=42)
    p_build.add_argument("--jobs", type=int, default=None,
                         help="worker processes for uncached simulations "
                              "(default: $REPRO_JOBS, else serial)")
    p_build.set_defaults(func=cmd_build)

    p_exp = sub.add_parser("experiments", help="list reproduced exhibits")
    p_exp.set_defaults(func=cmd_experiments)

    p_bench = sub.add_parser("benchmarks", help="list synthetic workloads")
    p_bench.set_defaults(func=cmd_benchmarks)

    p_report = sub.add_parser(
        "report", help="aggregate regenerated exhibits into one summary"
    )
    p_report.set_defaults(func=cmd_report)

    p_lint = sub.add_parser(
        "lint", help="run the static-analysis pass (repro-lint)"
    )
    p_lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to repro-lint")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Forward verbatim: argparse's REMAINDER mis-parses a leading
        # option (e.g. ``repro lint --list-rules``) at the parent level.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
