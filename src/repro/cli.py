"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run the detailed simulator for one benchmark at a configuration given
    as ``name=value`` overrides and print the result summary.  A
    comma-separated override value (``l2_lat=12,18``) sweeps a grid of
    configurations — the cross product over all list-valued overrides —
    optionally in parallel (``--jobs``).
``stacks``
    Run attributed simulations (cycle accounting on) for one benchmark
    and print the CPI stack — cycles per binding constraint, summing
    bitwise-exactly to measured cycles — one column per swept
    configuration, with normalized bars (``--normalize``), machine form
    (``--json``) and a windowed per-K-instruction interval stream
    (``--intervals``; see :mod:`repro.simulator.attribution`).
``build``
    Run the BuildRBFmodel procedure for a benchmark at one sample size,
    validate on random test points, and print the error report plus the
    simulation-runner statistics.  ``--jobs`` (or ``$REPRO_JOBS``) fans
    the uncached simulations out over worker processes.
``experiments``
    List every reproduced table/figure and the benchmark file that
    regenerates it.
``benchmarks``
    List the available synthetic workloads and their key characteristics.
``lint``
    Run the repo's static-analysis pass (see :mod:`repro.lint`); extra
    arguments are forwarded to ``repro-lint`` unchanged.
``trace summary``
    Render the span tree of a JSONL trace file with per-span call counts
    and cumulative/self times (``--json`` emits the machine-readable
    aggregate instead).
``trace profile``
    Rank a trace's call stacks by *self time* — the profiling view — or
    export flamegraph-compatible folded stacks (``--folded``).
``trace diff``
    Align two recorded traces by call-stack path and attribute the
    wall-clock delta to per-span self-time and call-count changes —
    the ranked "what got slower" table (``--json`` for the machine
    form; see :mod:`repro.obs.history.diff`).
``history``
    Query the run-history ledger (``results/history/runs.jsonl``; see
    :mod:`repro.obs.history`): ``list`` the recorded runs with optional
    command/benchmark/git-SHA/since filters, ``show`` one record as
    JSON, ``trend`` a numeric field as a sparkline + table, and
    ``check`` the latest run against comparable history with a robust
    MAD-based outlier test (non-zero exit on anomaly — the cross-run
    drift gate).  ``trend --json`` emits the schema-versioned
    machine-readable document instead of the table.
``models``
    Query the model registry (``results/models``; see
    :mod:`repro.models.registry`): ``list`` registered fits, ``show``
    one index entry as JSON, ``card`` a fit's model card, ``diff`` two
    fits on the fixed probe grid, and ``check`` the latest fit against
    its registry predecessor — or a committed probe baseline
    (``--baseline``) — exiting non-zero on MAD-style prediction drift
    (the model-quality gate next to ``history check``).
``serve``
    Serve registered models over HTTP (stdlib asyncio, no dependencies):
    ``POST /predict`` for single or batched CPI predictions with
    uncertainty bands and extrapolation flags — batches go through the
    vectorised ``predict_batch`` path, bitwise-identical to sequential
    single-point calls — plus ``/models``, ``/healthz`` (content-hash
    re-verification), ``/metrics`` (windowed rates and latency
    quantiles) and ``/version``.  ``--trace`` streams a span per request
    to a rotating JSONL trace readable mid-flight; every session appends
    a ledger record with request volume and latency quantiles (see
    :mod:`repro.serve` and :mod:`repro.obs.live`).
``bench``
    Run the registered hot-path benchmarks (see
    :mod:`repro.obs.prof.targets`), print the results table, and write a
    schema-versioned ``results/BENCH_<run>.json``.  ``--check`` gates the
    run against the committed ``benchmarks/perf/baseline.json`` and exits
    non-zero on regression; ``--update-baseline`` refreshes the baseline.

Observability
-------------
``simulate``, ``build``, ``experiments``, ``benchmarks`` and ``report``
accept a global ``--trace[=PATH]`` flag (or ``REPRO_TRACE=1`` /
``REPRO_TRACE=path`` in the environment) that records the run's span tree
and metrics to a JSONL file — by default
``results/trace-<command>.jsonl``.  ``build`` and ``simulate`` always
write a ``manifest.json`` next to their results recording seed,
design-space hash, git SHA, package version and metric totals.

Every ``simulate``/``build``/``bench``/``report`` run (and every exhibit
rendered by the benchmark suite) also appends one record to the
run-history ledger; ``repro report --html`` renders the ledger as a
single self-contained HTML file with charts, the latest span tree and
the gate/drift status.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core.design_space import paper_design_space, paper_test_space
from repro.core.procedure import BuildRBFModel
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import SimulationRunner, simulate_configs
from repro.sampling.random_design import random_design
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import simulate
from repro.util.tables import format_table
from repro.workloads.spec2000 import benchmark_names, get_profile, get_trace, spec_label


def _parse_numeric(pair: str, value: str):
    try:
        return int(value)
    except ValueError:
        try:
            return float(value)
        except ValueError:
            raise SystemExit(f"override {pair!r}: value must be numeric")


def _parse_overrides(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not name=value")
        name, value = pair.split("=", 1)
        if "," in value:
            out[name] = tuple(_parse_numeric(pair, v) for v in value.split(","))
        else:
            out[name] = _parse_numeric(pair, value)
    return out


def _override_grid(overrides: dict) -> List[dict]:
    """Cross product of list-valued overrides (scalars stay fixed)."""
    import itertools

    sweep = {k: v for k, v in overrides.items() if isinstance(v, tuple)}
    fixed = {k: v for k, v in overrides.items() if not isinstance(v, tuple)}
    combos = []
    for values in itertools.product(*sweep.values()):
        combo = dict(fixed)
        combo.update(zip(sweep.keys(), values))
        combos.append(combo)
    return combos


def _record_run(manifest, args: Optional[argparse.Namespace] = None,
                gate=None, extra=None, note_file=None) -> None:
    """Append one run to the run-history ledger and say where."""
    from repro.obs import history

    record = history.record_from_manifest(
        manifest,
        trace_path=getattr(args, "trace_dest", None) if args else None,
        gate=gate,
        extra=extra,
    )
    path = history.append_run(record)
    print(f"[run recorded in {path}]", file=note_file or sys.stdout)


def _write_run_manifest(command: str,
                        args: Optional[argparse.Namespace] = None,
                        note_file=None, **kwargs) -> None:
    """Write ``results/manifest.json`` for one CLI run and say where.

    Also appends the run to the history ledger — the manifest is the
    per-run snapshot, the ledger the longitudinal record.  ``note_file``
    redirects the "[written to ...]" notes (stderr for ``--json`` modes
    whose stdout must stay machine-readable).
    """
    from repro.experiments.report import results_dir

    manifest = obs.build_manifest(command, **kwargs)
    path = obs.write_manifest(results_dir() / "manifest.json", manifest)
    print(f"[manifest written to {path}]", file=note_file or sys.stdout)
    _record_run(manifest, args, note_file=note_file)


def cmd_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: detailed simulation at one or a grid of configs."""
    overrides = _parse_overrides(args.overrides)
    grid = _override_grid(overrides)
    start = obs.monotonic()
    if len(grid) == 1:
        try:
            config = ProcessorConfig(**grid[0])
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"bad configuration: {exc}")
        trace = get_trace(args.benchmark, args.trace_length)
        result = simulate(config, trace)
        rows = [(k, f"{v:.4g}") for k, v in result.as_dict().items()]
        print(format_table(["metric", "value"], rows,
                           title=f"{spec_label(args.benchmark)} on {args.trace_length} instructions"))
        _write_run_manifest(
            "simulate", args,
            overrides=grid[0],
            wall_time_s=obs.monotonic() - start,
            extra={"benchmark": args.benchmark,
                   "trace_length": args.trace_length,
                   "configurations": 1,
                   "cpi": result.cpi},
        )
        return 0
    try:
        configs = [ProcessorConfig(**combo) for combo in grid]
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad configuration: {exc}")
    try:
        summaries = simulate_configs(
            args.benchmark, configs, trace_length=args.trace_length,
            jobs=args.jobs,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    swept = sorted(k for k, v in overrides.items() if isinstance(v, tuple))
    rows = [
        tuple(str(combo[k]) for k in swept)
        + (f"{s['cpi']:.4g}", f"{s['power']:.4g}", f"{s['energy']:.4g}")
        for combo, s in zip(grid, summaries)
    ]
    print(format_table(
        swept + ["cpi", "power", "energy"], rows,
        title=(f"{spec_label(args.benchmark)} on {args.trace_length} "
               f"instructions, {len(grid)} configurations"),
    ))
    _write_run_manifest(
        "simulate", args,
        overrides={k: list(v) if isinstance(v, tuple) else v
                   for k, v in overrides.items()},
        wall_time_s=obs.monotonic() - start,
        jobs=args.jobs,
        extra={"benchmark": args.benchmark,
               "trace_length": args.trace_length,
               "configurations": len(grid)},
    )
    return 0


def cmd_stacks(args: argparse.Namespace) -> int:
    """``repro stacks``: CPI stacks from attributed simulations."""
    import json as _json

    from repro.experiments.report import results_dir
    from repro.simulator import attribution
    from repro.simulator.simulator import Simulator

    overrides = _parse_overrides(args.overrides)
    grid = _override_grid(overrides)
    swept = sorted(k for k, v in overrides.items() if isinstance(v, tuple))
    start = obs.monotonic()
    trace = get_trace(args.benchmark, args.trace_length)
    stacks = {}
    attributions = {}
    for combo in grid:
        try:
            config = ProcessorConfig(**combo)
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"bad configuration: {exc}")
        label = (",".join(f"{k}={combo[k]}" for k in swept)
                 if swept else (",".join(f"{k}={v}" for k, v in combo.items())
                                or "default"))
        sim = Simulator(config)
        result = sim.run(trace, collect_attribution=True)
        stacks[label] = sim.last_core.attribution.stack()
        attributions[label] = sim.last_core.attribution
    title = (f"CPI stacks: {spec_label(args.benchmark)} on "
             f"{args.trace_length} instructions")
    if args.json:
        doc = {
            "benchmark": args.benchmark,
            "trace_length": args.trace_length,
            "components": list(attribution.COMPONENTS),
            "stacks": {
                label: {
                    "cpi": stack.cpi,
                    "cycles": stack.cycles,
                    "instructions": stack.instructions,
                    "components": stack.as_dict(),
                }
                for label, stack in stacks.items()
            },
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(title)
        print(attribution.render_stack_table(stacks, normalize=args.normalize))
    interval_lines = 0
    if args.intervals is not None:
        base = (Path(args.intervals) if args.intervals
                else results_dir() / f"stacks-{args.benchmark}.jsonl")
        for index, (label, att) in enumerate(attributions.items()):
            dest = (base if len(attributions) == 1
                    else base.with_name(f"{base.stem}-{index}{base.suffix}"))
            records = att.intervals(args.interval)
            interval_lines += attribution.write_intervals_jsonl(
                dest, records,
                benchmark=args.benchmark, config=label, window=args.interval,
            )
            attribution.emit_interval_events(
                records, benchmark=args.benchmark, config=label)
            # Keep --json stdout machine-readable: notes go to stderr.
            print(f"[{len(records)} interval(s) written to {dest}]",
                  file=sys.stderr if args.json else sys.stdout)
    first = next(iter(stacks.values()))
    _write_run_manifest(
        "stacks", args,
        note_file=sys.stderr if args.json else None,
        overrides={k: list(v) if isinstance(v, tuple) else v
                   for k, v in overrides.items()},
        wall_time_s=obs.monotonic() - start,
        extra={
            "benchmark": args.benchmark,
            "trace_length": args.trace_length,
            "configurations": len(grid),
            "cpi": first.cpi,
            "stack_mem_frac": first.memory_fraction(),
            "stack_frontend_frac": first.frontend_fraction(),
            "stack": first.as_dict(),
        },
    )
    return 0


def _resolve_benchmark(args: argparse.Namespace) -> str:
    """Benchmark from the optional positional or the ``--benchmark`` flag."""
    pos = getattr(args, "benchmark", None)
    flag = getattr(args, "benchmark_flag", None)
    if pos and flag and pos != flag:
        raise SystemExit(
            f"benchmark given twice with different values ({pos!r} vs {flag!r})"
        )
    name = flag or pos
    if not name:
        raise SystemExit("a benchmark is required (positional or --benchmark)")
    return name


def _register_build(result, *, benchmark: str, space, stats: dict,
                    seed: int) -> Optional[dict]:
    """Calibrate, card, and register a fresh ``repro build`` fit.

    Pure observation: calibration attaches residual quantiles and the
    training hull to the already-fitted network (its weights and
    predictions are untouched), the cross-validation error reuses the
    existing sample (no new simulations), and registration only writes
    files.  Returns the ledger extras (``model_sha`` etc.), or ``None``
    with a stderr warning when the registry is unwritable — a build must
    never fail because bookkeeping did.
    """
    from repro.core.crossval import loo_rbf_error
    from repro.models.registry import ModelRegistry
    from repro.obs.modelcard import (build_card, created_timestamp,
                                     selection_summary)

    model = result.model
    model.calibrate(result.unit_points, result.responses)
    cv_report, _ = loo_rbf_error(result.unit_points, result.responses, model)
    now = created_timestamp()
    card = build_card(
        family="rbf",
        benchmark=benchmark,
        sample_size=result.sample_size,
        seed=seed,
        diagnostics=model.diagnostics(),
        selection=selection_summary(result.search),
        holdout=result.errors,
        cv=cv_report,
        uncertainty=model.uncertainty.as_dict(),
        cost={"simulations_run": stats["simulations_run"],
              "cache_hits": stats["cache_hits"],
              "wall_time_s": round(stats["wall_time_s"], 6),
              "jobs": stats["jobs"]},
        design_space_hash=obs.design_space_hash(space),
        created=now,
    )
    try:
        registry = ModelRegistry()
        entry = registry.register(
            model,
            benchmark=benchmark,
            sample_size=result.sample_size,
            seed=seed,
            design_space_hash=obs.design_space_hash(space),
            git_sha=card["git_sha"],
            parameter_names=[p.name for p in space.parameters],
            metadata={"benchmark": benchmark,
                      "sample_size": result.sample_size, "seed": seed},
            card=card,
            mean_error_pct=result.errors.mean if result.errors else None,
            now=now,
        )
    except OSError as exc:
        print(f"[warning: model registration failed: {exc}]",
              file=sys.stderr)
        return None
    print(f"[model {entry.sha} registered as {benchmark}/rbf/"
          f"n={entry.sample_size} v{entry.version} in {registry.root}]")
    return {"model_sha": entry.sha,
            "model_version": entry.version,
            "model_card": entry.card,
            "model_family": entry.family}


def cmd_build(args: argparse.Namespace) -> int:
    """``repro build``: run BuildRBFmodel and print the validation report."""
    benchmark = _resolve_benchmark(args)
    space = paper_design_space()
    try:
        runner = SimulationRunner(
            benchmark, trace_length=args.trace_length, jobs=args.jobs
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    start = obs.monotonic()
    builder = BuildRBFModel(space, runner.cpi, seed=args.seed)
    tspace = paper_test_space()
    test_phys = tspace.decode(random_design(tspace, args.test_points, seed=args.seed + 1))
    test_cpi = runner.cpi(test_phys)
    result = builder.build(args.sample_size, test_phys, test_cpi)
    wall = obs.monotonic() - start
    stats = runner.stats()
    print(f"benchmark      : {spec_label(benchmark)}")
    print(f"sample size    : {args.sample_size}")
    print(f"p_min / alpha  : {result.info.p_min} / {result.info.alpha}")
    print(f"RBF centers    : {result.info.num_centers}")
    print(f"test accuracy  : {result.errors}")
    print(f"simulations run: {stats['simulations_run']} (+{stats['cache_hits']} cached)")
    print(f"workers        : {stats['jobs']}")
    print(f"sim wall time  : {stats['wall_time_s']:.2f}s")
    assert result.errors is not None
    model_extra = None
    if not args.no_register:
        model_extra = _register_build(
            result, benchmark=benchmark, space=space, stats=stats,
            seed=args.seed)
    extra = {"benchmark": benchmark,
             "p_min": result.info.p_min,
             "alpha": result.info.alpha,
             "num_centers": result.info.num_centers,
             "mean_error_pct": result.errors.mean}
    if model_extra:
        extra.update(model_extra)
    _write_run_manifest(
        "build", args,
        seed=args.seed,
        design_space=space,
        overrides={"sample_size": args.sample_size,
                   "test_points": args.test_points,
                   "trace_length": args.trace_length},
        metrics=runner.metrics.snapshot(),
        wall_time_s=wall,
        jobs=stats["jobs"],
        extra=extra,
    )
    return 0


def _load_trace_or_exit(path: str):
    """Read a trace for a CLI command, degrading gracefully.

    Missing, unreadable, empty, or mid-file-corrupt files exit 1 with a
    one-line error; a partial trailing line (a run killed mid-write) is
    skipped with a note on stderr, not a traceback.
    """
    try:
        trace = obs.read_trace(path, strict=False)
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}")
    except ValueError as exc:
        raise SystemExit(f"malformed trace: {exc}")
    if trace.empty:
        raise SystemExit(f"empty trace: {path} contains no trace events")
    if trace.skipped_lines:
        print(f"[skipped {trace.skipped_lines} partial trailing line(s); "
              f"trace was truncated mid-write]", file=sys.stderr)
    return trace


def cmd_trace_summary(args: argparse.Namespace) -> int:
    """``repro trace summary``: render the span tree of a JSONL trace."""
    import json

    from repro.obs.prof import summarize_trace

    trace = _load_trace_or_exit(args.path)
    if args.json:
        print(json.dumps(summarize_trace(trace), indent=2, sort_keys=True))
    else:
        print(obs.render_summary(trace))
    return 0


def cmd_trace_profile(args: argparse.Namespace) -> int:
    """``repro trace profile``: hot-span table or folded flamegraph stacks."""
    from repro.obs.prof import render_profile, to_folded

    trace = _load_trace_or_exit(args.path)
    if args.folded:
        sys.stdout.write(to_folded(trace))
    else:
        print(render_profile(trace, top=args.top))
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    """``repro trace diff``: attribute the wall delta between two traces."""
    import json

    from repro.obs import history

    old = _load_trace_or_exit(args.old)
    new = _load_trace_or_exit(args.new)
    diff = history.diff_traces(old, new)
    if args.json:
        print(json.dumps(history.diff_as_dict(diff), indent=2,
                         sort_keys=True))
    else:
        print(history.render_diff(diff, top=args.top))
    return 0


def _load_runs_or_exit(path: Optional[str] = None):
    """Read the run-history ledger for a CLI command, or exit 1 cleanly."""
    from repro.obs import history

    ledger = Path(path) if path else history.default_history_path()
    try:
        runs, skipped = history.load_runs(ledger)
    except OSError:
        raise SystemExit(
            f"no run history: {ledger} does not exist "
            f"(run `repro build`, `simulate` or `bench` first)")
    if skipped:
        print(f"[skipped {skipped} unparseable ledger line(s)]",
              file=sys.stderr)
    if not runs:
        raise SystemExit(f"empty run history: {ledger} contains no records")
    return runs


def _matches_filters(record: dict, args: argparse.Namespace) -> bool:
    """The ``history list``/``trend`` record filters (see ``iter_runs``)."""
    if args.filter_command and record.get("command") != args.filter_command:
        return False
    if args.benchmark and record.get("benchmark") != args.benchmark:
        return False
    git_sha = getattr(args, "git_sha", None)
    if git_sha and not (record.get("git_sha") or "").startswith(git_sha):
        return False
    since = getattr(args, "since", None)
    if since and (record.get("started") or "") < since:
        return False
    return True


def _cell(value, fmt: str) -> str:
    """Format an optional numeric ledger field for a table cell."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "-"
    return fmt.format(value)


def cmd_history_list(args: argparse.Namespace) -> int:
    """``repro history list``: the recorded runs, optionally filtered."""
    runs = _load_runs_or_exit(args.path)
    records = [(idx, r) for idx, r in enumerate(runs)
               if _matches_filters(r, args)]
    if not records:
        print("no runs match the given filters")
        return 0
    rows = [
        (str(idx),
         str(r.get("started") or "-")[:19],
         str(r.get("command") or "?"),
         str(r.get("benchmark") or "-"),
         _cell(r.get("sample_size"), "{:g}"),
         _cell(r.get("mean_error_pct"), "{:.3g}"),
         _cell(r.get("wall_time_s"), "{:.2f}"),
         str(r.get("git_sha") or "-")[:8])
        for idx, r in records
    ]
    print(format_table(
        ["#", "started", "command", "benchmark", "sample", "err%",
         "wall_s", "git"],
        rows, title=f"Run history ({len(records)} of {len(runs)} run(s))"))
    return 0


def cmd_history_show(args: argparse.Namespace) -> int:
    """``repro history show``: one ledger record as JSON (default: latest)."""
    import json

    runs = _load_runs_or_exit(args.path)
    try:
        record = runs[args.index]
    except IndexError:
        raise SystemExit(
            f"no run at index {args.index} "
            f"(ledger has {len(runs)} record(s))")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def cmd_history_trend(args: argparse.Namespace) -> int:
    """``repro history trend``: sparkline + table of one numeric field.

    ``--json`` emits the schema-versioned machine-readable document
    instead (sorted keys, like ``trace summary --json``), so scripts can
    consume model-error trends without scraping the table.
    """
    import json

    from repro.obs import history

    runs = [r for r in _load_runs_or_exit(args.path)
            if _matches_filters(r, args)]
    points = history.series(runs, args.field, x_field=args.x)
    if args.json:
        print(json.dumps(history.trend_document(points, args.field,
                                                x_field=args.x),
                         indent=2, sort_keys=True))
        return 0
    if len(points) < 2:
        raise SystemExit(
            f"not enough data: trend over {args.field!r} needs at least 2 "
            f"runs carrying it, found {len(points)}")
    print(history.render_trend(points, args.field, x_field=args.x))
    return 0


def cmd_history_check(args: argparse.Namespace) -> int:
    """``repro history check``: MAD drift gate on the latest run."""
    from repro.obs import history

    runs = _load_runs_or_exit(args.path)
    anomalies = history.check_latest(
        runs, threshold=args.threshold, min_history=args.min_history)
    if anomalies:
        for anomaly in anomalies:
            print(f"ANOMALY: {anomaly}")
        print(f"[latest run regressed vs comparable history "
              f"({len(anomalies)} field(s))]")
        return 1
    latest = runs[-1]
    prior = history.comparable_history(runs, latest)
    print(f"[history check passed: latest {latest.get('command')!r} run "
          f"within norms of {len(prior)} comparable run(s)]")
    return 0


def _registry_or_exit(args: argparse.Namespace):
    """The model registry at ``--registry`` (default: results/models)."""
    from repro.models.registry import ModelRegistry

    root = getattr(args, "registry", None)
    return ModelRegistry(root) if root else ModelRegistry()


def _entries_or_exit(registry) -> list:
    """All registry entries, or exit 1 when nothing was ever registered."""
    entries = registry.entries()
    if not entries:
        raise SystemExit(
            f"empty model registry: {registry.index_path} has no entries "
            f"(run `repro build` to register a fit)")
    return entries


def _find_entry_or_exit(registry, selector: Optional[str]):
    """Resolve a ``models`` selector (sha prefix / benchmark / latest)."""
    entries = _entries_or_exit(registry)
    if not selector:
        return entries[-1]
    entry = registry.find(selector)
    if entry is None:
        raise SystemExit(
            f"no registered model matches {selector!r} "
            f"(a sha prefix or benchmark name; see `repro models list`)")
    return entry


def cmd_models_list(args: argparse.Namespace) -> int:
    """``repro models list``: the registry index as a table."""
    registry = _registry_or_exit(args)
    entries = [e for e in _entries_or_exit(registry)
               if (not args.benchmark or e.benchmark == args.benchmark)
               and (not args.family or e.family == args.family)]
    if not entries:
        print("no registered models match the given filters")
        return 0
    rows = [
        (e.sha[:12],
         str(e.benchmark or "-"),
         e.family,
         _cell(e.sample_size, "{:g}"),
         f"v{e.version}",
         _cell(e.mean_error_pct, "{:.3g}"),
         str(e.created or "-")[:19],
         str(e.git_sha or "-")[:8])
        for e in entries
    ]
    print(format_table(
        ["sha", "benchmark", "family", "sample", "ver", "err%", "created",
         "git"],
        rows, title=f"Model registry ({len(entries)} entr(ies) in "
                    f"{registry.root})"))
    return 0


def cmd_models_show(args: argparse.Namespace) -> int:
    """``repro models show``: one index entry as JSON (default: latest)."""
    import json

    registry = _registry_or_exit(args)
    entry = _find_entry_or_exit(registry, args.selector)
    print(json.dumps(entry.as_record(), indent=2, sort_keys=True))
    return 0


def cmd_models_card(args: argparse.Namespace) -> int:
    """``repro models card``: render a registered model's card."""
    import json

    from repro.obs.modelcard import render_card

    registry = _registry_or_exit(args)
    entry = _find_entry_or_exit(registry, args.selector)
    try:
        card = registry.card(entry)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read model card: {exc}")
    if args.json:
        print(json.dumps(card, indent=2, sort_keys=True))
    else:
        print(render_card(card))
    return 0


def cmd_models_diff(args: argparse.Namespace) -> int:
    """``repro models diff``: compare two fits on the probe grid."""
    from repro.models.registry import drift_report, probe_predictions

    registry = _registry_or_exit(args)
    entry_a = _find_entry_or_exit(registry, args.old)
    entry_b = _find_entry_or_exit(registry, args.new)
    try:
        model_a, _, _ = registry.load(entry_a)
        model_b, _, _ = registry.load(entry_b)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load registered model: {exc}")
    if getattr(model_a, "dimension", None) != getattr(model_b, "dimension",
                                                      None):
        raise SystemExit(
            f"models are not comparable: dimensions "
            f"{getattr(model_a, 'dimension', '?')} vs "
            f"{getattr(model_b, 'dimension', '?')}")
    report = drift_report(probe_predictions(model_a),
                          probe_predictions(model_b), tolerance=args.tol)
    print(f"diff {entry_a.sha[:12]} (v{entry_a.version}) -> "
          f"{entry_b.sha[:12]} (v{entry_b.version}) on "
          f"{report['points']} probe point(s)")
    for key in ("median_abs_diff", "max_abs_diff", "score", "max_score"):
        print(f"  {key:16} {report[key]:.6g}")
    for label, entry in (("old", entry_a), ("new", entry_b)):
        if entry.mean_error_pct is not None:
            print(f"  {label + ' mean err':16} {entry.mean_error_pct:.4g}%")
    return 0


def cmd_models_check(args: argparse.Namespace) -> int:
    """``repro models check``: drift-gate the latest fit (exit 1 on drift).

    With ``--baseline`` the latest registered model is compared against a
    committed probe-baseline document (the CI mode: the baseline outlives
    the registry); otherwise against its registry predecessor in the same
    benchmark × family × sample-size lineage.  ``--write-baseline``
    (re)writes the baseline document from the resolved model instead.
    """
    from repro.models import registry as _registry

    registry = _registry_or_exit(args)
    entry = _find_entry_or_exit(registry, args.selector)
    try:
        model, _, _ = registry.load(entry)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load registered model: {exc}")

    if args.write_baseline:
        document = _registry.baseline_document(
            model, benchmark=entry.benchmark, sample_size=entry.sample_size,
            seed=entry.seed)
        path = _registry.write_baseline(document, args.write_baseline)
        print(f"[probe baseline for {entry.sha[:12]} written to {path}]")
        return 0

    if args.baseline:
        try:
            baseline = _registry.read_baseline(args.baseline)
        except OSError as exc:
            raise SystemExit(f"cannot read probe baseline: {exc}")
        except ValueError as exc:
            raise SystemExit(str(exc))
        report = _registry.check_against_baseline(model, baseline,
                                                  tolerance=args.tol)
        against = f"baseline {args.baseline}"
    else:
        predecessor = registry.predecessor(entry)
        if predecessor is None:
            print(f"[model check passed trivially: {entry.sha[:12]} "
                  f"(v{entry.version}) has no registry predecessor]")
            return 0
        try:
            previous, _, _ = registry.load(predecessor)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load predecessor model: {exc}")
        report = _registry.drift_report(
            _registry.probe_predictions(previous),
            _registry.probe_predictions(model), tolerance=args.tol)
        against = f"predecessor {predecessor.sha[:12]} (v{predecessor.version})"

    if report["drifted"]:
        print(f"DRIFT: {entry.sha[:12]} (v{entry.version}) vs {against}: "
              f"median score {report['score']:.4g} > tolerance "
              f"{report['tolerance']:g} over {report['points']} probe "
              f"point(s) (max score {report['max_score']:.4g})")
        return 1
    print(f"[model check passed: {entry.sha[:12]} (v{entry.version}) vs "
          f"{against}: median score {report['score']:.4g} <= "
          f"{report['tolerance']:g} over {report['points']} probe point(s)]")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run hot-path benchmarks, persist and gate results."""
    from repro.experiments.report import results_dir
    from repro.obs import prof

    if args.list:
        rows = [(s.name, s.group, str(s.repeats), f"{s.tolerance:g}x")
                for s in prof.registered_benchmarks()]
        print(format_table(["benchmark", "group", "repeats", "tolerance"],
                           rows, title="Registered benchmarks"))
        return 0
    start = obs.monotonic()
    try:
        results = prof.run_benchmarks(
            names=args.names or None, quick=args.quick,
            measure_memory=not args.no_memory,
        )
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
    print(prof.render_bench_table(results))
    preset = "quick" if args.quick else "full"
    doc = prof.results_document(results, preset=preset)
    path = prof.write_results(doc, results_dir())
    print(f"[bench results written to {path}]")
    baseline_path = (Path(args.baseline) if args.baseline
                     else prof.DEFAULT_BASELINE_PATH)

    def record(gate) -> None:
        manifest = obs.build_manifest(
            "bench", wall_time_s=obs.monotonic() - start)
        _record_run(manifest, args, gate=gate, extra={
            "bench_wall_s": round(sum(r.wall_s for r in results), 6),
            "artifact": str(path),
        })

    if args.update_baseline:
        previous = None
        if baseline_path.exists():
            try:
                previous = prof.load_baseline(baseline_path)
            except ValueError:
                previous = None  # unreadable/old baseline: rebuild it
        written = prof.write_baseline(
            prof.make_baseline(results, preset=preset, previous=previous),
            baseline_path)
        print(f"[baseline updated at {written}]")
        record(prof.gate_summary([], baseline_path, checked=False))
        return 0
    if args.check:
        try:
            baseline = prof.load_baseline(baseline_path)
        except OSError as exc:
            raise SystemExit(f"cannot read baseline: {exc}")
        except ValueError as exc:
            raise SystemExit(str(exc))
        violations = prof.check_results(results, baseline, preset=preset)
        record(prof.gate_summary(violations, baseline_path))
        if violations:
            for violation in violations:
                print(f"REGRESSION: {violation}")
            print(f"[{len(violations)} benchmark(s) failed the perf gate]")
            return 1
        print(f"[perf gate passed: {len(results)} benchmark(s) within "
              f"tolerance of {baseline_path}]")
        return 0
    record(prof.gate_summary([], checked=False))
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    """``repro experiments``: list every reproduced table and figure."""
    rows = [
        (exp.exhibit, exp.title[:58], exp.bench)
        for exp in EXPERIMENTS.values()
    ]
    print(format_table(["exhibit", "what it shows", "regenerated by"], rows,
                       title="Reproduced tables and figures"))
    return 0


def _latest_trace(runs):
    """The newest ledger record's trace, when one was recorded and loads."""
    for record in reversed(runs):
        trace_path = record.get("trace_path")
        if not trace_path or not Path(trace_path).exists():
            continue
        try:
            trace = obs.read_trace(trace_path, strict=False)
        except (OSError, ValueError):
            continue
        if not trace.empty:
            return trace
    return None


def _report_html(args: argparse.Namespace) -> int:
    """``repro report --html``: render the ledger as one HTML file."""
    from repro.experiments.report import results_dir
    from repro.obs import history

    runs = _load_runs_or_exit()
    html = history.render_html(runs, trace=_latest_trace(runs))
    dest = Path(args.html) if args.html else results_dir() / "report.html"
    path = history.write_html(dest, html)
    print(f"[report written to {path}]")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: aggregate rendered exhibits into one summary."""
    from repro.experiments.summary import collect, write_summary

    if args.html is not None:
        return _report_html(args)
    start = obs.monotonic()
    sections, missing = collect()
    if not sections:
        print("no results found; run `pytest benchmarks/ --benchmark-only` first")
        return 1
    path = write_summary()
    print("\n\n".join(sections))
    print(f"\n[summary written to {path}]")
    if missing:
        print(f"[missing exhibits: {', '.join(missing)}]")
    manifest = obs.build_manifest("report",
                                  wall_time_s=obs.monotonic() - start)
    _record_run(manifest, args, extra={"artifact": str(path)})
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: forward to the :mod:`repro.lint` CLI."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def cmd_benchmarks(_args: argparse.Namespace) -> int:
    """``repro benchmarks``: list the synthetic workloads."""
    rows = []
    for name in benchmark_names():
        p = get_profile(name)
        rows.append((
            spec_label(name),
            f"{p.load_frac + p.store_frac:.2f}",
            f"{p.code_footprint_kb:.0f}KB",
            f"{p.footprint_kb}KB",
            f"{p.branch_bias:.2f}",
            "FP" if p.fpalu_frac > 0 else "INT",
        ))
    print(format_table(
        ["benchmark", "mem frac", "code", "data footprint", "branch bias", "type"],
        rows,
        title="Synthetic SPEC CPU2000 workloads",
    ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: observable model serving over HTTP.

    Loads the registry's models (hash-verified), serves predictions until
    the ``--max-requests`` budget is spent or Ctrl-C, and leaves the full
    observability record behind: a streaming span trace (``--trace``), a
    JSONL access log, a mid-flight-refreshed manifest and one ledger
    record carrying request volume and latency quantiles.
    """
    from repro.experiments.report import results_dir
    from repro.obs.live import AccessLog, LiveCollector, StreamingTraceSink
    from repro.serve import ServingApp, serve_forever

    registry = _registry_or_exit(args)
    _entries_or_exit(registry)
    access_path = (Path(args.access_log) if args.access_log
                   else results_dir() / "serve-access.jsonl")
    access = AccessLog(access_path)
    app = ServingApp(
        registry,
        benchmark=args.benchmark,
        family=args.family,
        access_log=access,
        max_requests=args.max_requests,
    )
    services = app.load_models()
    if not services:
        raise SystemExit("no registered models match the given filters "
                         "(see `repro models list`)")
    for service in services:
        entry = service.entry
        print(f"[serving {entry.benchmark or '-'} {entry.family} "
              f"v{entry.version} {entry.sha}"
              f"{'' if service.calibrated else ' (uncalibrated)'}]")

    # Serving streams its trace span-by-span (repro.obs.live) instead of
    # using main()'s batch collector, which would buffer an unbounded
    # span tree for a process that may never exit.
    dest = args.trace_dest
    sink = collector = None
    if dest is not None:
        sink = StreamingTraceSink(
            dest,
            header={"command": "serve"},
            max_bytes=args.trace_max_bytes,
            metrics_snapshot=app.metrics.snapshot,
        )
        collector = LiveCollector(sink=sink)
        obs.activate(collector)
    base = obs.build_manifest("serve", extra={"registry": str(registry.root)})
    start = obs.monotonic()
    try:
        serve_forever(
            app, args.host, args.port,
            on_ready=lambda bound: print(
                f"[listening on http://{bound[0]}:{bound[1]} — "
                f"access log {access_path}]"),
        )
    except OSError as exc:
        raise SystemExit(f"cannot serve on {args.host}:{args.port}: {exc}")
    finally:
        if collector is not None:
            obs.deactivate()
            sink.close()
            print(f"[trace written to {dest}]")
        access.close()
        manifest = obs.snapshot_manifest(
            base,
            metrics=app.metrics.snapshot(),
            wall_time_s=obs.monotonic() - start,
            extra=app.session_fields(),
        )
        path = obs.write_manifest(results_dir() / "manifest.json", manifest)
        print(f"[manifest written to {path}]")
        _record_run(manifest, args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Predictive Performance Model for "
                    "Superscalar Processors' (MICRO 2006)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro {obs.package_version()}",
    )
    # Shared by every run-style subcommand; ``--trace`` takes an optional
    # path (bare ``--trace`` means the default results/trace-<cmd>.jsonl).
    traced = argparse.ArgumentParser(add_help=False)
    traced.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="PATH",
        help="record a JSONL span/metrics trace (default path: "
             "results/trace-<command>.jsonl); $REPRO_TRACE does the same",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", parents=[traced],
                           help="run one detailed simulation")
    p_sim.add_argument("benchmark", choices=benchmark_names())
    p_sim.add_argument("overrides", nargs="*",
                       help="ProcessorConfig overrides, e.g. l2_lat=18 rob_size=96")
    p_sim.add_argument("--trace-length", type=int, default=32768)
    p_sim.add_argument("--jobs", type=int, default=None,
                       help="worker processes for grid sweeps "
                            "(default: $REPRO_JOBS, else serial)")
    p_sim.set_defaults(func=cmd_simulate)

    p_stacks = sub.add_parser(
        "stacks", parents=[traced],
        help="CPI stacks: cycle accounting per binding constraint",
    )
    p_stacks.add_argument("benchmark", choices=benchmark_names())
    p_stacks.add_argument("overrides", nargs="*",
                          help="ProcessorConfig overrides; comma-separated "
                               "values sweep configurations side by side")
    p_stacks.add_argument("--trace-length", type=int, default=32768)
    p_stacks.add_argument("--normalize", action="store_true",
                          help="print fractions of total cycles instead of "
                               "CPI contributions")
    p_stacks.add_argument("--json", action="store_true",
                          help="emit the machine-readable stacks instead of "
                               "the table")
    p_stacks.add_argument("--interval", type=int, default=512, metavar="K",
                          help="interval-stream window size in committed "
                               "instructions (default 512)")
    p_stacks.add_argument("--intervals", nargs="?", const="", default=None,
                          metavar="PATH",
                          help="write the windowed interval stream as JSONL "
                               "(default path: results/stacks-<benchmark>"
                               ".jsonl)")
    p_stacks.set_defaults(func=cmd_stacks)

    p_build = sub.add_parser("build", parents=[traced],
                             help="build and validate a CPI model")
    p_build.add_argument("benchmark", nargs="?", choices=benchmark_names())
    p_build.add_argument("--benchmark", dest="benchmark_flag",
                         choices=benchmark_names(),
                         help="benchmark (alternative to the positional)")
    p_build.add_argument("--sample-size", type=int, default=90)
    p_build.add_argument("--test-points", type=int, default=50)
    p_build.add_argument("--trace-length", type=int, default=32768)
    p_build.add_argument("--seed", type=int, default=42)
    p_build.add_argument("--jobs", type=int, default=None,
                         help="worker processes for uncached simulations "
                              "(default: $REPRO_JOBS, else serial)")
    p_build.add_argument("--no-register", action="store_true",
                         help="skip registering the fitted model and its "
                              "card in results/models")
    p_build.set_defaults(func=cmd_build)

    p_exp = sub.add_parser("experiments", parents=[traced],
                           help="list reproduced exhibits")
    p_exp.set_defaults(func=cmd_experiments)

    p_bench = sub.add_parser("benchmarks", parents=[traced],
                             help="list synthetic workloads")
    p_bench.set_defaults(func=cmd_benchmarks)

    p_report = sub.add_parser(
        "report", parents=[traced],
        help="aggregate regenerated exhibits into one summary",
    )
    p_report.add_argument(
        "--html", nargs="?", const="", default=None, metavar="PATH",
        help="render the run-history ledger as one self-contained HTML "
             "file instead (default path: results/report.html)",
    )
    p_report.set_defaults(func=cmd_report)

    p_trace = sub.add_parser("trace", help="inspect recorded trace files")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summary", help="render a trace's span tree with timings"
    )
    p_tsum.add_argument("path", help="a JSONL trace file (from --trace)")
    p_tsum.add_argument("--json", action="store_true",
                        help="emit the machine-readable aggregate instead "
                             "of the table")
    p_tsum.set_defaults(func=cmd_trace_summary)
    p_tprof = trace_sub.add_parser(
        "profile", help="rank call stacks by self time / export flamegraph "
                        "folded stacks"
    )
    p_tprof.add_argument("path", help="a JSONL trace file (from --trace)")
    p_tprof.add_argument("--top", type=int, default=20,
                         help="rows in the hot-span table (default 20)")
    p_tprof.add_argument("--folded", action="store_true",
                         help="emit flamegraph-compatible folded stacks "
                              "(pipe to flamegraph.pl)")
    p_tprof.set_defaults(func=cmd_trace_profile)
    p_tdiff = trace_sub.add_parser(
        "diff", help="attribute the wall-clock delta between two traces "
                     "to per-span self-time changes"
    )
    p_tdiff.add_argument("old", help="the baseline trace (from --trace)")
    p_tdiff.add_argument("new", help="the trace under scrutiny")
    p_tdiff.add_argument("--top", type=int, default=20,
                         help="rows in the attribution table (default 20)")
    p_tdiff.add_argument("--json", action="store_true",
                         help="emit the machine-readable diff (schema v1) "
                              "instead of the table")
    p_tdiff.set_defaults(func=cmd_trace_diff)

    from repro.obs.history.trend import DEFAULT_THRESHOLD, MIN_HISTORY

    p_hist = sub.add_parser(
        "history", help="query the run-history ledger"
    )
    hist_common = argparse.ArgumentParser(add_help=False)
    hist_common.add_argument(
        "--path", default=None, metavar="LEDGER",
        help="ledger file (default: results/history/runs.jsonl)")
    hist_filters = argparse.ArgumentParser(add_help=False)
    hist_filters.add_argument("--command", dest="filter_command",
                              default=None,
                              help="only runs of this command")
    hist_filters.add_argument("--benchmark", default=None,
                              help="only runs of this benchmark")
    hist_sub = p_hist.add_subparsers(dest="history_command", required=True)
    p_hlist = hist_sub.add_parser(
        "list", parents=[hist_common, hist_filters],
        help="list recorded runs")
    p_hlist.add_argument("--git-sha", default=None,
                         help="only runs whose git SHA starts with this")
    p_hlist.add_argument("--since", default=None, metavar="ISO8601",
                         help="only runs started at or after this UTC "
                              "timestamp")
    p_hlist.set_defaults(func=cmd_history_list)
    p_hshow = hist_sub.add_parser(
        "show", parents=[hist_common],
        help="print one ledger record as JSON")
    p_hshow.add_argument("index", nargs="?", type=int, default=-1,
                         help="ledger index (default: -1, the latest)")
    p_hshow.set_defaults(func=cmd_history_show)
    p_htrend = hist_sub.add_parser(
        "trend", parents=[hist_common, hist_filters],
        help="sparkline + table of one numeric field across runs")
    p_htrend.add_argument("field",
                          help="record field to trend, e.g. mean_error_pct, "
                               "bench_wall_s, or the cycle-accounting "
                               "headlines stack_mem_frac / "
                               "stack_frontend_frac")
    p_htrend.add_argument("--x", default=None, metavar="FIELD",
                          help="x-axis field (default: ledger index), "
                               "e.g. sample_size")
    p_htrend.add_argument("--json", action="store_true",
                          help="emit the machine-readable trend document "
                               "(schema v1, sorted keys) instead of the "
                               "table")
    p_htrend.set_defaults(func=cmd_history_trend)
    p_hcheck = hist_sub.add_parser(
        "check", parents=[hist_common],
        help="flag the latest run if it regressed vs comparable history "
             "(MAD outlier test; exits 1 on anomaly)")
    p_hcheck.add_argument("--threshold", type=float,
                          default=DEFAULT_THRESHOLD,
                          help="modified z-score cutoff "
                               f"(default {DEFAULT_THRESHOLD:g})")
    p_hcheck.add_argument("--min-history", type=int, default=MIN_HISTORY,
                          help="comparable prior runs required before the "
                               f"check can fire (default {MIN_HISTORY})")
    p_hcheck.set_defaults(func=cmd_history_check)

    from repro.models.registry import DRIFT_TOLERANCE

    p_models = sub.add_parser(
        "models", help="query the model registry (results/models)"
    )
    models_common = argparse.ArgumentParser(add_help=False)
    models_common.add_argument(
        "--registry", default=None, metavar="DIR",
        help="registry root (default: results/models)")
    models_sub = p_models.add_subparsers(dest="models_command", required=True)
    p_mlist = models_sub.add_parser(
        "list", parents=[models_common], help="list registered models")
    p_mlist.add_argument("--benchmark", default=None,
                         help="only models of this benchmark")
    p_mlist.add_argument("--family", default=None,
                         help="only models of this family (rbf, linear, ...)")
    p_mlist.set_defaults(func=cmd_models_list)
    p_mshow = models_sub.add_parser(
        "show", parents=[models_common],
        help="print one registry entry as JSON")
    p_mshow.add_argument("selector", nargs="?", default=None,
                         help="sha prefix or benchmark (default: latest)")
    p_mshow.set_defaults(func=cmd_models_show)
    p_mcard = models_sub.add_parser(
        "card", parents=[models_common],
        help="render a registered model's card")
    p_mcard.add_argument("selector", nargs="?", default=None,
                         help="sha prefix or benchmark (default: latest)")
    p_mcard.add_argument("--json", action="store_true",
                         help="emit the raw card JSON instead of the "
                              "rendering")
    p_mcard.set_defaults(func=cmd_models_card)
    p_mdiff = models_sub.add_parser(
        "diff", parents=[models_common],
        help="compare two registered fits on the fixed probe grid")
    p_mdiff.add_argument("old", help="sha prefix or benchmark of the "
                                     "reference model")
    p_mdiff.add_argument("new", help="sha prefix or benchmark of the model "
                                     "under scrutiny")
    p_mdiff.add_argument("--tol", type=float, default=DRIFT_TOLERANCE,
                         help="MAD-style drift tolerance "
                              f"(default {DRIFT_TOLERANCE:g})")
    p_mdiff.set_defaults(func=cmd_models_diff)
    p_mcheck = models_sub.add_parser(
        "check", parents=[models_common],
        help="drift-gate the latest fit against its predecessor or a "
             "committed probe baseline (exits 1 on drift)")
    p_mcheck.add_argument("selector", nargs="?", default=None,
                          help="sha prefix or benchmark (default: latest)")
    p_mcheck.add_argument("--baseline", default=None, metavar="PATH",
                          help="compare against this committed probe "
                               "baseline instead of the registry "
                               "predecessor")
    p_mcheck.add_argument("--write-baseline", default=None, metavar="PATH",
                          help="write the probe baseline for the resolved "
                               "model and exit")
    p_mcheck.add_argument("--tol", type=float, default=DRIFT_TOLERANCE,
                          help="MAD-style drift tolerance "
                               f"(default {DRIFT_TOLERANCE:g})")
    p_mcheck.set_defaults(func=cmd_models_check)

    p_perf = sub.add_parser(
        "bench", parents=[traced],
        help="run hot-path benchmarks; gate against the perf baseline",
    )
    p_perf.add_argument("names", nargs="*",
                        help="benchmark names to run (default: all; see "
                             "--list)")
    p_perf.add_argument("--quick", action="store_true",
                        help="small problem sizes and fewer repeats (CI "
                             "smoke preset)")
    p_perf.add_argument("--check", action="store_true",
                        help="compare against the committed baseline and "
                             "exit 1 on regression")
    p_perf.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run (keeps "
                             "hand-tuned tolerances)")
    p_perf.add_argument("--baseline", default=None,
                        help="baseline file (default: benchmarks/perf/"
                             "baseline.json)")
    p_perf.add_argument("--list", action="store_true",
                        help="list registered benchmarks and exit")
    p_perf.add_argument("--no-memory", action="store_true",
                        help="skip the tracemalloc peak-memory pass")
    p_perf.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", parents=[traced],
        help="serve registered models over HTTP with live telemetry",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="bind port; 0 picks an ephemeral port "
                              "(default 8321)")
    p_serve.add_argument("--registry", default=None, metavar="DIR",
                         help="model registry root (default: "
                              "results/models)")
    p_serve.add_argument("--benchmark", default=None,
                         help="serve only this benchmark's lineages")
    p_serve.add_argument("--family", default=None,
                         help="serve only this model family")
    p_serve.add_argument("--max-requests", type=int, default=None,
                         metavar="N",
                         help="shut down cleanly after N requests "
                              "(deterministic smoke runs; default: serve "
                              "until Ctrl-C)")
    p_serve.add_argument("--access-log", default=None, metavar="PATH",
                         help="JSONL access log (default: "
                              "results/serve-access.jsonl)")
    p_serve.add_argument("--trace-max-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="rotate the streaming trace above this size "
                              "(default: never)")
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="run the static-analysis pass (repro-lint)"
    )
    p_lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to repro-lint")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def _trace_destination(args: argparse.Namespace) -> Optional[Path]:
    """Where this invocation's trace goes, or ``None`` when not tracing.

    ``--trace`` wins over the environment; ``REPRO_TRACE`` set to ``1`` /
    ``true`` / empty selects the default path, anything else is the path.
    """
    if args.command in ("trace", "lint", "history", "models"):
        return None
    spec = getattr(args, "trace", None)
    if spec is None:
        env = os.environ.get("REPRO_TRACE")
        if env is None or env.lower() in ("0", "false", "no"):
            return None
        spec = "" if env.lower() in ("", "1", "true", "yes") else env
    if spec == "":
        from repro.experiments.report import results_dir

        return results_dir() / f"trace-{args.command}.jsonl"
    return Path(spec)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Forward verbatim: argparse's REMAINDER mis-parses a leading
        # option (e.g. ``repro lint --list-rules``) at the parent level.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    dest = _trace_destination(args)
    args.trace_dest = dest  # ledger records point at the run's trace
    if dest is None or args.command == "serve":
        # serve streams its own trace span-by-span (repro.obs.live);
        # batch collection would buffer an unbounded tree.
        return args.func(args)
    with obs.collecting() as collector:
        with obs.span(f"repro/{args.command}"):
            code = args.func(args)
        obs.write_trace(collector, dest, header={"command": args.command})
    print(f"[trace written to {dest}]")
    return code


if __name__ == "__main__":
    sys.exit(main())
