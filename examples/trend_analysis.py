"""Trend analysis: microarchitectural insight without re-simulating.

Reproduces the paper's Sec. 4.1 workflow interactively: fit a model, rank
parameter significance from it, and check a two-factor interaction trend
(predicted vs simulated) like the paper's Figure 6.

Run:  python examples/trend_analysis.py
"""

from repro import BuildRBFModel, SimulationRunner, paper_design_space
from repro.analysis.effects import rank_parameters
from repro.analysis.trends import interaction_grid, trend_comparison

BENCHMARK = "vortex"
SAMPLE_SIZE = 110

BASE_POINT = {
    "pipe_depth": 15, "rob_size": 76, "iq_frac": 0.5, "lsq_frac": 0.5,
    "l2_size_kb": 1448, "l2_lat": 12, "il1_size_kb": 32,
    "dl1_size_kb": 32, "dl1_lat": 2,
}


def main() -> None:
    space = paper_design_space()
    runner = SimulationRunner(BENCHMARK)
    builder = BuildRBFModel(space, runner.cpi, seed=42)
    result = builder.build(SAMPLE_SIZE)
    model = result.model

    print(f"Parameter significance for {BENCHMARK} (main-effect magnitude, "
          "estimated from the model alone):")
    for effect in rank_parameters(model, space):
        bar = "#" * int(round(effect.magnitude * 30))
        print(f"  {effect.parameter:12s} {effect.magnitude:6.3f} {bar}")

    print("\nTwo-factor interaction: icache size x L2 latency "
          "(solid = simulation, prd = model):")
    grid = interaction_grid(
        space, runner.cpi, BASE_POINT,
        param_x="l2_lat", x_values=[5, 10, 15, 20],
        param_y="il1_size_kb", y_values=[8, 64],
        model=model,
    )
    print(trend_comparison(grid))
    print(f"\ntrend direction agreement: {grid.monotonic_agreement()*100:.0f}%")
    print(f"max trend error: {grid.max_trend_error():.1f}%")


if __name__ == "__main__":
    main()
