"""Bottleneck analysis: CPI stacks across programs and configurations.

The paper motivates modeling partly by the "lack of insights on ... the
nature of performance bottlenecks" in ad-hoc exploration.  This example
derives CPI stacks by counterfactual simulation (oracle branch predictor,
perfect caches) for three contrasting programs, then shows how a design
change shifts the bottleneck.

Run:  python examples/bottleneck_analysis.py
"""

from repro import ProcessorConfig, get_trace
from repro.analysis.bottleneck import cpi_stack, render_stack

PROGRAMS = ("mcf", "crafty", "equake")


def main() -> None:
    print("CPI stacks on the baseline machine:\n")
    for name in PROGRAMS:
        trace = get_trace(name, 16384)
        stack = cpi_stack(ProcessorConfig(), trace)
        print(f"--- {name} (dominant: {stack.dominant_component()})")
        print(render_stack(stack))
        print()

    print("Effect of a design change (mcf, L2 256KB -> 8MB):")
    trace = get_trace("mcf", 16384)
    for l2 in (256, 8192):
        stack = cpi_stack(ProcessorConfig(l2_size_kb=l2), trace)
        print(f"\n--- L2 = {l2}KB")
        print(render_stack(stack))
    print("\nShape check: growing the L2 shrinks the data-memory component;")
    print("the residual bottleneck shifts toward the base/branch components.")


if __name__ == "__main__":
    main()
