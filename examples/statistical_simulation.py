"""Statistical simulation: the related-work alternative, end to end.

Profiles a benchmark trace into statistics, regenerates a reduced
synthetic trace, and compares three ways of answering "what is the CPI at
configuration X?":

* full detailed simulation (ground truth, most expensive);
* statistical simulation (one reduced simulation per query);
* the paper's RBF model (expensive once, then free per query).

Run:  python examples/statistical_simulation.py
"""

from repro import (
    BuildRBFModel,
    ProcessorConfig,
    SimulationRunner,
    StatisticalSimulator,
    characterize,
    get_trace,
    paper_design_space,
    simulate,
)

BENCHMARK = "twolf"
SYNTH_LENGTH = 6000


def main() -> None:
    source = get_trace(BENCHMARK)
    estimator = StatisticalSimulator(source, synthetic_length=SYNTH_LENGTH, seed=7)

    src_char = characterize(source)
    syn_char = characterize(estimator.trace)
    print(f"Profile fidelity ({BENCHMARK} -> {SYNTH_LENGTH}-instr synthetic):")
    print(f"  memory fraction : {src_char.memory_fraction():.3f} -> "
          f"{syn_char.memory_fraction():.3f}")
    print(f"  branch fraction : {src_char.branch_fraction:.3f} -> "
          f"{syn_char.branch_fraction:.3f}")
    print(f"  mean dep dist   : {src_char.mean_dep_distance:.2f} -> "
          f"{syn_char.mean_dep_distance:.2f}")

    space = paper_design_space()
    runner = SimulationRunner(BENCHMARK)
    model = BuildRBFModel(space, runner.cpi, seed=42).build(90).model

    configs = {
        "baseline": ProcessorConfig(),
        "slow memory": ProcessorConfig(l2_lat=20, dl1_lat=4),
        "small window": ProcessorConfig(rob_size=24, iq_size=12, lsq_size=12),
    }
    print(f"\n{'configuration':14} {'true':>8} {'statsim':>8} {'model':>8}")
    for name, config in configs.items():
        true_cpi = simulate(config, source).cpi
        stat_cpi = estimator.cpi_config(config)
        point = {
            "pipe_depth": config.pipe_depth, "rob_size": config.rob_size,
            "iq_frac": config.iq_size / config.rob_size,
            "lsq_frac": config.lsq_size / config.rob_size,
            "l2_size_kb": config.l2_size_kb, "l2_lat": config.l2_lat,
            "il1_size_kb": config.il1_size_kb, "dl1_size_kb": config.dl1_size_kb,
            "dl1_lat": config.dl1_lat,
        }
        model_cpi = model.predict(space.encode(space.as_array(point)[None, :]))[0]
        print(f"{name:14} {true_cpi:>8.3f} {stat_cpi:>8.3f} {model_cpi:>8.3f}")

    print("\nCost per additional query:")
    print(f"  detailed simulation : {len(source)} instructions")
    print(f"  statistical sim     : {SYNTH_LENGTH} instructions "
          f"({len(source) // SYNTH_LENGTH}x cheaper)")
    print("  RBF model           : one dot product (after 90 training sims)")


if __name__ == "__main__":
    main()
