"""Sensitivity analysis: how much do interactions matter?

The paper's critique of Plackett-Burman screening (related work) is that
it assumes parameter interactions are negligible, while processor
performance exhibits significant interactions.  This example quantifies
that claim with variance-based (Sobol) sensitivity analysis computed from
a fitted model — thousands of model evaluations, zero extra simulations.

Run:  python examples/sensitivity_analysis.py
"""

from repro import BuildRBFModel, SimulationRunner, paper_design_space
from repro.analysis.anova import interaction_share, rank_by_total, sobol_indices

BENCHMARK = "mcf"
SAMPLE_SIZE = 110


def main() -> None:
    space = paper_design_space()
    runner = SimulationRunner(BENCHMARK)
    builder = BuildRBFModel(space, runner.cpi, seed=42)
    model = builder.build(SAMPLE_SIZE).model
    print(f"Model built for {BENCHMARK} from {SAMPLE_SIZE} simulations.\n")

    indices = sobol_indices(model, space, samples=8192, seed=0)
    print(f"{'parameter':14} {'first-order':>12} {'total':>8} {'interaction':>12}")
    for ix in rank_by_total(indices):
        print(f"{ix.parameter:14} {ix.first_order:>12.3f} {ix.total:>8.3f} "
              f"{ix.interaction:>12.3f}")

    share = interaction_share(indices)
    print(f"\nInteraction share of total CPI variance: {share * 100:.1f}%")
    print("A Plackett-Burman screen structurally assumes this is ~0; the")
    print("paper's position is that interactions are significant, which is")
    print("why it samples the full space and fits a non-linear model.")


if __name__ == "__main__":
    main()
