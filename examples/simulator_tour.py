"""Substrate tour: drive the superscalar simulator directly.

The modeling stack treats the simulator as a black box; this example opens
it up — runs one benchmark across a few named configurations and prints
the microarchitectural event rates behind each CPI, plus the cross-check
against the independent reference model (the paper's alphasim role).

Run:  python examples/simulator_tour.py
"""

from repro import ProcessorConfig, Simulator, get_trace
from repro.simulator.refsim import ReferenceSimulator
from repro.util.tables import format_table

BENCHMARK = "mcf"

CONFIGS = {
    "baseline": ProcessorConfig(),
    "deep-narrow": ProcessorConfig(pipe_depth=24, rob_size=32, iq_size=16,
                                   lsq_size=16),
    "big-window": ProcessorConfig(rob_size=128, iq_size=64, lsq_size=64),
    "tiny-caches": ProcessorConfig(il1_size_kb=8, dl1_size_kb=8,
                                   l2_size_kb=256),
    "fast-memory": ProcessorConfig(l2_lat=5, dl1_lat=1, l2_size_kb=8192),
}


def main() -> None:
    trace = get_trace(BENCHMARK)
    print(f"{BENCHMARK}: {len(trace)} instructions; mix "
          f"{ {k: round(v, 2) for k, v in trace.mix().items() if v > 0.01} }\n")

    rows = []
    for name, config in CONFIGS.items():
        result = Simulator(config).run(trace)
        reference = ReferenceSimulator(config).run(trace)
        rows.append((
            name,
            round(result.cpi, 3),
            round(reference.cpi, 3),
            f"{result.dl1_miss_rate * 100:.1f}%",
            f"{result.l2_miss_rate * 100:.1f}%",
            f"{result.branch_mispredict_rate * 100:.1f}%",
            round(result.mean_memory_queue_delay, 1),
            round(result.power, 1),
        ))
    print(format_table(
        ["config", "CPI", "ref CPI", "dl1 miss", "l2 miss", "bpred miss",
         "mem queue", "power"],
        rows,
        title="Detailed simulator vs first-order reference model",
    ))
    print("\nThe reference model is an independent implementation; absolute")
    print("CPIs differ, but both must move the same way across configs —")
    print("the paper's cross-simulator validation methodology.")


if __name__ == "__main__":
    main()
