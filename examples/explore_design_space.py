"""Design-space exploration: find good configurations without simulating.

The paper's motivating use case: once a model exists, architects can score
thousands of candidate configurations for free.  This example finds the
lowest-CPI configuration under an area-style budget (a constraint on total
cache capacity), then verifies the winners with detailed simulation.

Run:  python examples/explore_design_space.py
"""

from repro import BuildRBFModel, SimulationRunner, paper_design_space
from repro.analysis.optimize import optimize_design

BENCHMARK = "twolf"
SAMPLE_SIZE = 90
CACHE_BUDGET_KB = 2200  # total L1 + L2 capacity allowed


def cache_budget(point) -> bool:
    total = point["l2_size_kb"] + point["il1_size_kb"] + point["dl1_size_kb"]
    return total <= CACHE_BUDGET_KB


def main() -> None:
    space = paper_design_space()
    runner = SimulationRunner(BENCHMARK)
    builder = BuildRBFModel(space, runner.cpi, seed=42)
    model = builder.build(SAMPLE_SIZE).model
    print(f"Model built for {BENCHMARK} from {SAMPLE_SIZE} simulations.")

    candidates = optimize_design(
        model, space, minimize=True, candidates=4096, refine_top=8, seed=7,
        constraint=cache_budget,
    )
    print(f"\nBest configurations under a {CACHE_BUDGET_KB}KB cache budget "
          "(model-predicted, then simulator-verified):")
    for rank, cand in enumerate(candidates[:3], start=1):
        verified = runner.cpi(space.as_array(cand.point)[None, :])[0]
        caches = (cand.point["l2_size_kb"] + cand.point["il1_size_kb"]
                  + cand.point["dl1_size_kb"])
        print(f"  #{rank}: predicted CPI {cand.predicted:.3f}, "
              f"simulated {verified:.3f}, caches {caches:.0f}KB")
        for name in space.names:
            print(f"        {name:12s} = {cand.point[name]:.4g}")

    evaluations = 4096 + 8 * 64
    print(f"\nThe search scored ~{evaluations} configurations with the model;")
    print(f"only {runner.simulations_run} detailed simulations were run in total.")


if __name__ == "__main__":
    main()
