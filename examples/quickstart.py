"""Quickstart: build a CPI model for one benchmark and predict with it.

This walks the paper's BuildRBFmodel procedure end to end:

1. take the paper's 9-parameter design space (Table 1);
2. pick a discrepancy-optimised latin hypercube sample;
3. simulate CPI at the sampled points (the only expensive step);
4. fit an RBF network (regression tree + AICc center selection);
5. validate on independent random points from the restricted Table 2 space;
6. use the model as a simulation substitute.

Run:  python examples/quickstart.py
"""

from repro import (
    BuildRBFModel,
    SimulationRunner,
    paper_design_space,
    paper_test_space,
)
from repro.sampling.random_design import random_design

BENCHMARK = "mcf"
SAMPLE_SIZE = 90  # near the knee of the discrepancy curve (paper Fig. 2)


def main() -> None:
    space = paper_design_space()
    print(space.describe())
    print()

    # The runner simulates CPI at physical design points and memoises
    # results on disk, so re-running this script is cheap.
    runner = SimulationRunner(BENCHMARK)

    # Independent random test points from the restricted space (Table 2).
    test_space = paper_test_space()
    test_points = test_space.decode(random_design(test_space, 50, seed=123))
    test_cpi = runner.cpi(test_points)

    builder = BuildRBFModel(space, runner.cpi, seed=42)
    result = builder.build(SAMPLE_SIZE, test_points, test_cpi)

    info = result.info
    print(f"Built RBF model for {BENCHMARK} from {SAMPLE_SIZE} simulations:")
    print(f"  method parameters: p_min={info.p_min}, alpha={info.alpha}")
    print(f"  RBF centers: {info.num_centers} (of {info.num_candidates} candidates)")
    print(f"  test accuracy: {result.errors}")
    print()

    # The model now replaces simulation: predict an unseen configuration.
    point = {
        "pipe_depth": 14, "rob_size": 96, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 2048, "l2_lat": 10, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    }
    predicted = result.predict_physical(space, space.as_array(point)[None, :])[0]
    simulated = runner.cpi(space.as_array(point)[None, :])[0]
    print(f"Unseen design point: predicted CPI {predicted:.3f}, "
          f"simulated CPI {simulated:.3f} "
          f"({abs(predicted - simulated) / simulated * 100:.1f}% error)")


if __name__ == "__main__":
    main()
