"""Model family shoot-out: RBF network vs linear regression vs plain tree.

The paper's Figure 7 comparison, extended with the bare regression tree as
a third family.  All models are fitted on the identical space-filling
sample and scored on the identical random test set.

Run:  python examples/compare_models.py
"""

from repro import (
    BuildRBFModel,
    LinearInteractionModel,
    RegressionTree,
    SimulationRunner,
    paper_design_space,
    paper_test_space,
    prediction_errors,
)
from repro.sampling.random_design import random_design

BENCHMARK = "mcf"
SAMPLE_SIZES = (50, 110, 200)


def main() -> None:
    space = paper_design_space()
    runner = SimulationRunner(BENCHMARK)

    test_space = paper_test_space()
    test_points = test_space.decode(random_design(test_space, 50, seed=123))
    test_cpi = runner.cpi(test_points)
    unit_test = space.encode(test_points)

    builder = BuildRBFModel(space, runner.cpi, seed=42)

    print(f"Mean absolute CPI error (%) on 50 random test points, {BENCHMARK}:")
    print(f"{'n':>6} {'RBF':>8} {'linear':>8} {'tree':>8}")
    for size in SAMPLE_SIZES:
        result = builder.build(size, test_points, test_cpi)
        rbf_err = result.errors.mean

        linear = LinearInteractionModel.fit(result.unit_points, result.responses)
        lin_err = prediction_errors(test_cpi, linear.predict(unit_test)).mean

        tree = RegressionTree(result.unit_points, result.responses, p_min=2)
        tree_err = prediction_errors(test_cpi, tree.predict(unit_test)).mean

        print(f"{size:>6} {rbf_err:>8.2f} {lin_err:>8.2f} {tree_err:>8.2f}")

    print("\nExpected shape (paper Fig. 7): RBF < linear at every size, and")
    print("the gap widens with sample size; the piecewise-constant tree")
    print("underperforms both smooth families.")


if __name__ == "__main__":
    main()
