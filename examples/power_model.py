"""Extension: predictive models for power, and the CPI/power trade-off.

The paper's conclusion proposes applying the methodology to power
consumption.  The simulator reports an activity-based power proxy; this
example fits an RBF model to it with the identical procedure, then uses
*both* models to sketch a CPI-vs-power Pareto front — zero extra
simulations once the two models exist.

Run:  python examples/power_model.py
"""

import numpy as np

from repro import BuildRBFModel, SimulationRunner, paper_design_space
from repro.util.rng import make_rng

BENCHMARK = "mcf"
SAMPLE_SIZE = 90


def main() -> None:
    space = paper_design_space()
    runner = SimulationRunner(BENCHMARK)

    cpi_model = BuildRBFModel(space, runner.cpi, seed=42).build(SAMPLE_SIZE).model
    power_model = BuildRBFModel(space, runner.power, seed=42).build(SAMPLE_SIZE).model
    print(f"CPI and power models built for {BENCHMARK} "
          f"({runner.simulations_run} simulations total — the sample is shared).")

    # Score a large random population with both models.
    rng = make_rng(5, "pareto")
    unit = space.random_unit_points(2000, rng)
    cpi = cpi_model.predict(unit)
    power = power_model.predict(unit)

    # Non-dominated (min CPI, min power) front.
    order = np.argsort(cpi)
    front = []
    best_power = np.inf
    for idx in order:
        if power[idx] < best_power:
            best_power = power[idx]
            front.append(idx)

    print(f"\nPareto front over 2000 model-scored configurations "
          f"({len(front)} non-dominated points):")
    print(f"{'CPI':>8} {'power':>8}  configuration highlights")
    for idx in front[:10]:
        phys = space.decode(unit[idx][None, :])[0]
        point = space.as_dict(phys)
        print(f"{cpi[idx]:>8.3f} {power[idx]:>8.2f}  "
              f"l2={point['l2_size_kb']:.0f}KB rob={point['rob_size']:.0f} "
              f"depth={point['pipe_depth']:.0f}")

    print("\nShape check: walking down the front, CPI falls while power rises —")
    print("bigger windows and caches buy performance at a leakage/activity cost.")


if __name__ == "__main__":
    main()
