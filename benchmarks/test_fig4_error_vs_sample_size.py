"""Regenerates Figure 4: model error vs sample size (mcf and twolf).

Paper shape: mean/std/max errors decrease with sample size, and the
improvement tapers at the higher sizes (past the Figure 2 knee near 90).
"""

import pytest

from repro.experiments import common, fig4_error_vs_sample_size as exp
from repro.experiments.report import emit


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig4_error_vs_sample_size(result, benchmark):
    # Benchmark one full model construction at the knee sample size (the
    # recurring cost of the paper's procedure, simulation excluded).
    mcf_90 = common.rbf_model("mcf", 90)
    from repro.models.rbf import build_rbf_from_tree

    benchmark(
        lambda: build_rbf_from_tree(
            mcf_90.unit_points, mcf_90.responses,
            p_min=mcf_90.info.p_min, alpha=mcf_90.info.alpha,
        )
    )

    emit("fig4_error_vs_sample_size", exp.render(result))

    for name, rows in result.series.items():
        means = [e.mean for _, e in rows]
        # Largest sample clearly beats the smallest.
        assert means[-1] < means[0], name
        # Usable accuracy at the top size.
        assert means[-1] < 8.0, name
        # Taper: per-sample improvement before the knee exceeds after.
        pre, post = exp.tapering(result, name)
        assert pre > post, name
