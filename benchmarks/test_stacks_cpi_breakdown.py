"""Regenerates the CPI-stacks exhibit: cycle accounting across profiles.

Exhibit shape: for every SPEC profile the attributed simulator splits
measured cycles into binding constraints at three contrasting design
points.  The defining invariant is *exactness* — components sum bitwise
to measured cycles — plus the paper's depth interaction: a deeper pipe
pays strictly more branch-redirect cycles on every profile.
"""

import pytest

from repro.experiments import stacks_cpi_breakdown as exp
from repro.experiments.report import emit
from repro.core.design_space import paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator
from repro.workloads.spec2000 import get_trace


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_stacks_cpi_breakdown(result, benchmark):
    # Benchmark one attributed simulation (balanced point, mcf).
    space = paper_design_space()
    config = ProcessorConfig.from_design_point(
        space.resolve(dict(exp.DESIGN_POINTS["balanced"])))
    trace = get_trace("mcf", exp.TRACE_LENGTH, 0).prepare()
    benchmark(lambda: Simulator(config).run(trace, collect_attribution=True))

    emit("stacks_cpi_breakdown", exp.render(result))

    # The defining invariant: every stack sums bitwise to its cycles.
    assert result.exact()
    for bench, per_point in result.stacks.items():
        for stack in per_point.values():
            assert all(v >= 0.0 for v in stack.components.values()), bench
            assert stack.instructions > 0
        # Deeper pipeline -> strictly larger branch-redirect bill.
        assert (per_point["deep"].components["branch_redirect"]
                > per_point["shallow"].components["branch_redirect"]), bench

    # Attribution is an observer: the attributed CPI equals the plain
    # run's CPI bitwise (the PR 3 "tracing off perturbs nothing"
    # contract, seen from the other side).
    plain = Simulator(config).run(trace)
    attributed = result.stacks["mcf"]["balanced"]
    assert repr(attributed.cpi) == repr(plain.cpi)
