"""Regenerates Figure 5: distribution of tree split values for mcf.

Paper shape: the memory-system parameters split most often; split values
cluster where the response bends (e.g. low L2 sizes), and core-side
parameters split rarely.
"""

import pytest

from repro.experiments import common, fig5_split_values as exp
from repro.experiments.report import emit
from repro.analysis.splits import split_value_distribution
from repro.models.tree import RegressionTree

MEMORY_PARAMS = ("l2_lat", "l2_size_kb", "dl1_lat", "dl1_size_kb")
CORE_PARAMS = ("iq_frac", "lsq_frac")


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig5_split_values(result, benchmark):
    mcf = common.rbf_model("mcf", exp.SAMPLE_SIZE)
    tree = RegressionTree(mcf.unit_points, mcf.responses, p_min=1)
    space = common.training_space()
    benchmark(lambda: split_value_distribution(tree, space))

    emit("fig5_split_values", exp.render(result))

    # Among the significant (earliest) splits, memory parameters dominate;
    # deep splits fit residual noise and spread across all parameters.
    counts = result.significant_counts()
    memory_splits = sum(counts[p] for p in MEMORY_PARAMS)
    core_splits = sum(counts[p] for p in CORE_PARAMS)
    assert memory_splits > core_splits
    assert memory_splits >= sum(counts.values()) * 0.4
    # All split values lie within physical parameter ranges.
    space = common.training_space()
    for name, values in result.distribution.items():
        p = space[name]
        assert all(p.low <= v <= p.high for v in values), name
