"""Regenerates Table 5: the most significant regression-tree splits.

Paper shape: for mcf the earliest splits are memory-system parameters (L2
latency/size, dl1 latency, then ROB size / pipeline depth); for vortex the
splits involve L1 parameters (dl1 latency, icache size) alongside window
and L2 parameters.  Exact order is simulator-specific; the benchmark
asserts the memory-vs-core *character* of each program's splits.
"""

import pytest

from repro.experiments import common, table5_significant_splits as exp
from repro.experiments.report import emit
from repro.models.tree import RegressionTree

MEMORY_PARAMS = {"l2_lat", "l2_size_kb", "dl1_lat", "dl1_size_kb", "il1_size_kb"}


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_table5_significant_splits(result, benchmark):
    # Benchmark the regression-tree construction on the mcf sample.
    mcf = common.rbf_model("mcf", exp.SAMPLE_SIZE)
    benchmark(lambda: RegressionTree(mcf.unit_points, mcf.responses, p_min=1))

    emit("table5_significant_splits", exp.render(result))

    mcf_params = result.parameters("mcf")
    vortex_params = result.parameters("vortex")

    # mcf: the very first split — and most of the early ones — are
    # memory-system parameters.
    assert mcf_params[0] in {"l2_lat", "l2_size_kb", "dl1_lat"}
    assert sum(p in MEMORY_PARAMS for p in mcf_params[:5]) >= 4
    # vortex: L1-side parameters appear among the earliest splits.
    assert any(p in {"dl1_lat", "dl1_size_kb", "il1_size_kb"} for p in vortex_params[:4])
    # Both trees overlap substantially with the paper's split sets.
    assert result.overlap_with_paper("mcf") >= 0.5
    assert result.overlap_with_paper("vortex") >= 0.3
