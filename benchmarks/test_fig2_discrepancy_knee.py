"""Regenerates Figure 2: best L2-star discrepancy vs number of simulations.

Paper shape: monotonically improving space coverage with a knee (near 90)
past which additional samples barely improve the discrepancy.  Also prints
the Table 1 design space the samples cover.
"""

import pytest

from repro.experiments import common, fig2_discrepancy as exp
from repro.experiments.report import emit
from repro.sampling.lhs import latin_hypercube
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig2_discrepancy_knee(result, benchmark):
    space = common.training_space()
    rng = make_rng(0, "bench-lhs")
    benchmark(lambda: latin_hypercube(space, 90, rng))

    emit(
        "fig2_discrepancy_knee",
        space.describe() + "\n\n" + exp.render(result),
    )

    values = [d for _, d in result.curve]
    sizes = [s for s, _ in result.curve]
    # Overall decreasing coverage metric.
    assert values[0] > values[-1]
    # Near-monotone: each point no worse than 5% above its predecessor.
    assert all(b <= a * 1.05 for a, b in zip(values, values[1:]))
    # Knee lands in the paper's region (they chose ~90).
    assert 50 <= result.knee <= 130
    # Tapering: the last 50 samples improve less than the first 30 did.
    first_gain = values[0] - values[sizes.index(60)]
    last_gain = values[sizes.index(150)] - values[-1]
    assert first_gain > last_gain
