"""Regenerates Figure 7: linear vs RBF network predictive accuracy.

Paper shape: the RBF models beat the linear (main effects + two-factor
interactions, AIC-selected) models consistently across sample sizes, with
a multiple-x gap at n=200 (mcf: 6.5% vs 2.1%).
"""

import pytest

from repro.experiments import common, fig7_linear_vs_rbf as exp
from repro.experiments.report import emit
from repro.models.linear import LinearInteractionModel


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig7_linear_vs_rbf(result, benchmark):
    # Benchmark the baseline's fit (stepwise AIC selection).
    mcf = common.rbf_model("mcf", 90)
    benchmark.pedantic(
        lambda: LinearInteractionModel.fit(mcf.unit_points, mcf.responses),
        rounds=3,
        iterations=1,
    )

    emit("fig7_linear_vs_rbf", exp.render(result))

    for name, rows in result.series.items():
        # The RBF model wins at the largest sample size for every
        # benchmark, and at most sizes overall.
        _, lin_final, rbf_final = rows[-1]
        assert rbf_final < lin_final, name
        assert result.rbf_wins(name) >= len(rows) - 1, name
    # The non-linear advantage at n=200 is substantial for the
    # memory-bound benchmark (paper: ~3x for mcf).
    assert result.final_gap("mcf") > 1.5
