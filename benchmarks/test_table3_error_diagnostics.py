"""Regenerates Table 3: CPI error diagnostics for all eight benchmarks.

Paper shape: a few-percent mean error per benchmark (2.8% average), no
catastrophic worst case, and the FP benchmarks (equake, ammp) showing the
lowest maximum errors (their surfaces are the smoothest).
"""

import pytest

from repro.core.design_space import paper_test_space
from repro.experiments import common, table3_error_diagnostics as exp
from repro.experiments.report import emit


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_table3_error_diagnostics(result, benchmark):
    # Benchmark the deliverable operation: predicting all 50 test CPIs
    # from the fitted mcf model (the paper's "replace simulation" payoff).
    space = common.training_space()
    phys, _ = common.test_set("mcf")
    unit = space.encode(phys)
    model = common.rbf_model("mcf", result.sample_size).model
    benchmark(lambda: model.predict(unit))

    emit(
        "table3_error_diagnostics",
        paper_test_space().describe() + "\n\n" + exp.render(result),
    )

    # Headline accuracy: single-digit average error across benchmarks
    # (paper: 2.8%).
    assert result.average_mean_error < 6.0
    # Every individual benchmark is modeled usefully.
    assert all(r.mean < 10.0 for r in result.reports.values())
    # No catastrophic worst case (paper max: 17%).
    assert result.worst_max_error < 35.0
    # FP benchmarks have the smoothest surfaces: their max errors are below
    # the average max of the integer benchmarks.
    fp_max = max(result.reports[b].max for b in ("equake", "ammp"))
    int_benchmarks = [b for b in result.reports if b not in ("equake", "ammp")]
    int_avg_max = sum(result.reports[b].max for b in int_benchmarks) / len(int_benchmarks)
    assert fp_max < int_avg_max * 1.5
