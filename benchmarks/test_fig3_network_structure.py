"""Regenerates Figure 3: the RBF network structure (as actually trained).

The paper's figure is a schematic (inputs -> m RBFs -> linear output); the
checkable content is structural: the trained network must have exactly the
schematic's shape, with every quantity finite and the hidden layer far
smaller than the training sample.
"""

import numpy as np
import pytest

from repro.experiments import common, fig3_network as exp
from repro.experiments.report import emit


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig3_network_structure(result, benchmark):
    net = result.network
    unit_points = common.rbf_model(exp.BENCHMARK, exp.SAMPLE_SIZE).unit_points
    benchmark(lambda: net.hidden_responses(unit_points))

    emit("fig3_network_structure", exp.render(result))

    # Input layer width = the paper's 9 design parameters.
    assert result.inputs == 9
    # Hidden layer: non-trivial but far smaller than the sample (AICc).
    assert 1 <= result.hidden_units < exp.SAMPLE_SIZE / 2
    # All structural quantities finite; radii positive (Eq. 2 well-defined).
    assert np.all(np.isfinite(net.weights))
    assert np.all(net.radii > 0)
    assert np.all(np.isfinite(net.centers))
    # Hidden responses are Gaussian activations in (0, 1].
    h = net.hidden_responses(unit_points)
    assert h.min() >= 0.0 and h.max() <= 1.0 + 1e-12
