"""Regenerates Figure 6: predicted vs simulated trends (vortex).

Paper shape: the model's dashed lines closely mirror the simulated solid
lines over the icache-size x L2-latency grid, with the worst deviation in
the steep small-icache / high-latency corner.
"""

import numpy as np
import pytest

from repro.experiments import common, fig6_trend_prediction as exp
from repro.experiments.report import emit


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig6_trend_prediction(result, benchmark):
    # Benchmark the model side of the comparison: predicting the grid.
    space = common.training_space()
    model = common.rbf_model(exp.BENCHMARK, exp.SAMPLE_SIZE).model
    pts = []
    for yv in result.grid.y_values:
        for xv in result.grid.x_values:
            point = dict(exp.BASE_POINT)
            point["il1_size_kb"] = yv
            point["l2_lat"] = xv
            pts.append([point[n] for n in space.names])
    unit = space.encode(np.array(pts))
    benchmark(lambda: model.predict(unit))

    emit("fig6_trend_prediction", exp.render(result))

    # Predictions track the simulated trend directions.
    assert result.monotonic_agreement >= 0.75
    # And the magnitudes stay close (the paper's lines nearly overlap).
    assert result.max_trend_error < 30.0
    rel = np.abs(result.grid.predicted - result.grid.simulated) / result.grid.simulated
    assert rel.mean() < 0.08
