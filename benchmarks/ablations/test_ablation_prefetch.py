"""Substrate ablation: hardware prefetching reshapes the design space.

The paper's machine has no prefetchers; a natural what-if is how much of
the memory-parameter sensitivity prefetching would absorb.  This
experiment simulates the streaming FP benchmark (equake) across the L2
latency range with and without the stride prefetcher.

Expected shape: prefetching lowers CPI for the streaming workload and
*flattens* its L2-latency response (latency that is prefetched ahead of
use stops mattering), while the pointer-chasing workload (mcf) barely
benefits — dependent loads cannot be prefetched by a stride engine.
"""

import numpy as np
import pytest

from repro.experiments.report import emit
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import simulate
from repro.util.tables import format_table
from repro.workloads.spec2000 import get_trace

L2_LATENCIES = (5, 10, 15, 20)


def _sweep(benchmark, **flags):
    trace = get_trace(benchmark)
    return [
        simulate(ProcessorConfig(l2_lat=lat, **flags), trace).cpi
        for lat in L2_LATENCIES
    ]


@pytest.fixture(scope="module")
def results():
    out = {}
    for bench in ("equake", "mcf"):
        out[bench] = {
            "base": _sweep(bench),
            "prefetch": _sweep(bench, enable_stride_prefetch=True,
                               prefetch_degree=4,
                               enable_nextline_prefetch=True),
        }
    return out


def test_ablation_prefetch(results, benchmark):
    trace = get_trace("equake")
    config = ProcessorConfig(enable_stride_prefetch=True)
    benchmark.pedantic(lambda: simulate(config, trace), rounds=3, iterations=1)

    rows = []
    for bench, sweeps in results.items():
        for name, cpis in sweeps.items():
            rows.append([f"{bench}/{name}"] + [round(c, 3) for c in cpis])
    emit(
        "ablation_prefetch",
        format_table(
            ["config"] + [f"l2_lat={l}" for l in L2_LATENCIES], rows,
            title="Stride+next-line prefetching vs L2 latency",
        ),
    )

    eq = results["equake"]
    mcf = results["mcf"]
    # Prefetching helps both workloads' strided components at every latency.
    assert all(p < b for p, b in zip(eq["prefetch"], eq["base"]))
    assert all(p < b for p, b in zip(mcf["prefetch"], mcf["base"]))
    # ... and flattens the streaming workload's latency response.
    eq_base_slope = eq["base"][-1] - eq["base"][0]
    eq_pf_slope = eq["prefetch"][-1] - eq["prefetch"][0]
    assert eq_pf_slope < eq_base_slope
    # But a stride engine cannot fix pointer chasing: mcf stays
    # memory-bound, far above the streaming workload's CPI.
    assert min(mcf["prefetch"]) > max(eq["prefetch"])
    mcf_gain = np.mean([(b - p) / b for b, p in zip(mcf["base"], mcf["prefetch"])])
    assert mcf_gain < 0.15
