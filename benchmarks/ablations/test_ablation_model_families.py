"""Ablation: model families from the paper's related work.

The paper compares against its own linear baseline (Fig. 7) and discusses
Lee & Brooks' regression splines and Ipek et al.'s neural networks as
parallel work.  This experiment puts all four families on the identical
sample/test data for one memory-bound and one L1-bound benchmark.

Expected shape: the non-linear families (RBF, spline, MLP) beat the linear
model; the RBF network is competitive with the other non-linear families
at a fraction of their tuning surface.
"""

import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.linear import LinearInteractionModel
from repro.models.mlp import MLPModel
from repro.models.spline import SplineModel
from repro.util.tables import format_table

BENCHMARKS = ("mcf", "vortex")
SAMPLE_SIZE = 110


def _family_errors(benchmark):
    space = common.training_space()
    base = common.rbf_model(benchmark, SAMPLE_SIZE)
    test_phys, test_cpi = common.test_set(benchmark)
    unit_test = space.encode(test_phys)
    x, y = base.unit_points, base.responses

    out = {"RBF network": base.errors}
    linear = LinearInteractionModel.fit(x, y)
    out["linear+interactions"] = prediction_errors(test_cpi, linear.predict(unit_test))
    spline = SplineModel.fit(x, y, max_terms=25)
    out["regression spline"] = prediction_errors(test_cpi, spline.predict(unit_test))
    mlp = MLPModel.fit(x, y, hidden=(16,), epochs=4000, seed=1)
    out["neural network"] = prediction_errors(test_cpi, mlp.predict(unit_test))
    return out


@pytest.fixture(scope="module")
def results():
    return {bench: _family_errors(bench) for bench in BENCHMARKS}


def test_ablation_model_families(results, benchmark):
    base = common.rbf_model("mcf", SAMPLE_SIZE)
    benchmark.pedantic(
        lambda: MLPModel.fit(base.unit_points, base.responses, hidden=(8,),
                             epochs=500, seed=2),
        rounds=3,
        iterations=1,
    )

    lines = []
    for bench, families in results.items():
        rows = [
            (name, round(err.mean, 2), round(err.max, 1))
            for name, err in families.items()
        ]
        lines.append(format_table(
            ["family", "mean err %", "max err %"], rows,
            title=f"Model families ({bench}, n={SAMPLE_SIZE})",
        ))
    emit("ablation_model_families", "\n\n".join(lines))

    for bench, families in results.items():
        rbf = families["RBF network"].mean
        linear = families["linear+interactions"].mean
        # Non-linear beats linear (the paper's core comparison).
        assert rbf < linear, bench
        # The RBF family sits in the same accuracy class as the other
        # non-linear families (on the smoothest surfaces the splines can
        # edge it out; nothing non-linear is multiples better).
        best_other = min(families["regression spline"].mean,
                         families["neural network"].mean)
        assert rbf < best_other * 5.0, bench
        assert rbf < 3.0, bench
