"""Substrate ablation: branch-predictor families across workloads.

The paper fixes the predictor and varies nine other parameters; this
ablation asks how much the fixed choice matters.  Four direction-predictor
families (bimodal, gshare, tournament, perceptron) run on a branchy and a
predictable workload.

Expected shape: on the branchy workload the choice visibly moves both
misprediction rate and CPI; the tournament hybrid is never meaningfully
worse than its components; the predictable FP workload barely cares.
"""

import pytest

from repro.experiments.report import emit
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import simulate
from repro.util.tables import format_table
from repro.workloads.spec2000 import get_trace

KINDS = ("bimodal", "gshare", "tournament", "perceptron")
WORKLOADS = ("crafty", "equake")


@pytest.fixture(scope="module")
def results():
    out = {}
    for bench in WORKLOADS:
        trace = get_trace(bench)
        out[bench] = {
            kind: simulate(ProcessorConfig(bpred_kind=kind), trace)
            for kind in KINDS
        }
    return out


def test_ablation_predictors(results, benchmark):
    trace = get_trace("crafty", 8192)
    benchmark.pedantic(
        lambda: simulate(ProcessorConfig(bpred_kind="perceptron"), trace),
        rounds=3,
        iterations=1,
    )

    rows = []
    for bench, by_kind in results.items():
        for kind, res in by_kind.items():
            rows.append((f"{bench}/{kind}",
                         f"{res.branch_mispredict_rate * 100:.1f}%",
                         round(res.cpi, 3)))
    emit(
        "ablation_predictors",
        format_table(["config", "mispredict rate", "CPI"], rows,
                     title="Branch-predictor families"),
    )

    crafty = results["crafty"]
    equake = results["equake"]
    # On the branchy workload, predictor choice spans a real accuracy range.
    rates = [r.branch_mispredict_rate for r in crafty.values()]
    assert max(rates) - min(rates) > 0.02
    # The tournament hybrid doesn't lose meaningfully to its components.
    assert crafty["tournament"].branch_mispredict_rate <= min(
        crafty["bimodal"].branch_mispredict_rate,
        crafty["gshare"].branch_mispredict_rate,
    ) + 0.03
    # Predictable FP workload: the choice barely moves CPI.
    eq_cpis = [r.cpi for r in equake.values()]
    assert (max(eq_cpis) - min(eq_cpis)) / min(eq_cpis) < 0.08
    # Better prediction -> lower CPI on the branchy workload (rank check).
    best = min(crafty, key=lambda k: crafty[k].branch_mispredict_rate)
    worst = max(crafty, key=lambda k: crafty[k].branch_mispredict_rate)
    assert crafty[best].cpi < crafty[worst].cpi
