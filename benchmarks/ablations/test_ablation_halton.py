"""Ablation: scrambled Halton sequences vs the paper's best-of-N LHS.

A deterministic low-discrepancy sequence needs no generate-and-test loop;
does it match the paper's discrepancy-optimised latin hypercubes?  Both
strategies get the same budget on mcf and feed the same RBF construction.
"""

import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.rbf import search_rbf_model
from repro.sampling.discrepancy import centered_l2_discrepancy
from repro.sampling.halton import halton
from repro.sampling.optimizer import best_lhs_sample
from repro.util.tables import format_table

BENCHMARK = "mcf"
BUDGET = 70


def _fit_and_score(unit_points):
    space = common.training_space()
    runner = common.runner(BENCHMARK)
    phys = space.decode(unit_points, num_levels=BUDGET)
    unit = space.encode(phys)
    responses = runner.cpi(phys)
    search = search_rbf_model(
        unit, responses, p_min_grid=(1, 2), alpha_grid=(3.0, 4.0, 6.0, 8.0)
    )
    test_phys, test_cpi = common.test_set(BENCHMARK)
    pred = search.network.predict(space.encode(test_phys))
    return prediction_errors(test_cpi, pred), centered_l2_discrepancy(unit)


@pytest.fixture(scope="module")
def results():
    space = common.training_space()
    return {
        "best-of-64 LHS": _fit_and_score(
            best_lhs_sample(space, BUDGET, seed=11, candidates=64).points
        ),
        "scrambled Halton": _fit_and_score(
            halton(BUDGET, space.dimension, scramble=True, seed=11)
        ),
        "plain Halton": _fit_and_score(
            halton(BUDGET, space.dimension, scramble=False)
        ),
    }


def test_ablation_halton(results, benchmark):
    space = common.training_space()
    benchmark(lambda: halton(BUDGET, space.dimension, scramble=True, seed=12))

    rows = [
        (name, round(err.mean, 2), round(err.max, 1), round(disc, 4))
        for name, (err, disc) in results.items()
    ]
    emit(
        "ablation_halton",
        format_table(
            ["strategy", "mean err %", "max err %", "discrepancy (snapped)"],
            rows,
            title=f"Halton vs LHS ({BENCHMARK}, budget {BUDGET})",
        ),
    )

    # All quasi-random strategies produce usable models.
    assert all(err.mean < 8.0 for err, _ in results.values())
    # Scrambling repairs plain Halton's high-dimension artifacts.
    assert results["scrambled Halton"][0].mean <= results["plain Halton"][0].mean * 1.5
    # The paper's LHS remains in the same accuracy class as the Halton
    # alternative.  (Measured finding of this reproduction: scrambled
    # Halton is actually *competitive or better* at this budget — a cheap
    # improvement over generate-and-test LHS the paper did not explore.)
    assert results["best-of-64 LHS"][0].mean <= results["scrambled Halton"][0].mean * 5.0
