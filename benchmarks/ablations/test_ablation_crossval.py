"""Ablation: free accuracy estimates vs the paper's 50 paid test simulations.

The paper validates each model with 50 extra simulations.  Cross-validation
estimates accuracy from the training sample alone; if the estimate tracks
the paid-for number, the designer saves a quarter of the Table 3 simulation
budget.  Compares 5-fold CV and exact leave-one-out (fixed RBF basis)
against the held-out truth at two sample sizes.
"""

import pytest

from repro.core.crossval import kfold_error, loo_rbf_error
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.rbf import search_rbf_model
from repro.util.tables import format_table

BENCHMARK = "twolf"
SIZES = (50, 110)


def _cv_fit(points, responses):
    search = search_rbf_model(
        points, responses, p_min_grid=(1, 2), alpha_grid=(4.0, 6.0, 8.0)
    )
    return search.network.predict


@pytest.fixture(scope="module")
def results():
    rows = []
    for size in SIZES:
        result = common.rbf_model(BENCHMARK, size)
        held_out = result.errors
        cv = kfold_error(result.unit_points, result.responses, _cv_fit,
                         folds=5, seed=1)
        loo, _ = loo_rbf_error(result.unit_points, result.responses, result.model)
        rows.append((size, held_out, cv, loo))
    return rows


def test_ablation_crossval(results, benchmark):
    result = common.rbf_model(BENCHMARK, SIZES[0])
    benchmark(
        lambda: loo_rbf_error(result.unit_points, result.responses, result.model)
    )

    table_rows = [
        (size, round(held.mean, 2), round(cv.mean, 2), round(loo.mean, 2))
        for size, held, cv, loo in results
    ]
    emit(
        "ablation_crossval",
        format_table(
            ["sample size", "held-out mean %", "5-fold CV %", "LOO (fixed basis) %"],
            table_rows,
            title=f"Free vs paid accuracy estimates ({BENCHMARK})",
        ),
    )

    for size, held, cv, loo in results:
        # Both free estimates land within a small factor of the paid one
        # (CV pessimistic is fine; wildly optimistic is not).
        assert cv.mean >= held.mean * 0.3, size
        assert cv.mean <= max(held.mean * 8.0, held.mean + 4.0), size
        assert loo.mean >= held.mean * 0.2, size
