"""Related-work comparison: statistical simulation vs model-based prediction.

The paper's related work positions statistical simulation (Eeckhout et
al., Oskin et al.) as the other simulation-cost-reduction technique: it
converges quickly but "its accuracy has not been demonstrated across the
entire design space".  This experiment runs both techniques over the same
test configurations:

* the RBF model (built from 90 full simulations; per-query cost ~ a dot
  product);
* statistical simulation (one profiling pass; per-query cost one reduced
  6k-instruction simulation).

Expected shape: both track the CPI landscape; the model is substantially
more accurate per query, while statistical simulation needs no design-time
sample at all — the cost/accuracy trade-off the paper navigates.
"""

import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.statsim import StatisticalSimulator
from repro.util.tables import format_table
from repro.workloads.spec2000 import DEFAULT_TRACE_LENGTH, get_trace

BENCHMARK = "twolf"
SAMPLE_SIZE = 90
SYNTH_LENGTH = 6000


@pytest.fixture(scope="module")
def results():
    test_phys, test_cpi = common.test_set(BENCHMARK)
    model_result = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    model_err = model_result.errors

    estimator = StatisticalSimulator(
        get_trace(BENCHMARK), synthetic_length=SYNTH_LENGTH, seed=17,
        space=common.training_space(),
    )
    stat_pred = estimator.cpi(test_phys)
    stat_err = prediction_errors(test_cpi, stat_pred)
    return model_err, stat_err


def test_ablation_statsim(results, benchmark):
    model_err, stat_err = results

    estimator = StatisticalSimulator(
        get_trace(BENCHMARK), synthetic_length=2000, seed=18,
        space=common.training_space(),
    )
    from repro.simulator.config import ProcessorConfig

    benchmark.pedantic(
        lambda: estimator.cpi_config(ProcessorConfig()), rounds=3, iterations=1
    )

    rows = [
        ("RBF model (90 full sims)", round(model_err.mean, 2), round(model_err.max, 1),
         "dot product"),
        (f"statistical sim ({SYNTH_LENGTH} instr)", round(stat_err.mean, 2),
         round(stat_err.max, 1), f"1 reduced sim ({SYNTH_LENGTH}/{DEFAULT_TRACE_LENGTH})"),
    ]
    emit(
        "ablation_statsim",
        format_table(
            ["technique", "mean err %", "max err %", "per-query cost"],
            rows,
            title=f"Statistical simulation vs model-based prediction ({BENCHMARK})",
        ),
    )

    # Statistical simulation lands in the right CPI class and tracks
    # trends, but with the tens-of-percent absolute error the paper's
    # related-work section criticises ("accuracy has not been demonstrated
    # across the entire design space").
    assert stat_err.mean < 60.0
    # The paper's model is clearly more accurate per query.
    assert model_err.mean < stat_err.mean
