"""Extension: RBF models for the power metric (paper Sec. 6).

The conclusion claims the methodology transfers to other metrics "such as
power consumption".  This experiment models the simulator's activity-based
power proxy for mcf with the identical BuildRBFmodel machinery and checks
it reaches CPI-class accuracy.
"""

import pytest

from repro.core.procedure import BuildRBFModel
from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.util.tables import format_table

BENCHMARK = "mcf"
SAMPLE_SIZE = 90


@pytest.fixture(scope="module")
def results():
    space = common.training_space()
    runner = common.runner(BENCHMARK)
    builder = BuildRBFModel(
        space, runner.power, seed=common.EXPERIMENT_SEED,
        p_min_grid=(1, 2), alpha_grid=(3.0, 4.0, 6.0, 8.0),
    )
    test_phys, _ = common.test_set(BENCHMARK)
    test_power = runner.power(test_phys)
    result = builder.build(SAMPLE_SIZE, test_phys, test_power)
    return result, test_power


def test_ablation_power_model(results, benchmark):
    result, test_power = results
    space = common.training_space()
    test_phys, _ = common.test_set(BENCHMARK)
    unit_test = space.encode(test_phys)
    benchmark(lambda: result.model.predict(unit_test))

    cpi_result = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    rows = [
        ("power", round(result.errors.mean, 2), round(result.errors.max, 1),
         result.info.num_centers),
        ("CPI", round(cpi_result.errors.mean, 2), round(cpi_result.errors.max, 1),
         cpi_result.info.num_centers),
    ]
    emit(
        "ablation_power_model",
        format_table(
            ["metric", "mean err %", "max err %", "centers"],
            rows,
            title=f"Power-model extension ({BENCHMARK}, n={SAMPLE_SIZE})",
        ),
    )

    # The methodology transfers: power models reach single-digit error.
    assert result.errors.mean < 8.0
    assert result.errors.max < 40.0
