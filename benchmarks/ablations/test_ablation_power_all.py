"""Extension: the full Table 3 analogue for the power metric.

The paper's conclusion claims the methodology transfers to power.  The
single-benchmark power experiment (test_ablation_power_model) checks
feasibility; this one reproduces the *entire* Table 3 protocol — all eight
benchmarks, sample size 200 models, 50-point validation — for the power
response.  Power values come from the same cached simulations as the CPI
study, so this costs model fitting only.
"""

import pytest

from repro.core.procedure import BuildRBFModel
from repro.experiments import common
from repro.experiments.report import emit
from repro.util.tables import format_table
from repro.workloads.spec2000 import benchmark_names, spec_label

SAMPLE_SIZE = 200


@pytest.fixture(scope="module")
def results():
    space = common.training_space()
    reports = {}
    for bench in benchmark_names():
        runner = common.runner(bench)
        builder = BuildRBFModel(
            space, runner.power, seed=common.EXPERIMENT_SEED,
            p_min_grid=common.P_MIN_GRID, alpha_grid=common.ALPHA_GRID,
        )
        test_phys, _ = common.test_set(bench)
        test_power = runner.power(test_phys)
        result = builder.build(SAMPLE_SIZE, test_phys, test_power)
        reports[bench] = result.errors
    return reports


def test_ablation_power_all(results, benchmark):
    space = common.training_space()
    mcf = common.rbf_model("mcf", SAMPLE_SIZE)
    benchmark(lambda: mcf.model.predict(mcf.unit_points))

    rows = [
        (spec_label(b), round(r.mean, 2), round(r.max, 1), round(r.std, 2))
        for b, r in results.items()
    ]
    avg = sum(r.mean for r in results.values()) / len(results)
    rows.append(("Average", round(avg, 2), "", ""))
    emit(
        "ablation_power_all",
        format_table(
            ["Benchmark", "mean", "max", "std"],
            rows,
            title=f"Power-model error diagnostics (%) at sample size {SAMPLE_SIZE}",
        ),
    )

    # The paper's transfer claim, quantified: power models reach the same
    # accuracy class as the CPI models for every benchmark.
    assert avg < 5.0
    assert all(r.mean < 8.0 for r in results.values())
    assert all(r.max < 30.0 for r in results.values())
