"""Related-work comparison: Plackett-Burman screening vs model-based analysis.

Yi et al. (HPCA 2005) rank parameter significance with foldover PB designs
— 24 simulations for a 9-parameter space — under the assumption that
interactions are negligible.  The paper argues interactions *are*
significant.  This experiment runs both analyses on the same benchmark:

* PB foldover main effects (24 simulations at space corners);
* Sobol indices computed from the RBF model.

Expected shape: the two agree on which parameters top the ranking (PB is a
legitimate screen), but the Sobol analysis reveals a non-trivial
interaction share that PB structurally cannot see.
"""

import numpy as np
import pytest

from repro.analysis.anova import interaction_share, rank_by_total, sobol_indices
from repro.experiments import common
from repro.experiments.report import emit
from repro.sampling.plackett_burman import foldover, pb_to_unit, plackett_burman
from repro.util.tables import format_table

BENCHMARK = "mcf"
SAMPLE_SIZE = 110


@pytest.fixture(scope="module")
def results():
    space = common.training_space()
    runner = common.runner(BENCHMARK)

    # Plackett-Burman foldover at the space corners.
    design = foldover(plackett_burman(space.dimension))
    unit = pb_to_unit(design)
    phys = space.decode(unit)
    cpi = runner.cpi(phys)
    pb_effects = {
        space.names[k]: float(np.mean(cpi[design[:, k] == 1])
                              - np.mean(cpi[design[:, k] == -1]))
        for k in range(space.dimension)
    }

    # Model-based Sobol indices.
    model = common.rbf_model(BENCHMARK, SAMPLE_SIZE).model
    indices = sobol_indices(model, space, samples=8192, seed=3)
    return pb_effects, indices, len(design)


def test_ablation_pb_screening(results, benchmark):
    pb_effects, indices, pb_runs = results
    space = common.training_space()
    model = common.rbf_model(BENCHMARK, SAMPLE_SIZE).model
    benchmark(lambda: sobol_indices(model, space, samples=1024, seed=4))

    ranked = rank_by_total(indices)
    rows = [
        (ix.parameter, round(pb_effects[ix.parameter], 3),
         round(ix.first_order, 3), round(ix.total, 3), round(ix.interaction, 3))
        for ix in ranked
    ]
    share = interaction_share(indices)
    emit(
        "ablation_pb_screening",
        format_table(
            ["parameter", f"PB effect ({pb_runs} runs)", "Sobol 1st", "Sobol total",
             "interaction"],
            rows,
            title=f"PB screening vs model-based sensitivity ({BENCHMARK})",
        ) + f"\ninteraction share of variance: {share * 100:.1f}% "
        "(PB assumes ~0; the paper argues it is significant)",
    )

    pb_rank = sorted(pb_effects, key=lambda k: -abs(pb_effects[k]))
    sobol_rank = [ix.parameter for ix in ranked]
    # The two analyses agree on the top of the ranking...
    assert len(set(pb_rank[:3]) & set(sobol_rank[:3])) >= 2
    # ...but the model exposes interaction variance PB cannot represent.
    assert share > 0.02
    assert any(ix.interaction > 0.01 for ix in ranked)
