"""Ablation: sampling strategy (random vs LHS vs discrepancy-optimised LHS).

The paper's claim for steps 2 of BuildRBFmodel is that careful,
space-filling selection of design points matters.  This ablation holds the
budget fixed (60 points, mcf) and swaps the sampling strategy.
"""

import numpy as np
import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.rbf import search_rbf_model
from repro.sampling.discrepancy import centered_l2_discrepancy
from repro.sampling.lhs import latin_hypercube
from repro.sampling.optimizer import best_lhs_sample
from repro.util.rng import make_rng
from repro.util.tables import format_table

BENCHMARK = "mcf"
BUDGET = 60


def _fit_and_score(unit_points):
    space = common.training_space()
    runner = common.runner(BENCHMARK)
    phys = space.decode(unit_points, num_levels=BUDGET)
    unit = space.encode(phys)
    responses = runner.cpi(phys)
    search = search_rbf_model(
        unit, responses, p_min_grid=(1, 2), alpha_grid=(3.0, 4.0, 6.0, 8.0)
    )
    test_phys, test_cpi = common.test_set(BENCHMARK)
    pred = search.network.predict(space.encode(test_phys))
    # Discrepancy is measured on the level-snapped coordinates actually
    # simulated, so continuous (random) and grid-snapped (LHS) strategies
    # are compared like for like.
    return prediction_errors(test_cpi, pred), centered_l2_discrepancy(unit)


@pytest.fixture(scope="module")
def results():
    space = common.training_space()
    strategies = {}
    strategies["random"] = _fit_and_score(make_rng(9, "ablation-random").random((BUDGET, 9)))
    strategies["single LHS"] = _fit_and_score(
        latin_hypercube(space, BUDGET, make_rng(9, "ablation-lhs"))
    )
    strategies["best-of-64 LHS"] = _fit_and_score(
        best_lhs_sample(space, BUDGET, seed=9, candidates=64).points
    )
    return strategies


def test_ablation_sampling(results, benchmark):
    space = common.training_space()
    benchmark(lambda: best_lhs_sample(space, BUDGET, seed=10, candidates=16))

    rows = [
        (name, round(err.mean, 2), round(err.max, 1), round(disc, 4))
        for name, (err, disc) in results.items()
    ]
    emit(
        "ablation_sampling",
        format_table(
            ["strategy", "mean err %", "max err %", "discrepancy"],
            rows,
            title=f"Sampling ablation ({BENCHMARK}, budget {BUDGET})",
        ),
    )

    # Discrepancy ordering is guaranteed by construction.
    assert results["best-of-64 LHS"][1] < results["random"][1]
    assert results["single LHS"][1] < results["random"][1] * 1.1
    # Space-filling sampling should not lose meaningfully to plain random
    # sampling.  (On smooth responses the strategies can tie within noise,
    # so the tolerance allows a fraction of a percentage point.)
    assert (results["best-of-64 LHS"][0].mean
            <= results["random"][0].mean * 1.5 + 0.3)
