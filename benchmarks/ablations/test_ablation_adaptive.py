"""Ablation: adaptive sampling vs one-shot LHS (the paper's future work).

Section 6 suggests adaptive sampling could reduce simulation cost.  At an
equal budget on mcf, compare a one-shot discrepancy-optimised LHS model
with an adaptively grown sample.
"""

import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.rbf import search_rbf_model
from repro.sampling.adaptive import adaptive_sample
from repro.util.tables import format_table

BENCHMARK = "mcf"
BUDGET = 60


def _model_builder(points, responses):
    search = search_rbf_model(
        points, responses, p_min_grid=(1, 2), alpha_grid=(4.0, 6.0, 8.0)
    )
    return search.network.predict


@pytest.fixture(scope="module")
def results():
    space = common.training_space()
    runner = common.runner(BENCHMARK)
    test_phys, test_cpi = common.test_set(BENCHMARK)
    unit_test = space.encode(test_phys)

    def response(unit_points):
        return runner.cpi(space.decode(unit_points, num_levels=BUDGET))

    adaptive = adaptive_sample(
        space, response, _model_builder, budget=BUDGET,
        seed=31, initial=30, batch=10, pool=256,
    )
    adaptive_model = _model_builder(adaptive.points, adaptive.responses)
    adaptive_err = prediction_errors(test_cpi, adaptive_model(unit_test))

    oneshot = common.rbf_model(BENCHMARK, BUDGET + 10)  # 70 is the nearest size
    return {"adaptive (60)": adaptive_err, "one-shot LHS (70)": oneshot.errors}


def test_ablation_adaptive(results, benchmark):
    space = common.training_space()
    runner = common.runner(BENCHMARK)

    def response(unit_points):
        return runner.cpi(space.decode(unit_points, num_levels=40))

    benchmark.pedantic(
        lambda: adaptive_sample(space, response, _model_builder, budget=40,
                                seed=32, initial=30, batch=10, pool=64),
        rounds=1,
        iterations=1,
    )

    rows = [(name, round(err.mean, 2), round(err.max, 1)) for name, err in results.items()]
    emit(
        "ablation_adaptive",
        format_table(["strategy", "mean err %", "max err %"], rows,
                     title=f"Adaptive sampling ablation ({BENCHMARK})"),
    )

    # Adaptive sampling lands in the same accuracy class as the one-shot
    # design at a slightly smaller budget.  (Measured finding: this naive
    # disagreement-driven scheme does NOT beat a good one-shot LHS here —
    # the paper's future-work idea needs a smarter acquisition rule.)
    assert results["adaptive (60)"].mean < results["one-shot LHS (70)"].mean * 4.0
    assert results["adaptive (60)"].mean < 10.0
