"""Ablation: sensitivity to the method parameters p_min and alpha.

The paper tunes (p_min, alpha) per benchmark by AICc (Sec. 2.6, Table 4).
This ablation maps test accuracy over the grid, verifying that (a) the
response to alpha is non-trivial — too-narrow radii underfit between
samples — and (b) the AICc-chosen setting sits near the accuracy optimum.
"""

import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.rbf import build_rbf_from_tree
from repro.models.tree import RegressionTree
from repro.util.tables import format_table

BENCHMARK = "mcf"
SAMPLE_SIZE = 90
ALPHAS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0)
P_MINS = (1, 2, 4)


@pytest.fixture(scope="module")
def grid_errors():
    base = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    space = common.training_space()
    test_phys, test_cpi = common.test_set(BENCHMARK)
    unit_test = space.encode(test_phys)
    errors = {}
    for p_min in P_MINS:
        tree = RegressionTree(base.unit_points, base.responses, p_min=p_min)
        for alpha in ALPHAS:
            net, _ = build_rbf_from_tree(
                base.unit_points, base.responses, p_min=p_min, alpha=alpha, tree=tree
            )
            err = prediction_errors(test_cpi, net.predict(unit_test))
            errors[(p_min, alpha)] = err.mean
    return errors


def test_ablation_alpha_pmin(grid_errors, benchmark):
    base = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    benchmark.pedantic(
        lambda: build_rbf_from_tree(base.unit_points, base.responses,
                                    p_min=1, alpha=6.0),
        rounds=3,
        iterations=1,
    )

    rows = [
        [f"p_min={p}"] + [round(grid_errors[(p, a)], 2) for a in ALPHAS]
        for p in P_MINS
    ]
    emit(
        "ablation_alpha_pmin",
        format_table(
            ["mean err %"] + [f"a={a}" for a in ALPHAS],
            rows,
            title=f"(p_min, alpha) sensitivity ({BENCHMARK}, n={SAMPLE_SIZE})",
        ),
    )

    chosen = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    # Tiny radii underfit: alpha = 0.5 is clearly worse than the best.
    best = min(grid_errors.values())
    worst_small_alpha = min(grid_errors[(p, 0.5)] for p in P_MINS)
    assert worst_small_alpha > best * 1.5
    # The AICc-chosen configuration is close to the grid optimum.
    assert chosen.errors.mean <= best * 1.8
