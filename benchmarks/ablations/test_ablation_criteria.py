"""Ablation: model selection criterion (AICc vs AIC vs BIC).

The paper adopts corrected AIC for center selection (Eq. 9).  This
ablation fits the same mcf sample under each criterion and compares
accuracy and model size.
"""

import pytest

from repro.core.validation import prediction_errors
from repro.experiments import common
from repro.experiments.report import emit
from repro.models.rbf import search_rbf_model
from repro.util.tables import format_table

BENCHMARK = "mcf"
SAMPLE_SIZE = 90


@pytest.fixture(scope="module")
def results():
    base = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    space = common.training_space()
    test_phys, test_cpi = common.test_set(BENCHMARK)
    unit_test = space.encode(test_phys)
    out = {}
    for criterion in ("aicc", "aic", "bic"):
        search = search_rbf_model(
            base.unit_points, base.responses,
            p_min_grid=(1, 2), alpha_grid=(3.0, 4.0, 6.0, 8.0),
            criterion=criterion,
        )
        err = prediction_errors(test_cpi, search.network.predict(unit_test))
        out[criterion] = (err, search.info.num_centers)
    return out


def test_ablation_criteria(results, benchmark):
    base = common.rbf_model(BENCHMARK, SAMPLE_SIZE)
    benchmark.pedantic(
        lambda: search_rbf_model(
            base.unit_points, base.responses,
            p_min_grid=(1,), alpha_grid=(4.0, 8.0), criterion="bic",
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        (name, round(err.mean, 2), round(err.max, 1), centers)
        for name, (err, centers) in results.items()
    ]
    emit(
        "ablation_criteria",
        format_table(
            ["criterion", "mean err %", "max err %", "centers"],
            rows,
            title=f"Selection-criterion ablation ({BENCHMARK}, n={SAMPLE_SIZE})",
        ),
    )

    # The paper's criterion produces a usable model...
    assert results["aicc"][0].mean < 10.0
    # ...while uncorrected AIC under-penalises complexity on small samples
    # (the reason the paper uses the corrected form): it always selects at
    # least as many centers, and can overfit badly.
    assert results["aic"][1] >= results["aicc"][1]
    # BIC penalises complexity hardest: never more centers than AIC.
    assert results["bic"][1] <= results["aic"][1]
    # The paper's choice is competitive with the best alternative.
    best = min(err.mean for err, _ in results.values())
    assert results["aicc"][0].mean <= best * 1.5
