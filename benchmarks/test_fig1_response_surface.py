"""Regenerates Figure 1: the CPI response surface (vortex).

Paper shape: CPI rises with L2 latency and falls with icache size, with
*curvature* — the latency penalty is much steeper when the icache is small.
"""

import numpy as np
import pytest

from repro.experiments import common, fig1_response_surface as exp
from repro.experiments.report import emit


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_fig1_response_surface(result, benchmark):
    # Benchmark the simulator evaluation of one surface point.
    space = common.training_space()
    point = dict(exp.BASE_POINT)
    pts = np.array([[point[n] for n in space.names]])
    runner = common.runner(exp.BENCHMARK)
    benchmark(lambda: runner.metric(pts, "cpi"))

    emit("fig1_response_surface", exp.render(result))

    sim = result.grid.simulated
    # CPI increases with L2 latency at every icache size.
    assert np.all(np.diff(sim, axis=1) > -1e-9)
    # CPI decreases (weakly) with icache size at every latency.
    assert np.all(np.diff(sim, axis=0) < 1e-9)
    # The interaction that motivates non-linear models: latency hurts
    # more with a small icache.
    assert result.interaction_ratio > 1.2
