"""Regenerates Table 4: best p_min / alpha / #centers vs sample size (mcf).

Paper shape: small p_min (typically 1), radius scale alpha well above 1
(RBFs influence neighbouring regions), and center counts well below half
the sample size, growing with it.
"""

import pytest

from repro.experiments import common, table4_rbf_diagnostics as exp
from repro.experiments.report import emit


@pytest.fixture(scope="module")
def result():
    return exp.run()


def test_table4_rbf_diagnostics(result, benchmark):
    # Benchmark the (p_min, alpha) selection at a small sample size.
    small = common.rbf_model("mcf", 30)
    from repro.models.rbf import search_rbf_model

    benchmark.pedantic(
        lambda: search_rbf_model(
            small.unit_points, small.responses,
            p_min_grid=(1, 2), alpha_grid=(4.0, 8.0),
        ),
        rounds=3,
        iterations=1,
    )

    emit("table4_rbf_diagnostics", exp.render(result))

    infos = [info for _, info in result.rows]
    sizes = [size for size, _ in result.rows]
    # Paper: best p_min is small (typically 1).
    assert all(info.p_min <= 3 for info in infos)
    # Radii reach beyond their own tree region (alpha > 1).
    assert all(info.alpha > 1.0 for info in infos)
    # Centers stay well below half the sample points.
    assert result.centers_below_half()
    # Model capacity grows with the sample.
    assert infos[-1].num_centers > infos[0].num_centers
