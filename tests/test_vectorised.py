"""Vectorised ≡ scalar equivalence suite.

The vectorisation contract (docs/performance.md): every batched hot path
must be *bitwise-identical* to its scalar oracle — same hits, same
victims, same latencies, same final state — so that CPI numbers, bench
work-metadata hashes and experiment goldens are untouched by speed work.
These tests pin that contract with property-style comparisons against
per-element references, plus a literal bitwise CPI pin across all eight
SPEC profiles.
"""

import numpy as np
import pytest

from repro.simulator.cache import Cache
from repro.simulator.config import ProcessorConfig
from repro.simulator.hierarchy import MemoryHierarchy
from repro.simulator.tlb import TLB

# ---------------------------------------------------------------------------
# Cache.access_batch vs scalar Cache.access
# ---------------------------------------------------------------------------


def _scalar_cache_hits(cache, addrs):
    return np.array([cache.access(int(a)) for a in addrs])


CACHE_GEOMETRIES = [
    # (size_kb, line_size, assoc) — direct-mapped, single-set, typical L1/L2
    (1, 64, 1),
    (1, 64, 16),
    (8, 64, 2),
    (32, 64, 4),
    (256, 128, 8),
]


class TestCacheBatch:
    @pytest.mark.parametrize("size_kb,line,assoc", CACHE_GEOMETRIES)
    def test_matches_scalar_on_random_stream(self, size_kb, line, assoc):
        rng = np.random.default_rng(hash((size_kb, line, assoc)) % (2**32))
        # Working set around 2x capacity: plenty of hits, misses, evictions.
        lines = 2 * (size_kb * 1024 // line)
        addrs = rng.integers(0, lines, size=5000) * line
        a = Cache(size_kb, line, assoc, "a")
        b = Cache(size_kb, line, assoc, "b")
        scalar = _scalar_cache_hits(a, addrs)
        batch = b.access_batch(addrs)
        np.testing.assert_array_equal(scalar, batch)
        assert a._sets == b._sets  # identical membership AND LRU order
        assert (a.accesses, a.misses) == (b.accesses, b.misses)

    def test_matches_scalar_on_adversarial_single_set(self):
        # Every access maps to set 0 and thrashes it: worst case for the
        # round loop (one resolved miss per round) and for the bail path.
        cache_a = Cache(1, 64, 2, "a")
        cache_b = Cache(1, 64, 2, "b")
        rng = np.random.default_rng(0)
        num_sets = cache_a.num_sets
        addrs = rng.integers(0, 8, size=3000) * num_sets * 64
        scalar = _scalar_cache_hits(cache_a, addrs)
        batch = cache_b.access_batch(addrs)
        np.testing.assert_array_equal(scalar, batch)
        assert cache_a._sets == cache_b._sets

    @pytest.mark.parametrize("policy", ["fifo", "random"])
    def test_non_lru_policies_fall_back_to_oracle(self, policy):
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 64, size=2000) * 64
        a = Cache(1, 64, 4, "a", policy=policy)
        b = Cache(1, 64, 4, "b", policy=policy)
        scalar = _scalar_cache_hits(a, addrs)
        batch = b.access_batch(addrs)
        np.testing.assert_array_equal(scalar, batch)
        assert a._sets == b._sets
        assert a._victim_state == b._victim_state

    def test_interleaves_with_scalar_accesses(self):
        # Batch → scalar → batch must behave like one scalar stream.
        rng = np.random.default_rng(9)
        stream = rng.integers(0, 512, size=3000) * 64
        a = Cache(4, 64, 4, "a")
        b = Cache(4, 64, 4, "b")
        expect = _scalar_cache_hits(a, stream)
        got = np.concatenate([
            b.access_batch(stream[:1000]),
            _scalar_cache_hits(b, stream[1000:1100]),
            b.access_batch(stream[1100:]),
        ])
        np.testing.assert_array_equal(expect, got)
        assert a._sets == b._sets

    def test_empty_batch(self):
        cache = Cache(1, 64, 2)
        assert cache.access_batch(np.zeros(0, dtype=np.int64)).shape == (0,)
        assert cache.accesses == 0


class TestTLBBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 200, size=4000) << 12
        a, b = TLB(entries=64), TLB(entries=64)
        scalar = np.array([a.access(int(x)) for x in addrs], dtype=float)
        batch = b.access_batch(addrs)
        np.testing.assert_array_equal(scalar, batch)
        assert a._lru == b._lru
        assert (a.accesses, a.misses) == (b.accesses, b.misses)

    def test_single_entry_tlb(self):
        addrs = np.array([0, 1 << 12, 0, 0, 1 << 12], dtype=np.int64)
        a, b = TLB(entries=1), TLB(entries=1)
        scalar = np.array([a.access(int(x)) for x in addrs], dtype=float)
        np.testing.assert_array_equal(scalar, b.access_batch(addrs))
        assert a._lru == b._lru


# ---------------------------------------------------------------------------
# MemoryHierarchy.load_batch vs scalar load loop
# ---------------------------------------------------------------------------


def _mixed_stream(n, seed, hot_lines=1 << 10, cold_frac=0.2):
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, hot_lines, size=n) << 6
    cold = (rng.integers(0, 1 << 22, size=n) << 6) | (1 << 33)
    return np.where(rng.random(n) < cold_frac, cold, hot)


def _scalar_loads(hier, addrs, times):
    return np.array(
        [hier.load(a, t) for a, t in zip(addrs.tolist(), times.tolist())]
    )


HIER_CONFIGS = [
    pytest.param(ProcessorConfig(), id="default"),
    pytest.param(ProcessorConfig(enable_tlb=True), id="tlb"),
    pytest.param(
        ProcessorConfig(dl1_size_kb=1, dl1_assoc=1, l2_size_kb=16), id="tiny"
    ),
    pytest.param(ProcessorConfig(l2_lat=20, dl1_lat=4), id="slow"),
    # These two must take the scalar-oracle fallback (time-coupled state).
    pytest.param(ProcessorConfig(writeback=True), id="writeback-fallback"),
    pytest.param(
        ProcessorConfig(enable_stride_prefetch=True), id="stride-fallback"
    ),
]


class TestHierarchyBatch:
    @pytest.mark.parametrize("config", HIER_CONFIGS)
    def test_bitwise_latencies_stats_and_state(self, config):
        addrs = _mixed_stream(4000, seed=17)
        times = np.cumsum(np.ones(4000)) - 1.0
        h_scalar = MemoryHierarchy(config)
        h_batch = MemoryHierarchy(config)
        expect = _scalar_loads(h_scalar, addrs, times)
        got = h_batch.load_batch(addrs, times)
        np.testing.assert_array_equal(expect, got)
        assert h_scalar.stats() == h_batch.stats()
        assert h_scalar._inflight == h_batch._inflight
        # Post-state agreement: future scalar loads behave identically.
        follow = _mixed_stream(300, seed=23)
        follow_t = np.arange(4000.0, 4300.0)
        np.testing.assert_array_equal(
            _scalar_loads(h_scalar, follow, follow_t),
            _scalar_loads(h_batch, follow, follow_t),
        )

    def test_batch_reproduces_bench_latency_sum(self):
        # The exact seeded stream of the sim/cache_hierarchy benchmark;
        # its work-metadata hash pins this sum across commits.
        accesses = 2000
        rng = np.random.default_rng(20060101)
        hot = rng.integers(0, 1 << 16, size=accesses) << 6
        cold = (rng.integers(0, 1 << 24, size=accesses) << 6) | (1 << 33)
        addrs = np.where(rng.random(accesses) < 0.2, cold, hot)
        times = np.arange(accesses, dtype=float)
        h_scalar = MemoryHierarchy(ProcessorConfig())
        h_batch = MemoryHierarchy(ProcessorConfig())
        expect = sum(_scalar_loads(h_scalar, addrs, times).tolist())
        got = sum(h_batch.load_batch(addrs, times).tolist())
        assert repr(expect) == repr(got)

    def test_empty_and_invalid_inputs(self):
        hier = MemoryHierarchy(ProcessorConfig())
        assert hier.load_batch(np.zeros(0, dtype=np.int64), np.zeros(0)).shape == (0,)
        with pytest.raises(ValueError):
            hier.load_batch(np.zeros(3, dtype=np.int64), np.zeros(2))


# ---------------------------------------------------------------------------
# MSHR in-flight fill table (merge + incremental pruning)
# ---------------------------------------------------------------------------


class TestInflightFills:
    def test_second_miss_merges_with_outstanding_fill(self):
        hier = MemoryHierarchy(ProcessorConfig())
        addr = 1 << 20
        first = hier._l2_fill(addr, 0.0)
        requests = hier.memctrl.requests
        # Same line, issued before the fill completes: merges, no new
        # memory request, same ready time.
        second = hier._l2_fill(addr + 8, first - 1.0)
        assert second == first
        assert hier.memctrl.requests == requests

    def test_completed_fill_does_not_merge(self):
        hier = MemoryHierarchy(ProcessorConfig())
        addr = 1 << 20
        first = hier._l2_fill(addr, 0.0)
        requests = hier.memctrl.requests
        second = hier._l2_fill(addr, first + 1.0)
        assert hier.memctrl.requests == requests + 1
        assert second > first

    def test_completed_fills_are_pruned_incrementally(self):
        from repro.simulator.hierarchy import _INFLIGHT_LIMIT

        hier = MemoryHierarchy(ProcessorConfig())
        line_bytes = hier.l2.line_size
        # Each fill is issued long after the previous completed, so the
        # table would grow without bound if completed entries survived.
        time = 0.0
        for i in range(4 * _INFLIGHT_LIMIT):
            done = hier._l2_fill(i * line_bytes, time)
            time = done + 1000.0
        assert len(hier._inflight) <= _INFLIGHT_LIMIT + 1
        assert len(hier._inflight_heap) <= _INFLIGHT_LIMIT + 1

    def test_outstanding_fills_survive_pruning(self):
        from repro.simulator.hierarchy import _INFLIGHT_LIMIT

        hier = MemoryHierarchy(ProcessorConfig())
        line_bytes = hier.l2.line_size
        # All fills issued at time 0: with a saturated bus every
        # completion is in the future, so nothing may be dropped and
        # later same-line misses must still merge.
        ready = {}
        for i in range(2 * _INFLIGHT_LIMIT):
            ready[i] = hier._l2_fill(i * line_bytes, 0.0)
        assert len(hier._inflight) == 2 * _INFLIGHT_LIMIT
        requests = hier.memctrl.requests
        for i in range(2 * _INFLIGHT_LIMIT):
            assert hier._l2_fill(i * line_bytes, 1.0) == ready[i]
        assert hier.memctrl.requests == requests


# ---------------------------------------------------------------------------
# MemoryHierarchy.stats() TLB gating
# ---------------------------------------------------------------------------


class TestStatsTLBGating:
    def test_each_tlb_stat_gated_on_its_own_presence(self):
        hier = MemoryHierarchy(ProcessorConfig(enable_tlb=True))
        hier.itlb = None  # split configuration: data TLB only
        stats = hier.stats()
        assert "itlb_miss_rate" not in stats
        assert "dtlb_miss_rate" in stats

        hier = MemoryHierarchy(ProcessorConfig(enable_tlb=True))
        hier.dtlb = None  # instruction TLB only
        stats = hier.stats()
        assert "itlb_miss_rate" in stats
        assert "dtlb_miss_rate" not in stats

    def test_both_present_and_both_absent(self):
        on = MemoryHierarchy(ProcessorConfig(enable_tlb=True)).stats()
        assert "itlb_miss_rate" in on and "dtlb_miss_rate" in on
        off = MemoryHierarchy(ProcessorConfig()).stats()
        assert "itlb_miss_rate" not in off and "dtlb_miss_rate" not in off


# ---------------------------------------------------------------------------
# RBF: batched design-matrix / AICc path vs naive per-element references
# ---------------------------------------------------------------------------


def _naive_design_matrix(points, centers, radii):
    """Per-element Gaussian responses (Eq. 2), no vectorisation."""
    h = np.zeros((len(points), len(centers)))
    for i, x in enumerate(points):
        for j, (c, r) in enumerate(zip(centers, radii)):
            h[i, j] = np.exp(-float(sum(((x - c) / r) ** 2)))
    return h


def _naive_build(points, responses, p_min, alpha, max_candidates=255):
    """Reference tree-ordered AICc selection: no memoisation, no candidate
    cache, design matrix rebuilt from scratch — the pre-vectorisation
    algorithm, kept as an executable specification."""
    from repro.models.rbf import _MIN_RADIUS, _fit_weights, gaussian_design_matrix
    from repro.models.selection import get_criterion
    from repro.models.tree import RegressionTree

    crit_fn = get_criterion("aicc")
    tree = RegressionTree(points, responses, p_min=p_min)
    nodes = tree.nodes_breadth_first()[:max_candidates]
    node_pos = {id(n): j for j, n in enumerate(nodes)}
    centers = np.array([n.center for n in nodes])
    radii = np.maximum(alpha * np.array([n.size for n in nodes]), _MIN_RADIUS)
    h_full = gaussian_design_matrix(points, centers, radii)
    p = len(points)
    selected = np.zeros(len(nodes), dtype=bool)

    def evaluate(sel):
        m = int(sel.sum())
        if m >= p - 1:
            return np.inf, np.inf
        _, sse = _fit_weights(h_full[:, sel], responses)
        return crit_fn(p, sse, m), sse

    selected[0] = True
    best_value, best_sse = evaluate(selected)
    queue = [nodes[0]]
    while queue:
        node = queue.pop(0)
        if node.is_leaf:
            continue
        trio_pos = [node_pos.get(id(t)) for t in (node, node.left, node.right)]
        if any(pos is None for pos in trio_pos):
            continue
        best_combo = tuple(selected[pos] for pos in trio_pos)
        for combo in range(8):
            bits = ((combo >> 2) & 1, (combo >> 1) & 1, combo & 1)
            trial = selected.copy()
            for pos, bit in zip(trio_pos, bits):
                trial[pos] = bool(bit)
            value, sse = evaluate(trial)
            if value < best_value:
                best_value, best_sse = value, sse
                best_combo = tuple(bool(b) for b in bits)
        for pos, bit in zip(trio_pos, best_combo):
            selected[pos] = bit
        queue.append(node.left)
        queue.append(node.right)
    weights, sse = _fit_weights(h_full[:, selected], responses)
    return best_value, sse, int(selected.sum()), weights


class TestRBFVectorised:
    def _sample(self, n=80, d=5, seed=1):
        rng = np.random.default_rng(seed)
        points = rng.random((n, d))
        responses = np.sin(points @ np.arange(1.0, d + 1.0)) + 0.1 * rng.random(n)
        return points, responses

    def test_design_matrix_matches_naive_reference(self):
        from repro.models.rbf import gaussian_design_matrix

        rng = np.random.default_rng(2)
        points = rng.random((40, 4))
        centers = rng.random((7, 4))
        radii = 0.3 + rng.random((7, 4))
        np.testing.assert_allclose(
            gaussian_design_matrix(points, centers, radii),
            _naive_design_matrix(points, centers, radii),
            rtol=1e-12,
        )

    def test_candidate_cache_is_bitwise_transparent(self):
        from repro.models.rbf import (
            _MIN_RADIUS,
            _design_from_diff,
            build_rbf_from_tree,
            gaussian_design_matrix,
            tree_candidates,
        )
        from repro.models.tree import RegressionTree

        points, responses = self._sample()
        tree = RegressionTree(points, responses, p_min=2)
        cand = tree_candidates(points, tree)
        for alpha in (2.0, 6.0, 12.0):
            radii = np.maximum(alpha * cand.sizes, _MIN_RADIUS)
            direct = gaussian_design_matrix(points, cand.centers, radii)
            cached = _design_from_diff(cand.diff, radii)
            np.testing.assert_array_equal(direct, cached)  # bitwise
            fresh_net, fresh_info = build_rbf_from_tree(
                points, responses, p_min=2, alpha=alpha
            )
            cand_net, cand_info = build_rbf_from_tree(
                points, responses, p_min=2, alpha=alpha, tree=tree, candidates=cand
            )
            assert fresh_info.criterion_value == cand_info.criterion_value
            assert fresh_info.sse == cand_info.sse
            np.testing.assert_array_equal(fresh_net.weights, cand_net.weights)

    def test_candidates_without_tree_rejected(self):
        from repro.models.rbf import build_rbf_from_tree, tree_candidates
        from repro.models.tree import RegressionTree

        points, responses = self._sample(n=30, d=3)
        cand = tree_candidates(points, RegressionTree(points, responses, p_min=2))
        with pytest.raises(ValueError):
            build_rbf_from_tree(points, responses, candidates=cand)

    @pytest.mark.parametrize("p_min,alpha", [(1, 4.0), (2, 6.0), (3, 10.0)])
    def test_memoised_selection_matches_naive_reference(self, p_min, alpha):
        from repro.models.rbf import build_rbf_from_tree

        points, responses = self._sample(seed=p_min)
        network, info = build_rbf_from_tree(
            points, responses, p_min=p_min, alpha=alpha
        )
        value, sse, num_centers, weights = _naive_build(
            points, responses, p_min, alpha
        )
        # Bitwise: the memoised/cached path must change nothing.
        assert info.criterion_value == value
        assert info.sse == sse
        assert info.num_centers == num_centers
        np.testing.assert_array_equal(network.weights, weights)


# ---------------------------------------------------------------------------
# Bitwise CPI pin: all 8 SPEC profiles at 3 design points
# ---------------------------------------------------------------------------

#: Physical design points: low corner, paper default center, high corner.
PIN_POINTS = [
    {"pipe_depth": 7, "rob_size": 24, "iq_frac": 0.25, "lsq_frac": 0.25,
     "l2_size_kb": 256, "l2_lat": 5, "il1_size_kb": 8, "dl1_size_kb": 8,
     "dl1_lat": 1},
    {"pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
     "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32, "dl1_size_kb": 32,
     "dl1_lat": 2},
    {"pipe_depth": 24, "rob_size": 128, "iq_frac": 0.75, "lsq_frac": 0.75,
     "l2_size_kb": 8192, "l2_lat": 20, "il1_size_kb": 64, "dl1_size_kb": 64,
     "dl1_lat": 4},
]

#: repr() of the CPI at each point, captured on the pre-vectorisation
#: scalar simulator (trace length 4096, seed 0).  Bitwise contract: any
#: deviation in the last ulp fails this test.
PIN_CPIS = {
    "mcf": ["15.603515625", "15.943080357142858", "17.194475446428573"],
    "crafty": ["5.796037946428571", "5.940011160714286", "6.934709821428571"],
    "parser": ["5.624720982142857", "5.831473214285714", "6.705636160714286"],
    "perlbmk": ["9.109654017857142", "9.82421875", "11.07421875"],
    "vortex": ["9.440569196428571", "10.102678571428571", "11.519252232142858"],
    "twolf": ["6.025390625", "6.149274553571429", "6.824497767857143"],
    "equake": ["6.265066964285714", "6.128069196428571", "6.677734375"],
    "ammp": ["6.154296875", "6.191685267857143", "6.669084821428571"],
}


@pytest.mark.parametrize("bench_name", sorted(PIN_CPIS))
def test_cpi_bitwise_pinned(bench_name):
    from repro.core.design_space import paper_design_space
    from repro.simulator.simulator import Simulator
    from repro.workloads.spec2000 import get_trace

    space = paper_design_space()
    trace = get_trace(bench_name, 4096, 0)
    got = []
    for point in PIN_POINTS:
        config = ProcessorConfig.from_design_point(space.resolve(point))
        got.append(repr(Simulator(config).run(trace).cpi))
    assert got == PIN_CPIS[bench_name]
