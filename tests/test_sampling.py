"""Tests for latin hypercube sampling and its level-balancing variant."""

import numpy as np
import pytest

from repro.sampling.lhs import latin_hypercube, lhs_levels
from repro.util.rng import make_rng


class TestLhsLevels:
    def test_all_levels_present_when_count_exceeds_levels(self, rng):
        col = lhs_levels(20, 4, rng)
        assert set(np.round(col * 3).astype(int)) == {0, 1, 2, 3}

    def test_balanced_assignment(self, rng):
        col = lhs_levels(20, 4, rng)
        counts = np.bincount(np.round(col * 3).astype(int), minlength=4)
        assert counts.min() == counts.max() == 5

    def test_near_balanced_when_not_divisible(self, rng):
        col = lhs_levels(10, 4, rng)
        counts = np.bincount(np.round(col * 3).astype(int), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_single_level(self, rng):
        col = lhs_levels(5, 1, rng)
        np.testing.assert_allclose(col, 0.5)

    def test_count_below_levels_uses_distinct_levels(self, rng):
        col = lhs_levels(3, 6, rng)
        assert len(set(col)) == 3

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            lhs_levels(0, 4, rng)
        with pytest.raises(ValueError):
            lhs_levels(5, 0, rng)


class TestLatinHypercube:
    def test_shape_and_bounds(self, small_space, rng):
        pts = latin_hypercube(small_space, 16, rng)
        assert pts.shape == (16, 3)
        assert pts.min() >= 0 and pts.max() <= 1

    def test_stratification_of_continuous_parameters(self, small_space, rng):
        # One point per stratum for the 'S'-level (continuous) parameters.
        count = 16
        pts = latin_hypercube(small_space, count, rng, jitter=True)
        # depth is column 0 and continuous: snapped to a `count`-level grid
        # but still one point per stratum before snapping, so all values in
        # distinct 1/count-wide bands up to snapping collisions.
        strata = np.floor(pts[:, 2] * count).clip(max=count - 1)
        # Snapping onto the `count`-level grid can merge a few neighbouring
        # strata, but coverage must stay near one-point-per-stratum.
        assert len(set(strata.astype(int))) >= count - 4

    def test_leveled_parameter_balanced(self, small_space, rng):
        pts = latin_hypercube(small_space, 16, rng)
        levels = np.round(pts[:, 1] * 3).astype(int)
        counts = np.bincount(levels, minlength=4)
        assert counts.min() == counts.max() == 4

    def test_deterministic_given_rng_seed(self, small_space):
        a = latin_hypercube(small_space, 12, make_rng(5, "x"))
        b = latin_hypercube(small_space, 12, make_rng(5, "x"))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, small_space):
        a = latin_hypercube(small_space, 12, make_rng(5, "x"))
        b = latin_hypercube(small_space, 12, make_rng(6, "x"))
        assert not np.array_equal(a, b)

    def test_num_levels_override(self, small_space):
        pts = latin_hypercube(small_space, 10, make_rng(1), num_levels=3)
        # Continuous parameters snapped onto a 3-level grid.
        assert set(np.round(pts[:, 0] * 2).astype(int)) <= {0, 1, 2}

    def test_invalid_count(self, small_space, rng):
        with pytest.raises(ValueError):
            latin_hypercube(small_space, 0, rng)

    def test_no_jitter_uses_stratum_centers(self, small_space):
        pts = latin_hypercube(small_space, 8, make_rng(2), jitter=False,
                              num_levels=None)
        # Without jitter, the continuous column values before snapping are
        # (k + 0.5)/8; after snapping to 8 levels they stay distinct.
        assert len(set(pts[:, 2])) == 8
