"""Tests for CPI-stack (counterfactual bottleneck) analysis."""

import pytest

from repro.analysis.bottleneck import CPIStack, cpi_stack, render_stack
from repro.simulator.config import ProcessorConfig
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


@pytest.fixture(scope="module")
def twolf_trace():
    return generate_trace(PROFILES["twolf"], 6000, seed=4)


@pytest.fixture(scope="module")
def twolf_stack(twolf_trace):
    return cpi_stack(ProcessorConfig(), twolf_trace)


class TestIdealisationSwitches:
    def test_perfect_bpred_removes_mispredicts_cost(self, twolf_trace):
        from repro.simulator.simulator import simulate

        base = simulate(ProcessorConfig(), twolf_trace)
        ideal = simulate(ProcessorConfig(perfect_branch_prediction=True), twolf_trace)
        assert ideal.cpi < base.cpi

    def test_perfect_dcache_hits_everything(self, twolf_trace):
        from repro.simulator.simulator import simulate

        ideal = simulate(ProcessorConfig(perfect_dcache=True), twolf_trace)
        # No data-cache traffic reaches the hierarchy at all.
        assert ideal.dl1_miss_rate == 0.0

    def test_all_ideal_approaches_width_limit(self, twolf_trace):
        from repro.simulator.simulator import simulate

        ideal = simulate(
            ProcessorConfig(perfect_branch_prediction=True, perfect_dcache=True,
                            perfect_icache=True),
            twolf_trace,
        )
        assert ideal.cpi < 1.5  # width/ILP-bound only


class TestCPIStack:
    def test_components_nonnegative(self, twolf_stack):
        assert twolf_stack.base > 0
        assert twolf_stack.branch >= 0
        assert twolf_stack.data_memory >= 0
        assert twolf_stack.instruction_memory >= 0

    def test_base_below_total(self, twolf_stack):
        assert twolf_stack.base < twolf_stack.total

    def test_memory_dominates_twolf(self, twolf_stack):
        # twolf's profile is data-memory heavy relative to icache.
        assert twolf_stack.dominant_component() == "data_memory"

    def test_as_dict_keys(self, twolf_stack):
        d = twolf_stack.as_dict()
        assert set(d) == {"total", "base", "branch", "data_memory",
                          "instruction_memory", "overlap"}

    def test_overlap_identity(self, twolf_stack):
        s = twolf_stack
        assert s.total == pytest.approx(
            s.base + s.branch + s.data_memory + s.instruction_memory + s.overlap
        )

    def test_rejects_pre_idealised_config(self, twolf_trace):
        with pytest.raises(ValueError):
            cpi_stack(ProcessorConfig(perfect_dcache=True), twolf_trace)

    def test_render(self, twolf_stack):
        text = render_stack(twolf_stack)
        assert "total CPI" in text
        assert "data memory" in text


class TestProgramContrast:
    def test_mcf_more_memory_bound_than_crafty(self):
        mcf = cpi_stack(ProcessorConfig(),
                        generate_trace(PROFILES["mcf"], 6000, seed=4))
        crafty = cpi_stack(ProcessorConfig(),
                           generate_trace(PROFILES["crafty"], 6000, seed=4))
        mcf_mem_share = mcf.data_memory / mcf.total
        crafty_mem_share = crafty.data_memory / crafty.total
        assert mcf_mem_share > crafty_mem_share
        # And crafty pays relatively more for branches.
        assert (crafty.branch / crafty.total) > (mcf.branch / mcf.total)
