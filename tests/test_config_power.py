"""Tests for processor configuration and the power-proxy model."""

import pytest

from repro.core.design_space import paper_design_space
from repro.simulator.config import BACKEND_STAGES, ProcessorConfig
from repro.simulator.power import estimate_energy, structure_capacity_kb
from repro.simulator.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


class TestConfig:
    def test_defaults_valid(self):
        ProcessorConfig()

    def test_front_depth(self):
        assert ProcessorConfig(pipe_depth=12).front_depth == 12 - BACKEND_STAGES
        assert ProcessorConfig(pipe_depth=7).front_depth == 3

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ProcessorConfig(pipe_depth=0)
        with pytest.raises(ValueError):
            ProcessorConfig(rob_size=-1)
        with pytest.raises(ValueError):
            ProcessorConfig(rob_size=16, iq_size=32)

    def test_from_design_point(self):
        space = paper_design_space()
        point = space.resolve({
            "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.25,
            "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
            "dl1_size_kb": 32, "dl1_lat": 2,
        })
        config = ProcessorConfig.from_design_point(point)
        assert config.iq_size == 32
        assert config.lsq_size == 16

    def test_from_design_point_overrides_fixed(self):
        space = paper_design_space()
        point = space.resolve({
            "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
            "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
            "dl1_size_kb": 32, "dl1_lat": 2,
        })
        config = ProcessorConfig.from_design_point(point, fetch_width=8)
        assert config.fetch_width == 8

    def test_key_stable_and_distinct(self):
        a = ProcessorConfig(rob_size=64)
        b = ProcessorConfig(rob_size=64)
        c = ProcessorConfig(rob_size=65)
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_as_dict_round(self):
        d = ProcessorConfig().as_dict()
        assert d["rob_size"] == 64
        assert "l2_capacity_scale" in d

    def test_frozen(self):
        with pytest.raises(Exception):
            ProcessorConfig().rob_size = 10


class TestPower:
    def test_structure_capacity_grows_with_sizes(self):
        small = structure_capacity_kb(ProcessorConfig(rob_size=24, iq_size=12,
                                                      lsq_size=12, l2_size_kb=256))
        large = structure_capacity_kb(ProcessorConfig(rob_size=128, iq_size=64,
                                                      lsq_size=64, l2_size_kb=8192))
        assert large > small

    def test_zero_instructions_zero_energy(self):
        stats = {"il1_accesses": 0, "dl1_accesses": 0, "l2_accesses": 0,
                 "memory_requests": 0}
        assert estimate_energy(ProcessorConfig(), 0, 0.0, stats, 0) == 0.0

    def test_energy_positive_for_real_run(self):
        trace = generate_trace(PROFILES["twolf"], 2000, seed=1)
        result = simulate(ProcessorConfig(), trace)
        assert result.energy > 0
        assert result.power > 0

    def test_bigger_caches_cost_leakage(self):
        trace = generate_trace(PROFILES["twolf"], 2000, seed=1)
        small = simulate(ProcessorConfig(l2_size_kb=256), trace)
        large = simulate(ProcessorConfig(l2_size_kb=8192), trace)
        # The big L2 must pay more leakage energy per cycle.
        assert large.power > small.power

    def test_power_cpi_tradeoff_exists(self):
        # Power and CPI move in opposite directions with L2 size: the
        # extension experiment's premise.
        trace = generate_trace(PROFILES["mcf"], 2000, seed=1)
        small = simulate(ProcessorConfig(l2_size_kb=256), trace)
        large = simulate(ProcessorConfig(l2_size_kb=8192), trace)
        assert large.cpi <= small.cpi + 1e-9
        assert large.power > small.power


class TestSimResult:
    def test_ipc(self):
        trace = generate_trace(PROFILES["twolf"], 1000, seed=2)
        result = simulate(ProcessorConfig(), trace)
        assert result.ipc == pytest.approx(1.0 / result.cpi)

    def test_as_dict_contains_extras(self):
        trace = generate_trace(PROFILES["twolf"], 1000, seed=2)
        result = simulate(ProcessorConfig(), trace)
        d = result.as_dict()
        assert "cpi" in d and "il1_accesses" in d

    def test_invalid_construction(self):
        from repro.simulator.metrics import SimResult

        with pytest.raises(ValueError):
            SimResult(cpi=-1.0, cycles=10, instructions=5)
        with pytest.raises(ValueError):
            SimResult(cpi=1.0, cycles=10, instructions=-1)
