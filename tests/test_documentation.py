"""Meta-tests: documentation coverage of the public API.

The deliverable standard is doc comments on every public item; these tests
enforce it mechanically so it cannot regress.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.core", "repro.sampling", "repro.models",
    "repro.simulator", "repro.workloads", "repro.analysis",
    "repro.experiments", "repro.statsim", "repro.util",
    "repro.lint", "repro.lint.rules", "repro.lint.semantic",
    "repro.obs", "repro.obs.prof", "repro.obs.history",
    "repro.obs.live", "repro.serve",
]


def all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            out.append(importlib.import_module(info.name))
    return out


MODULES = all_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_every_public_class_method_documented_in_core_models():
    # The modeling layer is the library's primary public surface; hold its
    # methods to the documented standard too.  The registry and model-card
    # modules are part of that surface: their records travel between runs.
    from repro.models import linear, rbf, registry, tree
    from repro.obs import modelcard

    for module in (rbf, tree, linear, registry, modelcard):
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if cls.__module__ != module.__name__:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_") or not callable(meth):
                    continue
                assert meth.__doc__ and meth.__doc__.strip(), (
                    f"{module.__name__}.{cls_name}.{meth_name}"
                )
