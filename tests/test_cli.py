"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_overrides, build_parser, main


class TestParseOverrides:
    def test_ints_and_floats(self):
        out = _parse_overrides(["l2_lat=18", "iq_size=32"])
        assert out == {"l2_lat": 18, "iq_size": 32}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["l2_lat"])

    def test_non_numeric(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["l2_lat=big"])


class TestCommands:
    def test_experiments_lists_all_exhibits(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exhibit in ("Figure 1", "Figure 7", "Table 3", "Table 5"):
            assert exhibit in out

    def test_benchmarks_lists_workloads(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "181.mcf" in out and "188.ammp" in out

    def test_simulate_prints_cpi(self, capsys):
        code = main(["simulate", "twolf", "l2_lat=18", "--trace-length", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cpi" in out

    def test_simulate_rejects_bad_override(self):
        with pytest.raises(SystemExit):
            main(["simulate", "twolf", "l2_lat=-3", "--trace-length", "2000"])

    def test_simulate_rejects_unknown_field(self):
        with pytest.raises(SystemExit):
            main(["simulate", "twolf", "warp_factor=9", "--trace-length", "2000"])

    def test_build_small_budget(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main([
            "build", "twolf", "--sample-size", "20", "--test-points", "10",
            "--trace-length", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gcc"])

    def test_stacks_prints_exact_table(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = main(["stacks", "mcf", "--trace-length", "512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI stacks" in out
        for component in ("base", "branch_redirect", "dram", "total"):
            assert component in out

    def test_stacks_json_sweep_and_intervals(self, capsys, tmp_path,
                                             monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        intervals_path = tmp_path / "iv.jsonl"
        code = main([
            "stacks", "twolf", "pipe_depth=7,24", "--trace-length", "512",
            "--interval", "128", "--intervals", str(intervals_path),
            "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "twolf"
        assert set(doc["stacks"]) == {"pipe_depth=7", "pipe_depth=24"}
        for stack in doc["stacks"].values():
            assert sum(stack["components"].values()) == stack["cycles"]
        # One interval stream per swept configuration.
        from repro.simulator.attribution import read_intervals_jsonl

        written = sorted(tmp_path.glob("iv*.jsonl"))
        assert len(written) == 2
        header, records = read_intervals_jsonl(written[0])
        assert header["kind"] == "cpi_intervals"
        # Intervals tile the measured (post-warmup) region of the run.
        measured = doc["stacks"]["pipe_depth=7"]["instructions"]
        assert sum(r.instructions for r in records) == measured

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_report_aggregates_results(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        (tmp_path / "fig1_response_surface.txt").write_text("FIG1 CONTENT\n")
        (tmp_path / "ablation_sampling.txt").write_text("ABLATION CONTENT\n")
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "FIG1 CONTENT" in out
        assert "ABLATION CONTENT" in out
        assert "missing exhibits" in out  # others not generated
        assert (tmp_path / "SUMMARY.txt").exists()

    def test_report_with_no_results(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nothing"))
        assert main(["report"]) == 1
