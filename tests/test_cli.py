"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_overrides, build_parser, main


class TestParseOverrides:
    def test_ints_and_floats(self):
        out = _parse_overrides(["l2_lat=18", "iq_size=32"])
        assert out == {"l2_lat": 18, "iq_size": 32}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["l2_lat"])

    def test_non_numeric(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["l2_lat=big"])


class TestCommands:
    def test_experiments_lists_all_exhibits(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exhibit in ("Figure 1", "Figure 7", "Table 3", "Table 5"):
            assert exhibit in out

    def test_benchmarks_lists_workloads(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "181.mcf" in out and "188.ammp" in out

    def test_simulate_prints_cpi(self, capsys):
        code = main(["simulate", "twolf", "l2_lat=18", "--trace-length", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cpi" in out

    def test_simulate_rejects_bad_override(self):
        with pytest.raises(SystemExit):
            main(["simulate", "twolf", "l2_lat=-3", "--trace-length", "2000"])

    def test_simulate_rejects_unknown_field(self):
        with pytest.raises(SystemExit):
            main(["simulate", "twolf", "warp_factor=9", "--trace-length", "2000"])

    def test_build_small_budget(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main([
            "build", "twolf", "--sample-size", "20", "--test-points", "10",
            "--trace-length", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gcc"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_report_aggregates_results(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        (tmp_path / "fig1_response_surface.txt").write_text("FIG1 CONTENT\n")
        (tmp_path / "ablation_sampling.txt").write_text("ABLATION CONTENT\n")
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "FIG1 CONTENT" in out
        assert "ABLATION CONTENT" in out
        assert "missing exhibits" in out  # others not generated
        assert (tmp_path / "SUMMARY.txt").exists()

    def test_report_with_no_results(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nothing"))
        assert main(["report"]) == 1
