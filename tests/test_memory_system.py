"""Tests for DRAM device timing, the memory controller, and the hierarchy."""

import pytest

from repro.simulator.config import ProcessorConfig
from repro.simulator.dram import DRAM, ROW_SIZE
from repro.simulator.hierarchy import MemoryHierarchy
from repro.simulator.memctrl import MemoryController


class TestDRAM:
    def test_row_miss_then_row_hit(self):
        d = DRAM(num_banks=2, access_lat=100, row_hit_lat=40)
        t1 = d.access(0, time=0.0)
        assert t1 == 100.0
        t2 = d.access(8, time=t1)  # same row
        assert t2 == t1 + 40.0
        assert d.row_hits == 1

    def test_bank_conflict_serialises(self):
        d = DRAM(num_banks=2, access_lat=100, row_hit_lat=40)
        d.access(0, time=0.0)  # bank 0 busy until 100
        # Different row, same bank (row number differs by num_banks).
        t = d.access(2 * ROW_SIZE, time=0.0)
        assert t == 200.0  # waited for the bank

    def test_different_banks_overlap(self):
        d = DRAM(num_banks=2, access_lat=100, row_hit_lat=40)
        d.access(0, time=0.0)
        t = d.access(ROW_SIZE, time=0.0)  # adjacent row -> other bank
        assert t == 100.0

    def test_row_hit_rate(self):
        d = DRAM()
        d.access(0, 0.0)
        d.access(16, 200.0)
        assert d.row_hit_rate == pytest.approx(0.5)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DRAM(num_banks=0)
        with pytest.raises(ValueError):
            DRAM(access_lat=50, row_hit_lat=60)


class TestMemoryController:
    def _mc(self, queue_depth=2, bus=10):
        return MemoryController(DRAM(num_banks=8, access_lat=100, row_hit_lat=40),
                                bus_cycles=bus, queue_depth=queue_depth)

    def test_single_request_latency(self):
        mc = self._mc()
        done = mc.access(0, time=0.0)
        assert done == 100.0 + 10.0  # device + bus transfer

    def test_bus_serialises_transfers(self):
        mc = self._mc()
        t1 = mc.access(0, time=0.0)
        # Different bank, device time overlaps, but the bus is shared.
        t2 = mc.access(ROW_SIZE, time=0.0)
        assert t2 >= t1 + 10.0

    def test_queue_full_delays_admission(self):
        mc = self._mc(queue_depth=1)
        t1 = mc.access(0, time=0.0)
        mc.access(ROW_SIZE, time=0.0)
        assert mc.total_queue_delay > 0.0

    def test_queue_drains_over_time(self):
        mc = self._mc(queue_depth=1)
        t1 = mc.access(0, time=0.0)
        # Issued long after the first completed: no queue delay.
        before = mc.total_queue_delay
        mc.access(ROW_SIZE, time=t1 + 1000.0)
        assert mc.total_queue_delay == before

    def test_mean_queue_delay(self):
        mc = self._mc()
        assert mc.mean_queue_delay == 0.0
        mc.access(0, 0.0)
        assert mc.mean_queue_delay == 0.0

    def test_invalid_config(self):
        d = DRAM()
        with pytest.raises(ValueError):
            MemoryController(d, bus_cycles=0)
        with pytest.raises(ValueError):
            MemoryController(d, queue_depth=0)


class TestHierarchy:
    def _hier(self, **overrides):
        return MemoryHierarchy(ProcessorConfig(**overrides))

    def test_l1_hit_latency(self):
        h = self._hier(dl1_lat=3)
        h.load(0x1000, 0.0)  # warm the line (miss)
        t = h.load(0x1000, 100.0)
        assert t == 103.0

    def test_l2_hit_latency(self):
        h = self._hier(dl1_lat=2, l2_lat=10)
        h.load(0x1000, 0.0)  # fills dl1 and l2
        # Evict from dl1 by sweeping its capacity; l2 keeps the line.
        cfg = h.config
        sweep_lines = (cfg.dl1_size_kb * 1024 // cfg.dl1_line) * 2
        base = 0x800000
        t = 1000.0
        for i in range(sweep_lines):
            t = max(t, h.load(base + i * cfg.dl1_line, t))
        done = h.load(0x1000, t + 10000.0)
        assert done == pytest.approx(t + 10000.0 + 2 + 10)

    def test_memory_miss_latency_includes_device_and_bus(self):
        h = self._hier(dl1_lat=2, l2_lat=10)
        done = h.load(0x1000, 0.0)
        expected_min = 2 + 10 + h.config.dram_row_hit_lat + h.config.bus_cycles
        assert done >= expected_min

    def test_inflight_merge(self):
        h = self._hier()
        t1 = h.load(0x4000, 0.0)
        # A second miss to the same L2 line while the fill is in flight
        # merges with it rather than paying a second memory access.
        t2 = h.load(0x4000 + 8, 1.0)
        assert t2 <= t1
        assert h.memctrl.requests == 1

    def test_fetch_hit_costs_nothing_extra(self):
        h = self._hier()
        h.fetch(0x400000, 0.0)
        assert h.fetch(0x400000, 50.0) == 50.0

    def test_store_updates_cache(self):
        h = self._hier()
        h.store(0x9000, 0.0)
        assert h.dl1.probe(0x9000)

    def test_stats_keys(self):
        h = self._hier()
        h.load(0x100, 0.0)
        stats = h.stats()
        for key in ("il1_miss_rate", "dl1_miss_rate", "l2_miss_rate",
                    "memory_requests", "mean_queue_delay", "dram_row_hit_rate"):
            assert key in stats

    def test_l2_capacity_scaling(self):
        full = self._hier(l2_size_kb=1024, l2_capacity_scale=1)
        scaled = self._hier(l2_size_kb=1024, l2_capacity_scale=4)
        assert scaled.l2.size_bytes * 4 == full.l2.size_bytes
