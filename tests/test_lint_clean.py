"""Repo-wide lint gate: the shipped tree must be clean.

This is the tier-1 enforcement point for the contracts in
:mod:`repro.lint`: any PR that introduces a module-level RNG call, an
ill-conditioned solve, a float equality, an unknown design-space
parameter name, registry/harness drift, or an API-hygiene violation in
``src/`` fails here — with the finding list in the assertion message.
"""

import json
import os

from repro.lint import Baseline, LintRunner
from repro.lint.baseline import DEFAULT_BASELINE_NAME

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, DEFAULT_BASELINE_NAME)


def _render(findings):
    return "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in findings)


def test_src_tree_is_lint_clean():
    result = LintRunner().run([SRC])
    assert result.files_checked > 50  # the walk really covered the tree
    assert result.ok, f"new lint findings in src/:\n{_render(result.findings)}"


def test_src_tree_needs_no_suppressions():
    # The shipped tree is clean outright: nothing hides behind noqa.
    result = LintRunner().run([SRC])
    assert not result.suppressed, (
        f"unexpected noqa-suppressed findings:\n{_render(result.suppressed)}"
    )


def test_shipped_baseline_is_empty():
    # Satellite contract: every finding was fixed at the source, so the
    # committed grandfathering file carries zero fingerprints.
    baseline = Baseline.load(BASELINE)
    assert len(baseline) == 0, "lint-baseline.json should stay empty"
    with open(BASELINE, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["tool"] == "repro.lint"


def test_benchmarks_and_examples_are_lint_clean():
    # Harnesses and examples document the API; hold them to the same bar.
    result = LintRunner().run([
        os.path.join(REPO_ROOT, "benchmarks"),
        os.path.join(REPO_ROOT, "examples"),
    ])
    assert result.ok, (
        f"new lint findings in benchmarks/examples:\n{_render(result.findings)}"
    )


def test_registry_benchmarks_sync_is_enforced():
    # REG001 must actually engage on the real tree (not silently skip):
    # the registry parses and every exhibit resolves in both directions.
    from repro.lint.rules.registry_sync import RegistryInfo
    import ast

    reg_path = os.path.join(SRC, "repro", "experiments", "registry.py")
    with open(reg_path, "r", encoding="utf-8") as fh:
        info = RegistryInfo.parse(ast.parse(fh.read()))
    assert len(info.modules) >= 10
    assert len(info.benches) == len(info.modules)
    for stem in info.module_stems:
        assert os.path.isfile(
            os.path.join(SRC, "repro", "experiments", stem + ".py")), stem
    for bench in info.benches:
        assert os.path.isfile(os.path.join(REPO_ROOT, bench)), bench
