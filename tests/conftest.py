"""Shared fixtures: small design spaces, cheap synthetic responses, traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design_space import DesignSpace, Parameter, paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def small_space():
    """A 3-parameter space: one continuous, one leveled-log, one fraction."""
    return DesignSpace(
        [
            Parameter("depth", 4, 20, None, "linear", integer=True),
            Parameter("size_kb", 8, 64, 4, "log", integer=True),
            Parameter("frac", 0.25, 0.75, None, "linear", fraction_of="depth"),
        ],
        name="small",
    )


@pytest.fixture
def paper_space():
    return paper_design_space()


@pytest.fixture
def quadratic_response():
    """A smooth non-linear response on the unit cube, with interaction."""

    def f(unit_points: np.ndarray) -> np.ndarray:
        unit_points = np.atleast_2d(unit_points)
        x = unit_points[:, 0]
        y = unit_points[:, 1] if unit_points.shape[1] > 1 else 0.0
        return 1.0 + 2.0 * x**2 + y + 1.5 * x * y

    return f


@pytest.fixture
def tiny_trace():
    """A short deterministic mcf-profile trace for simulator tests."""
    return generate_trace(PROFILES["mcf"], 2000, seed=11)


@pytest.fixture
def default_config():
    return ProcessorConfig()
