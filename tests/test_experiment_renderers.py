"""Renderer tests for the experiment modules not covered elsewhere."""

import numpy as np
import pytest

from repro.analysis.splits import SignificantSplit
from repro.analysis.trends import TrendGrid
from repro.experiments import (
    fig3_network,
    fig5_split_values,
    fig6_trend_prediction,
    table5_significant_splits,
)
from repro.models.rbf import RBFNetwork


class TestFig3Render:
    def test_render_lists_structure(self):
        net = RBFNetwork(
            centers=np.full((3, 9), 0.5),
            radii=np.full((3, 9), 1.0),
            weights=np.array([1.0, -0.5, 2.0]),
        )
        result = fig3_network.Fig3Result(benchmark="mcf", network=net,
                                         sample_size=200)
        text = fig3_network.render(result)
        assert "9 design parameters" in text
        assert "3 Gaussian radial basis functions" in text
        assert result.inputs == 9
        assert result.hidden_units == 3


class TestFig5Render:
    def test_render_shows_significant_and_total(self):
        dist = {"l2_lat": [10.0, 12.0], "rob_size": [64.0], "iq_frac": []}
        sig = {"l2_lat": [10.0], "rob_size": [], "iq_frac": []}
        result = fig5_split_values.Fig5Result(
            benchmark="mcf", distribution=dist, significant=sig, total_splits=3,
        )
        text = fig5_split_values.render(result)
        assert "l2_lat" in text
        assert "3 splits total" in text
        assert result.significant_counts()["l2_lat"] == 1
        assert result.split_counts()["l2_lat"] == 2


class TestFig6Render:
    def test_render_includes_both_series(self):
        grid = TrendGrid(
            param_x="l2_lat", param_y="il1_size_kb",
            x_values=[5.0, 20.0], y_values=[8.0],
            simulated=np.array([[1.0, 2.0]]),
            predicted=np.array([[1.1, 1.9]]),
        )
        result = fig6_trend_prediction.Fig6Result(
            benchmark="vortex", grid=grid,
            monotonic_agreement=grid.monotonic_agreement(),
            max_trend_error=grid.max_trend_error(),
        )
        text = fig6_trend_prediction.render(result)
        assert "sim" in text and "prd" in text
        assert "100%" in text  # both move up


class TestTable5Render:
    def _split(self, rank, parameter, value, frac=False):
        return SignificantSplit(rank=rank, parameter=parameter, value=value,
                                depth=rank, is_fraction=frac)

    def test_render_and_overlap(self):
        splits = {
            "mcf": [self._split(1, "l2_lat", 11.5),
                    self._split(2, "l2_size_kb", 370 * 1024 / 1024)],
        }
        result = table5_significant_splits.Table5Result(splits=splits,
                                                        sample_size=200)
        text = table5_significant_splits.render(result)
        assert "mcf" in text and "l2_lat" in text
        # Overlap vs the paper's mcf split set.
        assert result.overlap_with_paper("mcf") > 0

    def test_value_labels(self):
        assert self._split(1, "iq_frac", 0.34, frac=True).value_label() == "0.34*"
        assert "MB" in self._split(1, "l2_size_kb", 2048.0).value_label()
        assert self._split(1, "l2_lat", 11.5).value_label() == "11.5"

    def test_unknown_benchmark_full_overlap(self):
        result = table5_significant_splits.Table5Result(
            splits={"gzip": [self._split(1, "l2_lat", 10.0)]}, sample_size=200,
        )
        assert result.overlap_with_paper("gzip") == 1.0
