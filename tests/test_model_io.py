"""Tests for model serialization (JSON round-trips)."""

import numpy as np
import pytest

from repro.models.io import load_model, save_model
from repro.models.linear import LinearInteractionModel
from repro.models.mlp import MLPModel
from repro.models.rbf import RBFNetwork, build_rbf_from_tree
from repro.models.spline import SplineModel


@pytest.fixture
def sample(rng):
    x = rng.random((50, 3))
    y = 1.0 + np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
    return x, y


def roundtrip(model, tmp_path, **kwargs):
    path = save_model(model, tmp_path / "model.json", **kwargs)
    return load_model(path)


class TestRoundTrips:
    def test_rbf(self, sample, tmp_path, rng):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        loaded, _, _ = roundtrip(net, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), net.predict(xt), rtol=1e-12)

    def test_linear(self, sample, tmp_path, rng):
        x, y = sample
        model = LinearInteractionModel.fit(x, y)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), model.predict(xt), rtol=1e-12)

    def test_spline(self, sample, tmp_path, rng):
        x, y = sample
        model = SplineModel.fit(x, y, max_terms=12)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), model.predict(xt), rtol=1e-12)

    def test_mlp(self, sample, tmp_path, rng):
        x, y = sample
        model = MLPModel.fit(x, y, hidden=(6,), epochs=300, seed=1)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), model.predict(xt), rtol=1e-12)


class TestMetadata:
    def test_names_and_metadata_preserved(self, sample, tmp_path):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        _, names, meta = roundtrip(
            net, tmp_path,
            parameter_names=["a", "b", "c"],
            metadata={"benchmark": "mcf", "sample_size": 50},
        )
        assert names == ["a", "b", "c"]
        assert meta["benchmark"] == "mcf"

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "model": {"family": "rbf"}}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_unknown_family_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format_version": 1, "model": {"family": "forest"}}'
        )
        with pytest.raises(ValueError):
            load_model(path)

    def test_unserialisable_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "x.json")

    def test_file_is_valid_json(self, sample, tmp_path):
        import json

        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        path = save_model(net, tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["model"]["family"] == "rbf"
