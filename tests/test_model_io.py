"""Tests for model serialization (JSON round-trips)."""

import numpy as np
import pytest

from repro.models.io import load_model, model_family, save_model
from repro.models.linear import LinearInteractionModel
from repro.models.mlp import MLPModel
from repro.models.rbf import RBFNetwork, build_rbf_from_tree
from repro.models.spline import SplineModel
from repro.models.tree import RegressionTree


@pytest.fixture
def sample(rng):
    x = rng.random((50, 3))
    y = 1.0 + np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
    return x, y


def roundtrip(model, tmp_path, **kwargs):
    path = save_model(model, tmp_path / "model.json", **kwargs)
    return load_model(path)


def all_family_models(sample):
    """One fitted model per supported family, keyed by family name."""
    x, y = sample
    net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
    return {
        "rbf": net,
        "linear": LinearInteractionModel.fit(x, y),
        "spline": SplineModel.fit(x, y, max_terms=12),
        "mlp": MLPModel.fit(x, y, hidden=(6,), epochs=300, seed=1),
        "tree": RegressionTree(x, y, p_min=2),
    }


class TestRoundTrips:
    def test_rbf(self, sample, tmp_path, rng):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        loaded, _, _ = roundtrip(net, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), net.predict(xt), rtol=1e-12)

    def test_linear(self, sample, tmp_path, rng):
        x, y = sample
        model = LinearInteractionModel.fit(x, y)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), model.predict(xt), rtol=1e-12)

    def test_spline(self, sample, tmp_path, rng):
        x, y = sample
        model = SplineModel.fit(x, y, max_terms=12)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), model.predict(xt), rtol=1e-12)

    def test_mlp(self, sample, tmp_path, rng):
        x, y = sample
        model = MLPModel.fit(x, y, hidden=(6,), epochs=300, seed=1)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_allclose(loaded.predict(xt), model.predict(xt), rtol=1e-12)

    def test_tree(self, sample, tmp_path, rng):
        x, y = sample
        model = RegressionTree(x, y, p_min=2)
        loaded, _, _ = roundtrip(model, tmp_path)
        xt = rng.random((20, 3))
        np.testing.assert_array_equal(loaded.predict(xt), model.predict(xt))

    def test_all_families_round_trip_bitwise(self, sample, tmp_path, rng):
        # JSON float serialisation uses repr (shortest round-trip), so a
        # save/load cycle must reproduce predictions *bitwise*, not just
        # within tolerance — the registry's content hash depends on it.
        xt = rng.random((30, 3))
        for family, model in all_family_models(sample).items():
            assert model_family(model) == family
            loaded, _, _ = roundtrip(model, tmp_path)
            np.testing.assert_array_equal(
                loaded.predict(xt), model.predict(xt),
                err_msg=f"{family} round-trip not bitwise-identical")

    def test_uncertainty_round_trips(self, sample, tmp_path, rng):
        xt = rng.random((10, 3))
        for family, model in all_family_models(sample).items():
            x, y = sample
            model.calibrate(x, y)
            loaded, _, _ = roundtrip(model, tmp_path)
            assert loaded.uncertainty is not None, family
            assert loaded.uncertainty == model.uncertainty, family
            before = model.predict_with_provenance(xt)
            after = loaded.predict_with_provenance(xt)
            np.testing.assert_array_equal(after.values, before.values)
            np.testing.assert_array_equal(after.lower, before.lower)
            np.testing.assert_array_equal(after.upper, before.upper)
            np.testing.assert_array_equal(after.extrapolated,
                                          before.extrapolated)

    def test_uncalibrated_model_loads_uncalibrated(self, sample, tmp_path):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        loaded, _, _ = roundtrip(net, tmp_path)
        assert loaded.uncertainty is None


class TestMetadata:
    def test_names_and_metadata_preserved(self, sample, tmp_path):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        _, names, meta = roundtrip(
            net, tmp_path,
            parameter_names=["a", "b", "c"],
            metadata={"benchmark": "mcf", "sample_size": 50},
        )
        assert names == ["a", "b", "c"]
        assert meta["benchmark"] == "mcf"

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "model": {"family": "rbf"}}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_unknown_family_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format_version": 1, "model": {"family": "forest"}}'
        )
        with pytest.raises(ValueError):
            load_model(path)

    def test_unserialisable_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "x.json")

    def test_file_is_valid_json(self, sample, tmp_path):
        import json

        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        path = save_model(net, tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["model"]["family"] == "rbf"


class TestErrorPaths:
    def test_corrupt_json_is_one_line_value_error(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"format_version": 2, "model": {"family"')
        with pytest.raises(ValueError, match="corrupt model file") as exc:
            load_model(path)
        assert "\n" not in str(exc.value)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="corrupt model file"):
            load_model(path)

    def test_truncated_model_payload_rejected(self, sample, tmp_path):
        import json

        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        path = save_model(net, tmp_path / "m.json")
        payload = json.loads(path.read_text())
        del payload["model"]["weights"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="corrupt model file"):
            load_model(path)

    def test_version_mismatch_is_one_line_value_error(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"format_version": 99, "model": {"family": "rbf"}}')
        with pytest.raises(ValueError,
                           match="unsupported model file version") as exc:
            load_model(path)
        assert "\n" not in str(exc.value)

    def test_v1_file_without_uncertainty_still_loads(self, sample, tmp_path,
                                                     rng):
        # Format v1 predates calibration records: no "uncertainty" key.
        import json

        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        path = save_model(net, tmp_path / "m.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 1
        payload.pop("uncertainty", None)
        path.write_text(json.dumps(payload))
        loaded, _, _ = load_model(path)
        assert loaded.uncertainty is None
        xt = rng.random((20, 3))
        np.testing.assert_array_equal(loaded.predict(xt), net.predict(xt))
