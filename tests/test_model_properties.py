"""Property-based tests on the modeling stack's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_space import DesignSpace, Parameter
from repro.models.linear import LinearInteractionModel
from repro.models.rbf import RBFNetwork, build_rbf_from_tree, gaussian_design_matrix
from repro.models.tree import RegressionTree


def sample_strategy(min_points=8, max_points=40, dims=2):
    return st.integers(0, 10_000).map(
        lambda seed: _make_sample(seed, min_points, max_points, dims)
    )


def _make_sample(seed, min_points, max_points, dims):
    rng = np.random.default_rng(seed)
    p = int(rng.integers(min_points, max_points + 1))
    x = rng.random((p, dims))
    y = 1.0 + np.sin(2.5 * x[:, 0]) + 0.5 * x[:, -1]
    return x, y


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(sample=sample_strategy())
    def test_leaves_partition_the_sample(self, sample):
        x, y = sample
        tree = RegressionTree(x, y, p_min=3)
        leaf_indices = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert sorted(leaf_indices.tolist()) == list(range(len(x)))

    @settings(max_examples=20, deadline=None)
    @given(sample=sample_strategy())
    def test_prediction_within_response_range(self, sample):
        x, y = sample
        tree = RegressionTree(x, y, p_min=3)
        pred = tree.predict(np.random.default_rng(1).random((30, x.shape[1])))
        # Leaf means cannot leave the observed response range.
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(sample=sample_strategy(), p_min=st.integers(1, 8))
    def test_split_errors_are_finite_and_ordered_by_depth(self, sample, p_min):
        x, y = sample
        tree = RegressionTree(x, y, p_min=p_min)
        for split in tree.splits():
            assert np.isfinite(split.error)
            assert split.depth >= 1


class TestRBFProperties:
    @settings(max_examples=15, deadline=None)
    @given(sample=sample_strategy(min_points=12))
    def test_design_matrix_bounded(self, sample):
        x, _ = sample
        centers = x[:4]
        radii = np.full_like(centers, 0.5)
        h = gaussian_design_matrix(x, centers, radii)
        assert np.all(h >= 0.0) and np.all(h <= 1.0)

    @settings(max_examples=12, deadline=None)
    @given(sample=sample_strategy(min_points=15), alpha=st.sampled_from([2.0, 5.0, 9.0]))
    def test_build_produces_finite_predictions(self, sample, alpha):
        x, y = sample
        net, info = build_rbf_from_tree(x, y, p_min=2, alpha=alpha)
        pred = net.predict(np.random.default_rng(2).random((25, x.shape[1])))
        assert np.all(np.isfinite(pred))
        assert 1 <= info.num_centers < len(x)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_prediction_linear_in_weights(self, seed):
        rng = np.random.default_rng(seed)
        centers = rng.random((3, 2))
        radii = rng.random((3, 2)) * 0.5 + 0.1
        w1 = rng.normal(size=3)
        w2 = rng.normal(size=3)
        x = rng.random((10, 2))
        a = RBFNetwork(centers, radii, w1).predict(x)
        b = RBFNetwork(centers, radii, w2).predict(x)
        both = RBFNetwork(centers, radii, w1 + w2).predict(x)
        np.testing.assert_allclose(both, a + b, rtol=1e-9)


class TestLinearProperties:
    @settings(max_examples=10, deadline=None)
    @given(sample=sample_strategy(min_points=20, max_points=60, dims=3))
    def test_training_residuals_never_exceed_intercept_model(self, sample):
        x, y = sample
        model = LinearInteractionModel.fit(x, y)
        sse_model = np.sum((model.predict(x) - y) ** 2)
        sse_mean = np.sum((y - y.mean()) ** 2)
        assert sse_model <= sse_mean + 1e-9


class TestDesignSpaceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        low=st.floats(0.5, 10.0),
        span=st.floats(1.0, 100.0),
        transform=st.sampled_from(["linear", "log"]),
    )
    def test_encode_decode_roundtrip_continuous(self, seed, low, span, transform):
        param = Parameter("x", low, low + span, None, transform)
        space = DesignSpace([param], name="prop")
        rng = np.random.default_rng(seed)
        unit = rng.random((20, 1))
        phys = space.decode(unit)
        back = space.encode(phys)
        np.testing.assert_allclose(back, unit, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), levels=st.integers(2, 9))
    def test_snapping_is_idempotent(self, seed, levels):
        param = Parameter("x", 1.0, 65.0, levels, "log")
        space = DesignSpace([param], name="prop")
        rng = np.random.default_rng(seed)
        unit = rng.random((15, 1))
        once = space.decode(unit)
        twice = space.decode(space.encode(once))
        np.testing.assert_allclose(once, twice, rtol=1e-9)
